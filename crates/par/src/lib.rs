//! Std-only data parallelism for the wire-timing workspace.
//!
//! The three hot loops of the stack — per-net golden simulation in
//! dataset building, per-graph forward/backward in training, and
//! per-net inference in serving — are all *embarrassingly parallel over
//! independent graphs*. This crate gives them one shared substrate:
//!
//! * a **process-global worker pool** (plain `std::thread` + condvar,
//!   lazily spawned, reused across calls) sized by
//!   `available_parallelism`, overridable with the `PAR_THREADS`
//!   environment variable (`PAR_THREADS=1` forces the fully serial
//!   code path: no pool, no worker threads, no atomics in the loop);
//! * [`par_map`] / [`try_par_map`], whose results come back **in input
//!   order** regardless of scheduling, so every downstream reduction
//!   (scaler fitting, gradient accumulation, response rendering) is
//!   bit-identical to the serial run — the determinism contract the
//!   dataset and training tests pin down;
//! * obs wiring: `par.threads` and `par.queue_depth` gauges, a
//!   `par.tasks{kind}` counter and a `par.task_seconds{kind}` latency
//!   histogram per task kind, all visible in run reports and the serve
//!   `/metrics` endpoint.
//!
//! ```
//! par::set_threads(2);
//! let squares = par::par_map("doc.square", &[1, 2, 3], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! Why std-only: the build environment is offline (no rayon), and the
//! workloads are coarse-grained — one task is an entire MNA transient
//! simulation or a full forward/backward pass — so a simple injector
//! queue with an atomic claim counter already keeps every core busy;
//! a work-stealing deque would add complexity without measurable win.

mod map;
mod pool;

pub use map::{par_map, try_par_map};

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = not yet resolved; otherwise the effective thread count.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Parses a `PAR_THREADS` value; `None`/malformed/`0` fall back to
/// `available_parallelism`.
pub fn resolve_threads(env: Option<&str>) -> usize {
    if let Some(raw) = env {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                obs::event!(
                    obs::Level::Warn,
                    "par",
                    "ignoring malformed PAR_THREADS",
                    value = raw,
                );
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The effective parallelism: the `PAR_THREADS` environment variable
/// when set and valid, otherwise `available_parallelism`, resolved once
/// on first call (later [`set_threads`] calls override it).
pub fn threads() -> usize {
    let cur = THREADS.load(Ordering::Acquire);
    if cur != 0 {
        return cur;
    }
    let n = resolve_threads(std::env::var("PAR_THREADS").ok().as_deref());
    // On a racing first call the winner's value sticks; both racers
    // resolved the same inputs, so the loser's value is identical.
    let _ = THREADS.compare_exchange(0, n, Ordering::AcqRel, Ordering::Acquire);
    let eff = THREADS.load(Ordering::Acquire);
    obs::gauge("par.threads").set(eff as f64);
    eff
}

/// Number of pool worker threads spawned so far (the calling thread of
/// a `par_map` always participates as one extra lane on top of these).
/// Benchmarks and run reports record it alongside `par.threads`.
pub fn workers() -> usize {
    pool::Pool::global().worker_count()
}

/// Overrides the effective parallelism for this process (minimum 1).
/// Used by benchmarks and determinism tests to compare `1` against `N`
/// without re-execing; production code should prefer `PAR_THREADS`.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    THREADS.store(n, Ordering::Release);
    obs::gauge("par.threads").set(n as f64);
}

/// The machine's actual core count (`available_parallelism`), resolved
/// once. Unlike [`threads`] this ignores `PAR_THREADS`/[`set_threads`]:
/// it answers "can lanes physically overlap?", which gates the 1-core
/// serial clamp in `par_map`.
pub fn host_parallelism() -> usize {
    static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// 0 = not yet resolved; 1 = clamp active (default); 2 = pool forced.
static FORCE_POOL: AtomicUsize = AtomicUsize::new(0);

/// Parses a `PAR_FORCE_POOL` value: `1`/`true` (any case) force the
/// pool, anything else leaves the 1-core clamp active.
pub fn resolve_force_pool(env: Option<&str>) -> bool {
    env.map(|v| {
        let t = v.trim();
        t == "1" || t.eq_ignore_ascii_case("true")
    })
    .unwrap_or(false)
}

/// Whether `par_map` must fan out on the pool even when the host has a
/// single core. Defaults to the `PAR_FORCE_POOL` environment variable
/// (resolved once); determinism tests flip it with [`set_force_pool`]
/// so pool scheduling stays exercised on 1-core CI hosts.
pub fn force_pool() -> bool {
    let cur = FORCE_POOL.load(Ordering::Acquire);
    if cur != 0 {
        return cur == 2;
    }
    let on = resolve_force_pool(std::env::var("PAR_FORCE_POOL").ok().as_deref());
    let _ = FORCE_POOL.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::AcqRel,
        Ordering::Acquire,
    );
    FORCE_POOL.load(Ordering::Acquire) == 2
}

/// Overrides the [`force_pool`] flag for this process (tests and
/// benchmarks that must exercise pool scheduling on a 1-core host).
pub fn set_force_pool(on: bool) {
    FORCE_POOL.store(if on { 2 } else { 1 }, Ordering::Release);
}

/// Serializes tests (within this crate) that change the global thread
/// count, so parallel test threads cannot interleave overrides.
#[cfg(test)]
pub(crate) static TEST_THREADS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn test_threads_lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_THREADS_GUARD
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_valid_env() {
        assert_eq!(resolve_threads(Some("3")), 3);
        assert_eq!(resolve_threads(Some(" 7 ")), 7);
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolve_threads(None), hw);
        assert_eq!(resolve_threads(Some("0")), hw);
        assert_eq!(resolve_threads(Some("lots")), hw);
        assert_eq!(resolve_threads(Some("-2")), hw);
    }

    #[test]
    fn resolve_force_pool_parses_truthy_values() {
        assert!(resolve_force_pool(Some("1")));
        assert!(resolve_force_pool(Some(" true ")));
        assert!(resolve_force_pool(Some("TRUE")));
        assert!(!resolve_force_pool(Some("0")));
        assert!(!resolve_force_pool(Some("yes")));
        assert!(!resolve_force_pool(None));
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _g = test_threads_lock();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(2);
        assert_eq!(threads(), 2);
    }
}
