//! Deterministic parallel map over slices.
//!
//! Work distribution is a single atomic index counter (self-balancing:
//! fast lanes claim more items), but every result is written to the
//! slot of its *input index*, so the output order — and therefore any
//! downstream reduction order — is identical to the serial map no
//! matter how many threads ran or how the OS scheduled them. That
//! in-order contract is what makes dataset builds and training
//! bit-reproducible under `PAR_THREADS`.
//!
//! Nested calls are safe but serial: there is one global pool with no
//! work-stealing, so a `par_map` issued from inside a lane would queue
//! its jobs behind (and wait on a latch held up by) its own ancestors —
//! with every worker already occupied by outer lanes, that is a
//! permanent deadlock. A thread-local lane flag detects nesting and
//! routes the inner call to the serial path instead.

use crate::pool::{Job, Pool};
use crate::threads;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

thread_local! {
    /// True while this thread is executing a `par_map` lane. See the
    /// module docs: a nested map on the single global pool would
    /// deadlock, so nested calls fall back to the serial path.
    static IN_LANE: Cell<bool> = const { Cell::new(false) };
}

/// RAII lane marker; restores the previous flag value even on panic.
struct LaneGuard(bool);

impl LaneGuard {
    fn enter() -> Self {
        LaneGuard(IN_LANE.with(|c| c.replace(true)))
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        let prev = self.0;
        IN_LANE.with(|c| c.set(prev));
    }
}

/// Latency buckets for `par.task_seconds`: 10 µs .. ~160 s, factor 4.
fn task_bounds() -> Vec<f64> {
    obs::exponential_bounds(1e-5, 4.0, 12)
}

/// Counts outstanding lanes and stores the first panic payload.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(lanes: usize) -> Self {
        Latch {
            remaining: Mutex::new(lanes),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().expect("latch poisoned");
            slot.get_or_insert(p);
        }
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch poisoned");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("latch poisoned").take()
    }
}

/// Shared lane state: claims indices, writes results to their slots.
struct Lanes<'a, T, R, F, S> {
    /// Trace context of the submitting thread, re-installed inside
    /// every lane so request-scoped tracing (obs::trace) survives the
    /// pool handoff: a `par_map` issued while serving a request keeps
    /// that request's trace id on all of its lanes.
    trace: Option<obs::TraceContext>,
    items: &'a [T],
    /// Base pointer of the `Option<R>` result slots. Lanes write
    /// disjoint slots (each index is claimed exactly once), which is
    /// why the raw-pointer aliasing here is sound.
    results: *mut Option<R>,
    f: &'a F,
    /// When `should_stop` flags a result, no lane claims further
    /// indices. Because `fetch_add` hands out indices in order, the
    /// claimed set is always a prefix `0..m` — skipped slots can only
    /// trail every computed one.
    should_stop: &'a S,
    stop: AtomicBool,
    next: AtomicUsize,
    hist: &'a obs::Histogram,
}

// SAFETY: lanes only read `items` (`T: Sync`), call `f` and
// `should_stop` concurrently (`F: Sync`, `S: Sync`) and write disjoint
// `results` slots whose `R` values are produced on one thread and
// consumed after the latch (`R: Send`).
unsafe impl<T: Sync, R: Send, F: Sync, S: Sync> Sync for Lanes<'_, T, R, F, S> {}

impl<T, R, F: Fn(&T) -> R, S: Fn(&R) -> bool> Lanes<'_, T, R, F, S> {
    fn run(&self) {
        let _lane = LaneGuard::enter();
        let _trace = self.trace.map(obs::trace::scope);
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.items.len() {
                break;
            }
            let t0 = Instant::now();
            let r = (self.f)(&self.items[i]);
            self.hist.observe(t0.elapsed().as_secs_f64());
            if (self.should_stop)(&r) {
                self.stop.store(true, Ordering::Relaxed);
            }
            // SAFETY: index `i` was claimed exactly once (fetch_add),
            // so no other lane touches this slot; the slot outlives
            // the lane because `par_map_slots` waits on the latch.
            unsafe { *self.results.add(i) = Some(r) };
        }
    }
}

/// The engine behind [`par_map`] / [`try_par_map`]: maps `f` over
/// `items` and returns per-index slots. A slot is `None` only when
/// `should_stop` flagged an earlier-claimed result (indices are
/// claimed in order, so skipped slots strictly trail a flagged one) or
/// a lane panicked (in which case the panic is re-raised instead of
/// returning).
fn par_map_slots<T, R, F, S>(kind: &str, items: &[T], f: F, should_stop: S) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    S: Fn(&R) -> bool + Sync,
{
    let n = items.len();
    let nested = IN_LANE.with(Cell::get);
    let lanes = if nested {
        1
    } else {
        let want = threads().min(n).max(1);
        // On a single-core host lanes cannot physically overlap, so
        // pool fan-out is pure overhead (the 0.89x dataset_build /
        // train_epoch regression in BENCH_compute.json). Clamp to the
        // serial path unless PAR_FORCE_POOL / set_force_pool insists —
        // the determinism gates do, to keep pool scheduling itself
        // under test on 1-core CI hosts.
        if want > 1 && crate::host_parallelism() == 1 && !crate::force_pool() {
            1
        } else {
            want
        }
    };
    let hist = obs::histogram_with("par.task_seconds", Some(kind), task_bounds);
    obs::counter_labeled("par.tasks", Some(kind)).add(n as u64);
    if lanes == 1 {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (it, slot) in items.iter().zip(slots.iter_mut()) {
            let t0 = Instant::now();
            let r = f(it);
            hist.observe(t0.elapsed().as_secs_f64());
            let stop = should_stop(&r);
            *slot = Some(r);
            if stop {
                break;
            }
        }
        return slots;
    }

    let pool = Pool::global();
    pool.ensure_workers(lanes - 1);

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let shared = Lanes {
        trace: obs::trace::current(),
        items,
        results: results.as_mut_ptr(),
        f: &f,
        should_stop: &should_stop,
        stop: AtomicBool::new(false),
        next: AtomicUsize::new(0),
        hist: &hist,
    };
    let latch = Latch::new(lanes);
    {
        let shared_ref = &shared;
        let latch_ref = &latch;
        for _ in 0..lanes - 1 {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| shared_ref.run()));
                latch_ref.complete(outcome.err());
            });
            // SAFETY: the borrows erased here (`items`, `f`, `results`,
            // the latch) all outlive the job: `latch.wait()` below does
            // not return until every submitted job has completed, and
            // it runs before any of them drop.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job)
            };
            pool.submit(job);
        }
        // The caller is the final lane; a panic in it must still wait
        // for the workers before unwinding can free the borrows.
        let own = catch_unwind(AssertUnwindSafe(|| shared_ref.run()));
        latch_ref.complete(own.err());
        latch.wait();
    }
    if let Some(p) = latch.take_panic() {
        resume_unwind(p);
    }
    results
}

/// Maps `f` over `items` on the global pool, returning results in input
/// order. `kind` labels the per-task latency histogram
/// (`par.task_seconds{kind}`) and the `par.tasks{kind}` counter.
///
/// Runs serially (no pool involvement) when the resolved thread count
/// is 1 — the `PAR_THREADS=1` escape hatch — when `items` has fewer
/// than two elements, when the host has a single core (lanes cannot
/// overlap, so fan-out is pure overhead; override with
/// `PAR_FORCE_POOL=1` / [`crate::set_force_pool`]), or when called
/// from inside another `par_map` lane (nested maps on the single
/// global pool would deadlock; see the module docs). Output is
/// bit-identical either way.
///
/// # Panics
///
/// Re-raises the first panic from `f` after every lane has finished
/// (so borrows stay sound).
pub fn par_map<T, R, F>(kind: &str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_slots(kind, items, f, |_| false)
        .into_iter()
        .map(|slot| slot.expect("every index was claimed"))
        .collect()
}

/// Fallible [`par_map`]: returns the *lowest-index* error, regardless
/// of which lane hit an error first in wall-clock time — the same error
/// a serial `.map(...).collect::<Result<_, _>>()` would surface.
///
/// Short-circuits: once any lane observes an `Err`, no new indices are
/// claimed (in-flight items finish). Indices are claimed in order, so
/// every skipped item has a higher index than some computed error, and
/// the lowest-index-error contract is unaffected.
///
/// # Errors
///
/// The error of the lowest-index failing item.
pub fn try_par_map<T, R, E, F>(kind: &str, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let slots = par_map_slots(kind, items, f, Result::is_err);
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Skipped slots strictly trail the error that set the stop
            // flag, and the in-order scan returns at that error first.
            None => unreachable!("slot skipped without a preceding error"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_force_pool, set_threads, test_threads_lock, workers};

    #[test]
    fn results_are_in_input_order() {
        let _g = test_threads_lock();
        set_threads(4);
        set_force_pool(true);
        let items: Vec<usize> = (0..257).collect();
        let out = par_map("test.order", &items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        set_threads(1);
        let serial = par_map("test.order", &items, |&i| i * 2);
        assert_eq!(out, serial);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map("test.empty", &empty, |&x| x).is_empty());
        assert_eq!(par_map("test.one", &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_threads_one_never_touches_pool() {
        // The PAR_THREADS=1 regression contract: the serial path must
        // involve no pool at all — no worker spawns, no job submission,
        // no latch — so a 1-thread par_map has no overhead beyond the
        // plain loop. Worker count not growing is the observable proxy
        // (workers never exit, so any fan-out would raise it).
        let _g = test_threads_lock();
        set_threads(1);
        let before = workers();
        let items: Vec<usize> = (0..512).collect();
        let out = par_map("test.serial", &items, |&i| i + 1);
        assert_eq!(out[511], 512);
        assert_eq!(workers(), before, "PAR_THREADS=1 must stay off the pool");
    }

    #[test]
    fn one_core_host_clamps_to_serial() {
        // The BENCH_compute 0.89x fix: threads > 1 on a 1-core host must
        // take the serial path (lanes cannot overlap, fan-out is pure
        // overhead) unless the pool is explicitly forced. Only
        // observable on an actual 1-core host.
        if crate::host_parallelism() != 1 {
            return;
        }
        let _g = test_threads_lock();
        set_force_pool(false);
        set_threads(4);
        let before = workers();
        let items: Vec<usize> = (0..64).collect();
        let out = par_map("test.clamp", &items, |&i| i * 2);
        assert_eq!(out[63], 126);
        assert_eq!(workers(), before, "1-core host must clamp to serial");
        // Forcing the pool re-enables fan-out (the determinism gates
        // rely on this to exercise pool scheduling on 1-core CI).
        set_force_pool(true);
        let out = par_map("test.clamp.forced", &items, |&i| i * 2);
        assert_eq!(out[63], 126);
        assert!(workers() >= 3, "forced pool must spawn workers");
    }

    #[test]
    fn nested_maps_run_serially_without_deadlock() {
        let _g = test_threads_lock();
        set_threads(4);
        set_force_pool(true);
        // Before the lane flag, every worker plus the caller blocked in
        // an outer lane's latch while the inner jobs sat queued behind
        // them — a permanent pool-wide deadlock. Nested maps now take
        // the serial path, so this completes (and stays in input order).
        let items: Vec<usize> = (0..16).collect();
        let out = par_map("test.nest.outer", &items, |&i| {
            let inner: Vec<usize> = (0..8).collect();
            par_map("test.nest.inner", &inner, |&j| i * 100 + j)
                .into_iter()
                .sum::<usize>()
        });
        let want: Vec<usize> = (0..16).map(|i| 8 * 100 * i + 28).collect();
        assert_eq!(out, want);
        // The flag is scoped to lanes: a later top-level map still
        // fans out on the pool.
        let again = par_map("test.nest.after", &items, |&i| i + 1);
        assert_eq!(again[15], 16);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let _g = test_threads_lock();
        set_threads(4);
        set_force_pool(true);
        let items: Vec<usize> = (0..100).collect();
        // Items 30 and 70 fail; the error must always be 30's.
        let r = try_par_map("test.err", &items, |&i| {
            if i == 30 || i == 70 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), "bad 30");
        let ok: Result<Vec<usize>, String> =
            try_par_map("test.err", &items[..20], |&i| Ok(i));
        assert_eq!(ok.unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_short_circuits_after_error() {
        let _g = test_threads_lock();
        // Serial path: deterministic call count — items past the first
        // error are never evaluated.
        set_threads(1);
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let r = try_par_map("test.stop", &items, |&i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 { Err("boom") } else { Ok(i) }
        });
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        // Parallel path: in-flight items may still finish, but lanes
        // stop claiming once the error is seen, so with an error at
        // index 0 not all 100 items get evaluated.
        set_threads(4);
        let calls = AtomicUsize::new(0);
        let r = try_par_map("test.stop", &items, |&i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 0 { Err("first") } else { Ok(i) }
        });
        assert_eq!(r.unwrap_err(), "first");
        assert!(calls.load(Ordering::Relaxed) <= 100);
    }

    #[test]
    fn trace_context_propagates_into_lanes() {
        let _g = test_threads_lock();
        set_threads(4);
        set_force_pool(true);
        let ctx = obs::TraceContext::new(obs::TraceId::generate());
        let scope = obs::trace::scope(ctx);
        let items: Vec<usize> = (0..64).collect();
        let seen = par_map("test.trace", &items, |_| {
            obs::trace::current().map(|c| c.trace_id)
        });
        assert!(
            seen.iter().all(|id| *id == Some(ctx.trace_id)),
            "every lane must observe the submitter's trace id"
        );
        drop(scope);
        // Without an ambient context, lanes see none (no leakage from
        // the previous map's scope guards).
        let seen = par_map("test.trace", &items, |_| obs::trace::current());
        assert!(seen.iter().all(Option::is_none));
    }

    #[test]
    fn panics_propagate_to_caller() {
        let _g = test_threads_lock();
        set_threads(4);
        set_force_pool(true);
        let items: Vec<usize> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map("test.panic", &items, |&i| {
                assert!(i != 40, "lane panic");
                i
            })
        }));
        assert!(caught.is_err());
        // The pool survives a panicking map and keeps working.
        let out = par_map("test.panic", &items, |&i| i + 1);
        assert_eq!(out[63], 64);
    }
}
