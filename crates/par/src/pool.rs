//! The process-global worker pool.
//!
//! Workers are plain `std::thread`s parked on a condvar over a shared
//! FIFO injector queue. They are spawned lazily — the first `par_map`
//! that wants `n`-way parallelism brings the pool up to `n - 1` workers
//! (the calling thread always participates as the `n`-th lane) — and
//! never exit: an idle worker costs one parked thread. The queue depth
//! is exported through the `par.queue_depth` gauge.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

/// A type-erased unit of work. Lifetimes are erased by the submitter
/// (see `map.rs`), which guarantees the job completes before any
/// borrow it captures goes out of scope.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    /// Worker threads spawned so far.
    workers: usize,
}

pub(crate) struct Pool {
    state: Mutex<State>,
    work_ready: Condvar,
    depth: obs::Gauge,
}

impl Pool {
    /// The process-global pool (created empty on first use).
    pub(crate) fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                workers: 0,
            }),
            work_ready: Condvar::new(),
            depth: obs::gauge("par.queue_depth"),
        })
    }

    /// Grows the pool to at least `n` worker threads.
    pub(crate) fn ensure_workers(&'static self, n: usize) {
        let mut st = self.state.lock().expect("par pool poisoned");
        while st.workers < n {
            let id = st.workers;
            st.workers += 1;
            std::thread::Builder::new()
                .name(format!("par-{id}"))
                .spawn(move || self.worker_loop())
                .expect("failed to spawn par worker");
        }
    }

    /// Enqueues `job` and wakes one worker.
    pub(crate) fn submit(&self, job: Job) {
        let mut st = self.state.lock().expect("par pool poisoned");
        st.queue.push_back(job);
        self.depth.set(st.queue.len() as f64);
        drop(st);
        self.work_ready.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("par pool poisoned");
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        self.depth.set(st.queue.len() as f64);
                        break job;
                    }
                    st = self.work_ready.wait(st).expect("par pool poisoned");
                }
            };
            job();
        }
    }

    /// Number of spawned workers (for tests and the run report).
    pub(crate) fn worker_count(&self) -> usize {
        self.state.lock().expect("par pool poisoned").workers
    }
}
