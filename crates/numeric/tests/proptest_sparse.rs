//! Property tests: the sparse LDLᵀ path must agree with the dense LU
//! oracle on random SPD matrices of the shape MNA assembly produces
//! (graph Laplacian + positive diagonal), across random topologies,
//! orderings and right-hand sides.

use numeric::sparse::{LdlFactor, LdlSymbolic, TripletBuilder};
use numeric::{LuFactor, SparseMatrix, Vector};
use proptest::prelude::*;

/// Deterministic value stream for a test case.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() % (1 << 24)) as f64 / (1 << 24) as f64;
        lo + u * (hi - lo)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random connected "tree + chords" SPD matrix: a spanning tree over
/// `n` nodes with `chords` extra edges, conductance-style stamps, and a
/// positive diagonal (the cap/h term), exactly the iteration-matrix
/// shape the transient simulator factorizes.
fn random_mna_like(seed: u64, n: usize, chords: usize) -> SparseMatrix {
    let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
    let mut b = TripletBuilder::new(n, n);
    for i in 0..n {
        b.add(i, i, rng.uniform(0.05, 4.0));
    }
    let stamp = |b: &mut TripletBuilder, u: usize, v: usize, g: f64| {
        b.add(u, u, g);
        b.add(v, v, g);
        b.add(u, v, -g);
        b.add(v, u, -g);
    };
    // Random spanning tree: attach node i to a random earlier node.
    for i in 1..n {
        let p = rng.index(i);
        let g = rng.uniform(0.01, 2.0);
        stamp(&mut b, p, i, g);
    }
    for _ in 0..chords {
        let u = rng.index(n);
        let v = rng.index(n);
        if u != v {
            let g = rng.uniform(0.01, 1.0);
            stamp(&mut b, u, v, g);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn sparse_ldl_matches_dense_lu(seed in 0u64..1_000_000, n in 2usize..48, chords in 0usize..6) {
        let a = random_mna_like(seed, n, chords);
        prop_assert!(a.is_symmetric(1e-12));
        let f = LdlFactor::new(&a).expect("SPD matrix must factor");
        let lu = LuFactor::new(&a.to_dense()).expect("dense oracle");
        let mut rng = Lcg(seed.wrapping_add(17));
        let rhs: Vector = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let x = f.solve(&rhs).unwrap();
        let x_ref = lu.solve(&rhs).unwrap();
        let scale = x_ref.max_abs().max(1.0);
        for i in 0..n {
            prop_assert!(
                (x[i] - x_ref[i]).abs() <= 1e-9 * scale,
                "component {} differs: sparse {} vs dense {}", i, x[i], x_ref[i]
            );
        }
    }

    fn refactor_matches_fresh_factor(seed in 0u64..1_000_000, n in 2usize..32) {
        // Same pattern, new values (a step-size change): refactor through
        // the cached symbolic must equal a from-scratch factorization.
        let a1 = random_mna_like(seed, n, 2);
        let mut a2 = a1.clone();
        let mut rng = Lcg(seed ^ 0xabcdef);
        // Scale the diagonal up (adding cap/h keeps SPD).
        for i in 0..n {
            let p = a2.index_of(i, i).expect("diagonal is stamped");
            a2.values_mut()[p] += rng.uniform(0.1, 5.0);
        }
        let sym = LdlSymbolic::analyze(&a1).unwrap();
        let mut f = sym.factor(&a1).unwrap();
        f.refactor(&a2).unwrap();
        let fresh = sym.factor(&a2).unwrap();
        let rhs: Vector = (0..n).map(|i| ((i * 7 + 3) as f64).sin()).collect();
        let x1 = f.solve(&rhs).unwrap();
        let x2 = fresh.solve(&rhs).unwrap();
        for i in 0..n {
            prop_assert!((x1[i] - x2[i]).abs() == 0.0, "refactor diverged at {}", i);
        }
    }

    fn mul_vec_matches_dense(seed in 0u64..1_000_000, n in 1usize..40) {
        let a = random_mna_like(seed, n, 3);
        let mut rng = Lcg(seed.wrapping_add(99));
        let v: Vector = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let sparse = a.mul_vec(&v);
        let dense = a.to_dense().mul_vec(&v);
        for i in 0..n {
            prop_assert!((sparse[i] - dense[i]).abs() < 1e-12);
        }
    }
}
