//! Property tests for the LU solver: random diagonally dominant systems
//! must solve to small residuals, and the determinant must match the
//! permutation-free 2x2 closed form.

use numeric::{LuFactor, Matrix, Vector};
use proptest::prelude::*;

fn diag_dominant(n: usize, values: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let mut k = 0;
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = values[k % values.len()] % 3.0;
                m[(i, j)] = v;
                row_sum += v.abs();
                k += 1;
            }
        }
        m[(i, i)] = row_sum + 1.0 + (values[k % values.len()].abs() % 2.0);
        k += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solves_diag_dominant_to_small_residual(
        n in 1usize..12,
        values in prop::collection::vec(-10.0f64..10.0, 200),
        rhs in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let a = diag_dominant(n, &values);
        let b: Vector = rhs[..n].to_vec().into();
        let lu = LuFactor::new(&a).expect("diag-dominant is nonsingular");
        let x = lu.solve(&b).expect("dimensions match");
        let ax = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8 * (1.0 + b[i].abs()));
        }
    }

    #[test]
    fn det_2x2_matches_closed_form(a in -9.0f64..9.0, b in -9.0f64..9.0,
                                   c in -9.0f64..9.0, d in -9.0f64..9.0) {
        let m = Matrix::from_rows(&[&[a, b], &[c, d]]).expect("2x2");
        let closed = a * d - b * c;
        match LuFactor::new(&m) {
            Ok(lu) => prop_assert!((lu.det() - closed).abs() < 1e-9 * (1.0 + closed.abs())),
            Err(_) => prop_assert!(closed.abs() < 1e-6 * (1.0 + m.max_abs() * m.max_abs())),
        }
    }

    #[test]
    fn solve_then_multiply_round_trips(
        n in 1usize..10,
        values in prop::collection::vec(-10.0f64..10.0, 200),
        xs in prop::collection::vec(-5.0f64..5.0, 10),
    ) {
        // Pick x, compute b = A x, solve, recover x.
        let a = diag_dominant(n, &values);
        let x_true: Vector = xs[..n].to_vec().into();
        let b = a.mul_vec(&x_true);
        let x = LuFactor::new(&a).expect("nonsingular").solve(&b).expect("solve");
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-8 * (1.0 + x_true[i].abs()));
        }
    }
}
