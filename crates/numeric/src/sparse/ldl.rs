//! Up-looking sparse LDLᵀ factorization for SPD matrices.
//!
//! The factorization computes `P A Pᵀ = L D Lᵀ` with `L` unit lower
//! triangular and `D` diagonal, in two phases:
//!
//! * [`LdlSymbolic::analyze`] — elimination tree and per-column nonzero
//!   counts of `L` from the pattern alone (plus the fill-reducing
//!   permutation). This is the expensive graph analysis and depends only
//!   on the sparsity pattern.
//! * [`LdlFactor`] — the numeric phase. Because the transient
//!   simulator's iteration matrix `A = C/h + G/2` keeps the pattern of
//!   `G` for every step size `h`, a new `h` re-runs only the numeric
//!   phase against the cached symbolic analysis
//!   ([`LdlFactor::refactor`]), allocation-free.
//!
//! The algorithm is the classic up-looking method (Davis, *Algorithm
//! 849: LDL*): row `k` of `L` is found by a sparse triangular solve
//! whose pattern is read off the elimination tree.

use super::csr::SparseMatrix;
use super::order::{is_permutation, min_degree_order};
use crate::{NumericError, Vector};

const NO_PARENT: usize = usize::MAX;

/// The symbolic analysis of an LDLᵀ factorization: permutation,
/// elimination tree and column pointers of `L`. Reusable across any
/// matrix with the same sparsity pattern.
#[derive(Debug, Clone)]
pub struct LdlSymbolic {
    n: usize,
    /// `perm[k]` = original index eliminated at step `k`.
    perm: Vec<usize>,
    /// Inverse permutation: `pinv[orig] = eliminated position`.
    pinv: Vec<usize>,
    /// Elimination tree over permuted indices (`NO_PARENT` = root).
    parent: Vec<usize>,
    /// Column pointers of `L` (`n + 1` entries).
    l_colptr: Vec<usize>,
}

impl LdlSymbolic {
    /// Analyzes `a` under a [`min_degree_order`] fill-reducing ordering.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `a` is not square.
    pub fn analyze(a: &SparseMatrix) -> Result<Self, NumericError> {
        let perm = min_degree_order(a);
        Self::analyze_with(a, perm)
    }

    /// Analyzes `a` under an explicit elimination order (`perm[k]` = the
    /// original index eliminated at step `k`). The identity permutation
    /// factorizes `A` as given.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `a` is not square
    /// and [`NumericError::InvalidInput`] when `perm` is not a
    /// permutation of `0..n`.
    pub fn analyze_with(a: &SparseMatrix, perm: Vec<usize>) -> Result<Self, NumericError> {
        let n = a.require_square("ldl symbolic")?;
        if !is_permutation(&perm, n) {
            return Err(NumericError::InvalidInput(format!(
                "ordering is not a permutation of 0..{n}"
            )));
        }
        let mut pinv = vec![0usize; n];
        for (k, &orig) in perm.iter().enumerate() {
            pinv[orig] = k;
        }

        // Elimination tree + column counts (Davis ldl_symbolic). For a
        // symmetric matrix the CSR row `perm[k]` is the permuted column
        // `k`; only entries landing strictly above the diagonal
        // (pinv < k) matter.
        let mut parent = vec![NO_PARENT; n];
        let mut flag = vec![NO_PARENT; n];
        let mut l_nz = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            let (cols, _) = a.row(perm[k]);
            for &c in cols {
                let mut i = pinv[c];
                if i < k {
                    // Walk from i towards the root, counting one L entry
                    // per unvisited node on the path.
                    while flag[i] != k {
                        if parent[i] == NO_PARENT {
                            parent[i] = k;
                        }
                        l_nz[i] += 1;
                        flag[i] = k;
                        i = parent[i];
                    }
                }
            }
        }
        let mut l_colptr = vec![0usize; n + 1];
        for i in 0..n {
            l_colptr[i + 1] = l_colptr[i] + l_nz[i];
        }
        Ok(LdlSymbolic {
            n,
            perm,
            pinv,
            parent,
            l_colptr,
        })
    }

    /// Dimension of the analyzed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of (strictly sub-diagonal) nonzeros in `L`.
    pub fn nnz_l(&self) -> usize {
        self.l_colptr[self.n]
    }

    /// The elimination order (`perm[k]` = original index at step `k`).
    pub fn order(&self) -> &[usize] {
        &self.perm
    }

    /// Runs the numeric phase, consuming nothing: the symbolic object
    /// can factor any same-pattern matrix repeatedly.
    ///
    /// # Errors
    ///
    /// See [`LdlFactor::refactor`].
    pub fn factor(&self, a: &SparseMatrix) -> Result<LdlFactor, NumericError> {
        let mut f = LdlFactor {
            sym: self.clone(),
            l_idx: vec![0; self.nnz_l()],
            l_val: vec![0.0; self.nnz_l()],
            d: vec![0.0; self.n],
            y: vec![0.0; self.n],
            pattern: vec![0; self.n],
            flag: vec![NO_PARENT; self.n],
            l_fill: vec![0; self.n],
        };
        f.refactor(a)?;
        Ok(f)
    }
}

/// A numeric LDLᵀ factorization bound to one [`LdlSymbolic`] analysis.
#[derive(Debug, Clone)]
pub struct LdlFactor {
    sym: LdlSymbolic,
    /// Row indices of `L`, column-major within `sym.l_colptr`.
    l_idx: Vec<usize>,
    /// Values of `L`, parallel to `l_idx`.
    l_val: Vec<f64>,
    /// The diagonal `D`.
    d: Vec<f64>,
    // Numeric-phase scratch, kept so refactor() never allocates.
    y: Vec<f64>,
    pattern: Vec<usize>,
    flag: Vec<usize>,
    l_fill: Vec<usize>,
}

impl LdlFactor {
    /// One-shot convenience: analyze (minimum-degree order) and factor.
    ///
    /// # Errors
    ///
    /// Propagates symbolic and numeric failures.
    pub fn new(a: &SparseMatrix) -> Result<Self, NumericError> {
        LdlSymbolic::analyze(a)?.factor(a)
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// The symbolic analysis this factor is bound to.
    pub fn symbolic(&self) -> &LdlSymbolic {
        &self.sym
    }

    /// Number of nonzeros in `L` plus the diagonal (for fill metrics).
    pub fn nnz(&self) -> usize {
        self.sym.nnz_l() + self.sym.n
    }

    /// The diagonal of `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Recomputes the numeric factorization for `a`, which must have the
    /// pattern the symbolic analysis was built from (a superset pattern
    /// is an error; a subset is fine — missing entries are zeros).
    /// Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] on a wrong-sized matrix
    /// and [`NumericError::Singular`] when a pivot `d[k]` is not
    /// positive — the input was not SPD (up to roundoff).
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), NumericError> {
        let n = self.sym.n;
        if a.rows() != n || a.cols() != n {
            return Err(NumericError::ShapeMismatch {
                left: (n, n),
                right: (a.rows(), a.cols()),
                op: "ldl refactor",
            });
        }
        let sym = &self.sym;
        let scale = a.values().iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1.0);
        let tiny = f64::EPSILON * scale * (n as f64);
        self.y[..n].fill(0.0);
        self.flag.fill(NO_PARENT);
        self.l_fill.fill(0);
        for k in 0..n {
            // --- pattern of row k of L, in topological (etree) order.
            let mut top = n;
            self.flag[k] = k;
            let (cols, vals) = a.row(sym.perm[k]);
            for (&c, &v) in cols.iter().zip(vals) {
                let i = sym.pinv[c];
                if i > k {
                    continue;
                }
                self.y[i] += v;
                let mut len = 0;
                let mut i = i;
                while self.flag[i] != k {
                    self.pattern[len] = i;
                    len += 1;
                    self.flag[i] = k;
                    i = sym.parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    self.pattern[top] = self.pattern[len];
                }
            }
            // --- sparse triangular solve for the values of row k.
            let mut dk = self.y[k];
            self.y[k] = 0.0;
            for t in top..n {
                let i = self.pattern[t];
                let yi = self.y[i];
                self.y[i] = 0.0;
                let p2 = sym.l_colptr[i] + self.l_fill[i];
                for p in sym.l_colptr[i]..p2 {
                    self.y[self.l_idx[p]] -= self.l_val[p] * yi;
                }
                let d_i = self.d[i];
                let l_ki = yi / d_i;
                dk -= l_ki * yi;
                self.l_idx[p2] = k;
                self.l_val[p2] = l_ki;
                self.l_fill[i] += 1;
            }
            if !dk.is_finite() || dk <= tiny {
                return Err(NumericError::Singular { pivot: k });
            }
            self.d[k] = dk;
        }
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, NumericError> {
        if b.len() != self.sym.n {
            return Err(NumericError::ShapeMismatch {
                left: (self.sym.n, self.sym.n),
                right: (b.len(), 1),
                op: "ldl solve",
            });
        }
        let mut x = Vector::zeros(self.sym.n);
        let mut work = vec![0.0; self.sym.n];
        self.solve_into(b.as_slice(), x.as_mut_slice(), &mut work);
        Ok(x)
    }

    /// Allocation-free solve: `x = A⁻¹ b` using caller-provided scratch
    /// (`work`), all of length `dim()`. `b` and `x` may not alias.
    ///
    /// # Panics
    ///
    /// Panics on slice-length mismatches.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        let n = self.sym.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x.len(), n, "solution length mismatch");
        assert_eq!(work.len(), n, "workspace length mismatch");
        let sym = &self.sym;
        // work = P b
        for k in 0..n {
            work[k] = b[sym.perm[k]];
        }
        // L y = work (unit lower triangular, column-oriented).
        for j in 0..n {
            let yj = work[j];
            if yj != 0.0 {
                for p in sym.l_colptr[j]..sym.l_colptr[j + 1] {
                    work[self.l_idx[p]] -= self.l_val[p] * yj;
                }
            }
        }
        // D z = y.
        for (w, d) in work.iter_mut().zip(&self.d) {
            *w /= d;
        }
        // Lᵀ w = z.
        for j in (0..n).rev() {
            let mut acc = work[j];
            for p in sym.l_colptr[j]..sym.l_colptr[j + 1] {
                acc -= self.l_val[p] * work[self.l_idx[p]];
            }
            work[j] = acc;
        }
        // x = Pᵀ w.
        for k in 0..n {
            x[sym.perm[k]] = work[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::TripletBuilder;
    use super::*;
    use crate::{LuFactor, Matrix};

    /// SPD test fixture: a graph-Laplacian-plus-diagonal (exactly the
    /// MNA iteration matrix shape) over the given edges.
    fn laplacian(n: usize, edges: &[(usize, usize, f64)], diag: f64) -> SparseMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, diag);
        }
        for &(u, v, g) in edges {
            b.add(u, u, g);
            b.add(v, v, g);
            b.add(u, v, -g);
            b.add(v, u, -g);
        }
        b.build()
    }

    fn assert_solves(a: &SparseMatrix, tol: f64) {
        let f = LdlFactor::new(a).expect("factor");
        let lu = LuFactor::new(&a.to_dense()).expect("dense oracle");
        let n = a.rows();
        let b: Vector = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
        let x = f.solve(&b).unwrap();
        let x_ref = lu.solve(&b).unwrap();
        for i in 0..n {
            assert!(
                (x[i] - x_ref[i]).abs() < tol,
                "component {i}: {} vs {}",
                x[i],
                x_ref[i]
            );
        }
    }

    #[test]
    fn factors_small_spd() {
        let mut b = TripletBuilder::new(3, 3);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 5.0),
            (1, 2, 2.0),
            (2, 1, 2.0),
            (2, 2, 6.0),
        ] {
            b.add(r, c, v);
        }
        assert_solves(&b.build(), 1e-12);
    }

    #[test]
    fn tree_laplacian_has_zero_fill() {
        // Path graph: fill-free under min-degree, so nnz(L) = n - 1.
        let n = 30;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0 + i as f64 * 0.1)).collect();
        let a = laplacian(n, &edges, 0.5);
        let f = LdlFactor::new(&a).unwrap();
        assert_eq!(f.symbolic().nnz_l(), n - 1, "tree must factor fill-free");
        assert_solves(&a, 1e-10);
    }

    #[test]
    fn near_tree_has_near_zero_fill() {
        // Path + 2 chords: fill stays O(chords · n) far below dense.
        let n = 40;
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 2.0)).collect();
        edges.push((0, n / 2, 0.7));
        edges.push((5, n - 3, 0.3));
        let a = laplacian(n, &edges, 0.25);
        let f = LdlFactor::new(&a).unwrap();
        assert!(
            f.symbolic().nnz_l() < 3 * n,
            "fill exploded: nnz(L) = {}",
            f.symbolic().nnz_l()
        );
        assert_solves(&a, 1e-10);
    }

    #[test]
    fn identity_permutation_matches_auto_order() {
        let a = laplacian(12, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)], 1.0);
        let sym = LdlSymbolic::analyze_with(&a, (0..12).collect()).unwrap();
        let f = sym.factor(&a).unwrap();
        let auto = LdlFactor::new(&a).unwrap();
        let b: Vector = (0..12).map(|i| i as f64 - 4.0).collect();
        let x1 = f.solve(&b).unwrap();
        let x2 = auto.solve(&b).unwrap();
        for i in 0..12 {
            assert!((x1[i] - x2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_reuses_pattern_for_new_values() {
        let edges = [(0usize, 1usize, 1.0), (1, 2, 3.0), (0, 3, 2.0), (2, 3, 0.5)];
        let a1 = laplacian(4, &edges, 1.0);
        let sym = LdlSymbolic::analyze(&a1).unwrap();
        let mut f = sym.factor(&a1).unwrap();
        // Same pattern, different diagonal (a new step size h).
        let a2 = laplacian(4, &edges, 7.5);
        f.refactor(&a2).unwrap();
        let lu = LuFactor::new(&a2.to_dense()).unwrap();
        let b = Vector::from(vec![1.0, -1.0, 2.0, 0.5]);
        let x = f.solve(&b).unwrap();
        let x_ref = lu.solve(&b).unwrap();
        for i in 0..4 {
            assert!((x[i] - x_ref[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_non_spd() {
        // Indefinite: diagonal can't dominate the negative eigenvalue.
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0);
        assert!(matches!(
            LdlFactor::new(&b.build()),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_singular() {
        // Pure Laplacian with no grounding diagonal: rank n-1.
        let a = laplacian(3, &[(0, 1, 1.0), (1, 2, 1.0)], 0.0);
        assert!(matches!(
            LdlFactor::new(&a),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = SparseMatrix::zeros(2, 3);
        assert!(LdlSymbolic::analyze(&a).is_err());
        let a = laplacian(2, &[(0, 1, 1.0)], 1.0);
        let f = LdlFactor::new(&a).unwrap();
        assert!(f.solve(&Vector::zeros(3)).is_err());
        assert!(LdlSymbolic::analyze_with(&a, vec![0, 0]).is_err());
    }

    #[test]
    fn dense_pattern_still_correct() {
        // Fully dense SPD matrix exercises maximal fill.
        let n = 8;
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                dense[(i, j)] = if i == j {
                    n as f64 + 2.0
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
            }
        }
        let a = SparseMatrix::from_dense(&dense, 0.0);
        assert_solves(&a, 1e-10);
    }

    #[test]
    fn solve_into_is_consistent() {
        let a = laplacian(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)], 0.8);
        let f = LdlFactor::new(&a).unwrap();
        let b = Vector::from(vec![0.5, -1.0, 2.0, 0.0, 1.0]);
        let x = f.solve(&b).unwrap();
        let mut x2 = vec![0.0; 5];
        let mut work = vec![0.0; 5];
        f.solve_into(b.as_slice(), &mut x2, &mut work);
        assert_eq!(x.as_slice(), &x2[..]);
    }
}
