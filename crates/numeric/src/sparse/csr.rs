//! Compressed-sparse-row matrix and its triplet builder.

use crate::{Matrix, NumericError, Vector};

/// Accumulates `(row, col, value)` triplets and compresses them into a
/// [`SparseMatrix`]. Duplicate coordinates are summed, matching how MNA
/// stamps accumulate conductances.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates an empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-dedup) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses the triplets into CSR form: rows in order, columns
    /// sorted within each row, duplicates summed. Explicit zeros are
    /// kept so a stamped pattern survives even when values cancel.
    pub fn build(mut self) -> SparseMatrix {
        self.entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in self.entries {
            if last == Some((r, c)) {
                *values.last_mut().expect("duplicate follows an entry") += v;
                continue;
            }
            last = Some((r, c));
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A sparse matrix in compressed-sparse-row (CSR) form.
///
/// Rows are stored contiguously with column indices sorted ascending and
/// no duplicates, the invariants the LDLᵀ factorization relies on. For a
/// symmetric matrix the CSR rows double as CSC columns.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row-major, sorted within each row.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, parallel to [`SparseMatrix::col_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored values; the pattern is fixed, so this is how a
    /// same-pattern matrix (e.g. a new timestep's iteration matrix) is
    /// updated in place.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The `(column, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The stored value at `(r, c)`, or 0 for an unstored coordinate.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.index_of(r, c).map_or(0.0, |p| self.values[p])
    }

    /// The storage index of entry `(r, c)`, if present. Entry values can
    /// then be rewritten through [`SparseMatrix::values_mut`] without
    /// re-searching the pattern.
    pub fn index_of(&self, r: usize, c: usize) -> Option<usize> {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[lo..hi]
            .binary_search(&c)
            .ok()
            .map(|off| lo + off)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.mul_vec_into(v.as_slice(), out.as_mut_slice());
        out
    }

    /// Allocation-free matvec: `out = self * v`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec input length mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[p] * v[self.col_idx[p]];
            }
            *slot = acc;
        }
    }

    /// Whether the matrix is structurally and numerically symmetric
    /// within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[p];
                if (self.values[p] - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Expands to a dense [`Matrix`] (test oracle / dense solver path).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[p])] += self.values[p];
            }
        }
        m
    }

    /// Builds a CSR matrix from a dense one, dropping entries with
    /// `|value| <= drop_tol`.
    pub fn from_dense(m: &Matrix, drop_tol: f64) -> Self {
        let mut b = TripletBuilder::new(m.rows(), m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m[(r, c)];
                if v.abs() > drop_tol {
                    b.add(r, c, v);
                }
            }
        }
        b.build()
    }

    /// Validates square shape, returning the dimension.
    pub(crate) fn require_square(&self, op: &'static str) -> Result<usize, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.cols, self.rows),
                op,
            });
        }
        Ok(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 2.0);
        b.add(2, 1, -1.0);
        b.add(0, 2, 3.0);
        b.add(1, 1, 4.0);
        b.add(0, 0, 0.5); // duplicate accumulates
        b.add(1, 2, -1.0);
        b.add(2, 2, 5.0);
        b.build()
    }

    #[test]
    fn builder_sorts_and_dedups() {
        let m = sample();
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row(0), (&[0usize, 2][..], &[2.5, 3.0][..]));
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.row_ptr(), &[0, 2, 4, 6]);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let v = Vector::from(vec![1.0, -2.0, 0.5]);
        let sparse = m.mul_vec(&v);
        let dense = m.to_dense().mul_vec(&v);
        for i in 0..3 {
            assert!((sparse[i] - dense[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn symmetry_check() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 2.0);
        b.add(1, 0, 2.0);
        b.add(1, 1, 3.0);
        let m = b.build();
        assert!(m.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
        assert!(!SparseMatrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn from_dense_round_trips() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, -2.0], &[0.0, 0.0, 0.0], &[4.0, 0.0, 3.0]])
            .unwrap();
        let s = SparseMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 4);
        let back = s.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(back[(r, c)], d[(r, c)]);
            }
        }
    }

    #[test]
    fn index_of_finds_entries() {
        let m = sample();
        let p = m.index_of(0, 2).unwrap();
        assert_eq!(m.values()[p], 3.0);
        assert_eq!(m.index_of(0, 1), None);
    }

    #[test]
    fn explicit_zero_survives() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        b.add(1, 1, 1.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.index_of(0, 0), Some(0));
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = TripletBuilder::new(3, 3).build();
        assert_eq!(m.nnz(), 0);
        let v = Vector::from(vec![1.0, 1.0, 1.0]);
        assert_eq!(m.mul_vec(&v).as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_triplet_panics() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(2, 0, 1.0);
    }
}
