//! Sparse linear algebra for near-tree MNA systems.
//!
//! RC parasitic networks are trees plus a handful of loop chords and
//! coupling caps, so their MNA matrices have O(n) nonzeros. This module
//! provides what the transient simulator's hot path needs to exploit
//! that:
//!
//! * [`csr`] — a compressed-sparse-row [`SparseMatrix`] built from
//!   triplets (sorted, deduplicated), with allocation-free matvec;
//! * [`order`] — a deterministic greedy minimum-degree elimination
//!   ordering ([`min_degree_order`]) that yields near-zero fill on
//!   near-tree graphs;
//! * [`ldl`] — an up-looking sparse LDLᵀ factorization for symmetric
//!   positive-definite matrices, split into a reusable symbolic phase
//!   ([`LdlSymbolic`]: elimination tree + column counts) and a numeric
//!   phase ([`LdlFactor`]) so re-factorizations at a new timestep reuse
//!   the pattern analysis.
//!
//! # Examples
//!
//! ```
//! use numeric::sparse::{LdlFactor, TripletBuilder};
//! use numeric::Vector;
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! let mut b = TripletBuilder::new(2, 2);
//! b.add(0, 0, 4.0);
//! b.add(0, 1, 1.0);
//! b.add(1, 0, 1.0);
//! b.add(1, 1, 3.0);
//! let a = b.build();
//! let f = LdlFactor::new(&a)?;
//! let x = f.solve(&Vector::from(vec![1.0, 2.0]))?;
//! assert!((a.mul_vec(&x)[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod csr;
pub mod ldl;
pub mod order;

pub use csr::{SparseMatrix, TripletBuilder};
pub use ldl::{LdlFactor, LdlSymbolic};
pub use order::min_degree_order;
