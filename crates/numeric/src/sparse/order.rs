//! Fill-reducing elimination orderings.
//!
//! MNA conductance graphs are trees plus a few loop chords, so a greedy
//! minimum-degree ordering — eliminate the vertex of smallest current
//! degree, connect its neighbours into a clique, repeat — produces an
//! elimination order with near-zero fill: on an exact tree it reduces to
//! a leaf-first post-ordering, which is fill-free.

use super::SparseMatrix;
use std::collections::BTreeSet;

/// Computes a greedy minimum-degree elimination ordering of the
/// symmetric pattern of `a` (the pattern of `a + aᵀ` is used, so a
/// structurally unsymmetric input is still ordered sensibly).
///
/// Returns `perm` with `perm[k]` = the original index eliminated at step
/// `k`. Ties break on the smallest original index, making the order
/// deterministic. The diagonal is ignored.
pub fn min_degree_order(a: &SparseMatrix) -> Vec<usize> {
    let n = a.rows().max(a.cols());
    // BTreeSet keeps neighbour scans ordered → deterministic cliques.
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for r in 0..a.rows() {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c != r {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }

    // (degree, node) heap with lazy invalidation: stale entries are
    // skipped when their recorded degree no longer matches.
    let mut heap: BTreeSet<(usize, usize)> = (0..n).map(|v| (adj[v].len(), v)).collect();
    let mut alive = vec![true; n];
    let mut perm = Vec::with_capacity(n);

    while let Some(&(deg, v)) = heap.iter().next() {
        heap.remove(&(deg, v));
        if !alive[v] || deg != adj[v].len() {
            continue;
        }
        alive[v] = false;
        perm.push(v);
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        // Eliminating v makes its neighbourhood a clique (these are
        // exactly the fill edges LDLᵀ would create).
        for (i, &p) in neighbours.iter().enumerate() {
            adj[p].remove(&v);
            for &q in &neighbours[i + 1..] {
                if adj[p].insert(q) {
                    adj[q].insert(p);
                }
            }
        }
        for &p in &neighbours {
            heap.insert((adj[p].len(), p));
        }
    }
    perm
}

/// Validates that `perm` is a permutation of `0..n`.
pub(crate) fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::super::TripletBuilder;
    use super::*;

    fn path_graph(n: usize) -> SparseMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
        }
        for i in 0..n - 1 {
            b.add(i, i + 1, -1.0);
            b.add(i + 1, i, -1.0);
        }
        b.build()
    }

    #[test]
    fn order_is_a_permutation() {
        let m = path_graph(7);
        let p = min_degree_order(&m);
        assert!(is_permutation(&p, 7));
    }

    #[test]
    fn tree_elimination_is_leaf_first() {
        // On a path, minimum degree always eliminates an endpoint: the
        // interior nodes (degree 2) only surface once exposed.
        let m = path_graph(6);
        let p = min_degree_order(&m);
        assert!(p[0] == 0 || p[0] == 5, "first eliminated: {}", p[0]);
        // No step should ever eliminate a node of degree > 1 on a path.
        // (Checked indirectly via the LDL fill tests in `ldl`.)
    }

    #[test]
    fn star_center_goes_last() {
        // Star: node 0 connected to 1..n. Center has max degree and must
        // be eliminated last.
        let n = 6;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 1.0);
        }
        for i in 1..n {
            b.add(0, i, -1.0);
            b.add(i, 0, -1.0);
        }
        let p = min_degree_order(&b.build());
        // The center only becomes eliminable once all but one leaf is
        // gone, so it sits in the last two positions.
        let pos = p.iter().position(|&v| v == 0).unwrap();
        assert!(pos >= n - 2, "center eliminated too early: position {pos}");
    }

    #[test]
    fn deterministic() {
        let m = path_graph(9);
        assert_eq!(min_degree_order(&m), min_degree_order(&m));
    }

    #[test]
    fn handles_empty_and_diagonal_only() {
        let p = min_degree_order(&SparseMatrix::zeros(4, 4));
        assert!(is_permutation(&p, 4));
        let mut b = TripletBuilder::new(3, 3);
        for i in 0..3 {
            b.add(i, i, 1.0);
        }
        let p = min_degree_order(&b.build());
        assert!(is_permutation(&p, 3));
    }
}
