//! Dense `f64` vector with the handful of operations the solvers need.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense vector of `f64` values.
///
/// # Examples
///
/// ```
/// use numeric::Vector;
///
/// let v = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(v.norm2(), 5.0);
/// assert_eq!(v.dot(&v), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning its storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, rhs: &Vector) -> f64 {
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Largest absolute element, or 0 for an empty vector.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// In-place `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.5e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_len() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norm() {
        let v = Vector::from(vec![1.0, 2.0, 2.0]);
        assert_eq!(v.dot(&v), 9.0);
        assert_eq!(v.norm2(), 3.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, -4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn max_abs_empty_is_zero() {
        assert_eq!(Vector::zeros(0).max_abs(), 0.0);
        assert_eq!(Vector::from(vec![-3.0, 2.0]).max_abs(), 3.0);
    }
}
