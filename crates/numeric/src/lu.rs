//! LU factorization with partial pivoting.
//!
//! The transient simulator factorizes its system matrix once per net and then
//! back-substitutes thousands of right-hand sides, so the factorization is a
//! separate, reusable object.

use crate::{Matrix, NumericError, Vector};

/// An LU factorization `P * A = L * U` of a square matrix with partial
/// pivoting, reusable across many right-hand sides.
///
/// # Examples
///
/// ```
/// use numeric::{Matrix, Vector, LuFactor};
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&Vector::from(vec![3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    n: usize,
    /// Packed L (unit diagonal, below) and U (on and above the diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation, used by [`LuFactor::det`].
    sign: f64,
}

impl LuFactor {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] when `a` is not square and
    /// [`NumericError::Singular`] when a pivot column is numerically zero.
    pub fn new(a: &Matrix) -> Result<Self, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::InvalidInput(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivot: pick the largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= f64::EPSILON * scale * (n as f64) {
                return Err(NumericError::Singular { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let upd = factor * lu[(k, j)];
                        lu[(i, j)] -= upd;
                    }
                }
            }
        }
        Ok(LuFactor { n, lu, perm, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A * x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, NumericError> {
        if b.len() != self.n {
            return Err(NumericError::ShapeMismatch {
                left: (self.n, self.n),
                right: (b.len(), 1),
                op: "lu solve",
            });
        }
        let mut x = Vector::zeros(self.n);
        self.solve_into(b.as_slice(), x.as_mut_slice());
        Ok(x)
    }

    /// Allocation-free solve: writes `A⁻¹ b` into `x`. `b` and `x` must
    /// both have length `dim()` (they may not alias).
    ///
    /// # Panics
    ///
    /// Panics on slice-length mismatches.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        // Apply permutation and forward-substitute L (unit diagonal).
        for i in 0..self.n {
            let mut acc = b[self.perm[i]];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back-substitute U.
        for i in (0..self.n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// One-shot convenience wrapper: factorize `a` and solve `a * x = b`.
///
/// # Errors
///
/// Propagates factorization and shape errors from [`LuFactor`].
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, NumericError> {
    LuFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
        let ax = a.mul_vec(x);
        ax.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0_f64, f64::max)
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]])
            .unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::InvalidInput(_))
        ));
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Vector::from(vec![2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_matches_hand_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn reusable_factorization_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        for (b0, b1) in [(1.0, 0.0), (0.0, 1.0), (2.5, -3.0)] {
            let b = Vector::from(vec![b0, b1]);
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuFactor::new(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn solves_moderately_large_diagonally_dominant_system() {
        let n = 50;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = if i == j {
                    (n as f64) + 1.0
                } else {
                    1.0 / ((i + j + 1) as f64)
                };
            }
        }
        let xs: Vector = (0..n).map(|i| (i as f64) * 0.1 - 2.0).collect();
        let b = a.mul_vec(&xs);
        let x = solve(&a, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - xs[i]).abs() < 1e-9, "component {i}");
        }
    }
}
