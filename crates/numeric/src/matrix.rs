//! Dense row-major `f64` matrix.

use crate::{NumericError, Vector};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use numeric::Matrix;
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows` x `cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] when `rows` is empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericError> {
        if rows.is_empty() {
            return Err(NumericError::InvalidInput("no rows given".into()));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(NumericError::InvalidInput("zero-width rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(NumericError::InvalidInput(format!(
                    "row {i} has {} columns, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericError> {
        if data.len() != rows * cols {
            return Err(NumericError::InvalidInput(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, NumericError> {
        if self.cols != rhs.rows {
            return Err(NumericError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = i * rhs.cols;
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[lhs_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, x) in row.iter().zip(v.as_slice()) {
                acc += a * x;
            }
            *o = acc;
        }
        Vector::from(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, NumericError> {
        if self.shape() != rhs.shape() {
            return Err(NumericError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add",
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Linear combination `alpha * self + beta * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] when shapes differ.
    pub fn axpby(&self, alpha: f64, rhs: &Matrix, beta: f64) -> Result<Matrix, NumericError> {
        if self.shape() != rhs.shape() {
            return Err(NumericError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "axpby",
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| alpha * a + beta * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Whether the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericError::InvalidInput(_)));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty_row: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty_row]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(NumericError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 7.0]]).unwrap();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Vector::from(vec![1.0, -1.0]);
        let out = a.mul_vec(&v);
        assert_eq!(out.as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, -1.0]]).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.as_slice(), &[4.0, 1.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn axpby_combines() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[10.0, 20.0]]).unwrap();
        let c = a.axpby(2.0, &b, 0.5).unwrap();
        assert_eq!(c.as_slice(), &[7.0, 14.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 5.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(&[&[1.0, -7.5], &[3.0, 2.0]]).unwrap();
        assert_eq!(m.max_abs(), 7.5);
    }
}
