//! Dense and sparse linear algebra plus statistics for the wire-timing
//! workspace.
//!
//! Two solver families cover every need of the MNA simulator
//! ([`rcsim`](https://docs.rs/rcsim)) and the moment engine
//! ([`elmore`](https://docs.rs/elmore)) without pulling in an external
//! BLAS:
//!
//! * a dense row-major [`Matrix`] with a partial-pivoting
//!   [`lu::LuFactor`] — small systems, and the test oracle for the
//!   sparse path;
//! * a CSR [`sparse::SparseMatrix`] with a fill-reducing sparse LDLᵀ
//!   ([`sparse::LdlFactor`]) for the near-tree SPD systems transient
//!   simulation hammers — near-linear in the nonzero count.
//!
//! # Examples
//!
//! ```
//! use numeric::{Matrix, Vector, lu::LuFactor};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&Vector::from(vec![1.0, 2.0]))?;
//! assert!((a.mul_vec(&x)[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod lu;
pub mod matrix;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use lu::LuFactor;
pub use matrix::Matrix;
pub use sparse::{LdlFactor, LdlSymbolic, SparseMatrix, TripletBuilder};
pub use vector::Vector;

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumericError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left-hand operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right-hand operand, `(rows, cols)`.
        right: (usize, usize),
        /// Short description of the operation that failed.
        op: &'static str,
    },
    /// The matrix is singular (or numerically so) and cannot be factorized.
    Singular {
        /// Pivot column at which factorization broke down.
        pivot: usize,
    },
    /// Construction input was empty or ragged.
    InvalidInput(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NumericError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for NumericError {}
