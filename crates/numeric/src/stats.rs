//! Accuracy statistics used throughout the evaluation: R² score, mean
//! absolute error, and maximum absolute error — the three quantities the
//! paper reports in TABLE III-V.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Coefficient of determination `R² = 1 - SS_res / SS_tot`.
///
/// Matches the paper's accuracy metric: 1.0 means a perfect fit, values can
/// go negative for predictions worse than the mean. Returns `None` when the
/// slices differ in length, are empty, or the truth is constant (undefined
/// `SS_tot`).
///
/// # Examples
///
/// ```
/// let truth = [1.0, 2.0, 3.0];
/// assert_eq!(numeric::stats::r2_score(&truth, &truth), Some(1.0));
/// ```
pub fn r2_score(truth: &[f64], pred: &[f64]) -> Option<f64> {
    if truth.len() != pred.len() || truth.is_empty() {
        return None;
    }
    let m = mean(truth);
    let ss_tot: f64 = truth.iter().map(|y| (y - m) * (y - m)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = truth
        .iter()
        .zip(pred)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

/// Mean absolute error. Returns `None` on length mismatch or empty input.
pub fn mean_abs_err(truth: &[f64], pred: &[f64]) -> Option<f64> {
    if truth.len() != pred.len() || truth.is_empty() {
        return None;
    }
    Some(
        truth
            .iter()
            .zip(pred)
            .map(|(y, p)| (y - p).abs())
            .sum::<f64>()
            / truth.len() as f64,
    )
}

/// Maximum absolute error (the paper's "MAE" column in TABLE V).
/// Returns `None` on length mismatch or empty input.
pub fn max_abs_err(truth: &[f64], pred: &[f64]) -> Option<f64> {
    if truth.len() != pred.len() || truth.is_empty() {
        return None;
    }
    Some(
        truth
            .iter()
            .zip(pred)
            .map(|(y, p)| (y - p).abs())
            .fold(0.0_f64, f64::max),
    )
}

/// Root-mean-square error. Returns `None` on length mismatch or empty input.
pub fn rmse(truth: &[f64], pred: &[f64]) -> Option<f64> {
    if truth.len() != pred.len() || truth.is_empty() {
        return None;
    }
    let mse = truth
        .iter()
        .zip(pred)
        .map(|(y, p)| (y - p) * (y - p))
        .sum::<f64>()
        / truth.len() as f64;
    Some(mse.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[1.0, 3.0]), 1.0);
    }

    #[test]
    fn perfect_prediction_has_r2_one() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2_score(&y, &y), Some(1.0));
    }

    #[test]
    fn mean_prediction_has_r2_zero() {
        let y = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        let r2 = r2_score(&y, &p).unwrap();
        assert!(r2.abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let p = [3.0, 2.0, 1.0];
        assert!(r2_score(&y, &p).unwrap() < 0.0);
    }

    #[test]
    fn r2_undefined_cases() {
        assert_eq!(r2_score(&[], &[]), None);
        assert_eq!(r2_score(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(r2_score(&[2.0, 2.0], &[2.0, 2.0]), None);
    }

    #[test]
    fn error_metrics() {
        let y = [0.0, 1.0, 2.0];
        let p = [0.5, 1.0, 0.0];
        assert_eq!(mean_abs_err(&y, &p), Some(2.5 / 3.0));
        assert_eq!(max_abs_err(&y, &p), Some(2.0));
        let r = rmse(&y, &p).unwrap();
        assert!((r - (4.25_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn error_metrics_reject_mismatch() {
        assert_eq!(mean_abs_err(&[1.0], &[]), None);
        assert_eq!(max_abs_err(&[], &[]), None);
        assert_eq!(rmse(&[1.0], &[1.0, 2.0]), None);
    }
}
