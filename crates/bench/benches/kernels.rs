//! Criterion micro-benchmarks for the kernels behind every experiment:
//! SPEF parsing, analytical metrics, golden transient simulation, model
//! inference (per plan) and the DAC'20 GBDT.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gnn::gbdt::GbdtConfig;
use gnntrans::dac20::Dac20Estimator;
use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::spef::{parse, write, SpefHeader};
use rcnet::{RcNet, Seconds};
use rcsim::{GoldenTimer, SiMode};

fn sample_nets(n: usize, seed: u64) -> Vec<RcNet> {
    let cfg = NetConfig {
        nodes_min: 16,
        nodes_max: 32,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    (0..n).map(|i| g.net(format!("n{i}"), i % 2 == 0)).collect()
}

fn trained_estimator(nets: &[RcNet]) -> (WireTimingEstimator, DatasetBuilder) {
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(nets).expect("dataset");
    let mut cfg = EstimatorConfig::plan_b_small();
    cfg.epochs = 5;
    let mut est = WireTimingEstimator::new(&cfg, 7);
    est.train(&data).expect("train");
    (est, builder)
}

fn bench_spef(c: &mut Criterion) {
    let nets = sample_nets(20, 3);
    let text = write(&SpefHeader::default(), &nets);
    c.bench_function("spef_parse_20_nets", |b| {
        b.iter(|| parse(std::hint::black_box(&text)).expect("parse"))
    });
    c.bench_function("spef_write_20_nets", |b| {
        b.iter(|| write(&SpefHeader::default(), std::hint::black_box(&nets)))
    });
}

fn bench_analytic(c: &mut Criterion) {
    let nets = sample_nets(1, 5);
    c.bench_function("elmore_analysis_32_nodes", |b| {
        b.iter(|| elmore::WireAnalysis::new(std::hint::black_box(&nets[0])).expect("analysis"))
    });
}

fn bench_golden(c: &mut Criterion) {
    let nets = sample_nets(1, 7);
    let timer = GoldenTimer::default().with_steps(2000);
    c.bench_function("golden_transient_32_nodes", |b| {
        b.iter(|| {
            timer
                .time_net(
                    std::hint::black_box(&nets[0]),
                    Seconds::from_ps(20.0),
                    SiMode::Off,
                )
                .expect("sim")
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let nets = sample_nets(24, 9);
    let (est, builder) = trained_estimator(&nets[..16]);
    let probe = nets[20].clone();
    let ctx = builder.context_for(&probe);
    c.bench_function("gnntrans_inference_per_net", |b| {
        b.iter(|| {
            est.predict_net(std::hint::black_box(&probe), &ctx)
                .expect("predict")
        })
    });

    let data = DatasetBuilder::new(1).build(&nets[..16]).expect("dataset");
    let dac = Dac20Estimator::fit(&data, &GbdtConfig::default()).expect("fit");
    c.bench_function("dac20_inference_per_net", |b| {
        b.iter(|| {
            dac.predict_net(std::hint::black_box(&probe), &ctx)
                .expect("predict")
        })
    });
}

fn bench_training_step(c: &mut Criterion) {
    let nets = sample_nets(8, 11);
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(&nets).expect("dataset");
    c.bench_function("gnntrans_train_epoch_8_nets", |b| {
        b.iter_batched(
            || {
                let mut cfg = EstimatorConfig::plan_b_small();
                cfg.epochs = 1;
                WireTimingEstimator::new(&cfg, 3)
            },
            |mut est| {
                est.train(&data).expect("train");
                est
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    // Training-epoch iterations cost seconds; keep sampling tight so the
    // full suite finishes in minutes.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_spef,
        bench_analytic,
        bench_golden,
        bench_inference,
        bench_training_step
}
criterion_main!(benches);
