//! Plain-text table formatting matching the paper's row/column layout.

use std::fmt::Write as _;

/// Accumulates rows and prints an aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct TableWriter {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TableWriter {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified already).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                let _ = write!(out, "{c:<w$}  ");
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TableWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TableWriter::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut t = TableWriter::new("R", &["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert!(t.render().contains('3'));
    }
}
