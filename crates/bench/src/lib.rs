//! Shared experiment harness: roster dataset assembly, model zoo
//! training, evaluation helpers and table formatting used by the
//! `fig*`/`table*` binaries that regenerate the paper's results.

pub mod accuracy;
pub mod harness;
pub mod tables;

pub use harness::{
    build_test_samples, build_train_dataset, eval_baseline, train_baselines, ExperimentConfig,
};
pub use tables::TableWriter;
