//! Shared experiment harness: roster dataset assembly, model zoo
//! training, evaluation helpers and table formatting used by the
//! `fig*`/`table*` binaries that regenerate the paper's results.

pub mod accuracy;
pub mod harness;
pub mod tables;

pub use harness::{
    build_test_samples, build_train_dataset, eval_baseline, run_experiment, train_baselines,
    write_obs_report, ExperimentConfig,
};
pub use tables::TableWriter;
