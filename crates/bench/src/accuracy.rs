//! Shared driver for TABLE III (non-tree nets) and TABLE IV (all nets):
//! train every estimator once, evaluate per test design, print the
//! paper's row/column layout.

use crate::harness::{
    build_test_samples, build_train_dataset, eval_baseline, train_baselines, ExperimentConfig,
};
use crate::tables::TableWriter;
use gnn::gbdt::GbdtConfig;
use gnntrans::dac20::Dac20Estimator;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use gnntrans::metrics::{evaluate_estimator, EvalResult, Evaluator};
use gnntrans::{CoreError, Dataset, Sample};

/// Evaluates the DAC'20 GBDT on samples.
fn eval_dac20(
    model: &Dac20Estimator,
    samples: &[Sample],
    nontree_only: bool,
) -> Result<EvalResult, CoreError> {
    let mut ev = Evaluator::new();
    for s in samples {
        if nontree_only && s.is_tree() {
            continue;
        }
        for (i, (slew, delay)) in model.predict_rows(&s.dac20_rows).iter().enumerate() {
            ev.push(
                (
                    s.targets_ps.get(i, 0) as f64,
                    s.targets_ps.get(i, 1) as f64,
                ),
                (*slew, *delay),
            );
        }
    }
    ev.finish()
}

/// Everything trained once for the accuracy tables.
pub struct TrainedZoo {
    /// The training dataset (scalers are reused for baseline inference).
    pub train_data: Dataset,
    /// The GNNTrans estimator.
    pub gnntrans: WireTimingEstimator,
    /// The DAC'20 GBDT baseline.
    pub dac20: Dac20Estimator,
    /// GCNII, GraphSage, GAT, graph transformer (in that order).
    pub baselines: Vec<Box<dyn gnn::models::GraphModel>>,
}

/// Trains the full model zoo on the scaled training roster.
///
/// # Errors
///
/// Propagates dataset-building and training failures.
pub fn train_zoo(cfg: &ExperimentConfig) -> Result<TrainedZoo, CoreError> {
    eprintln!(
        "[accuracy] generating + labelling training roster (scale {})...",
        cfg.scale
    );
    let train_data = build_train_dataset(cfg)?;
    eprintln!(
        "[accuracy] {} training nets; training GNNTrans...",
        train_data.samples.len()
    );
    let mut est_cfg = EstimatorConfig::plan_b_small();
    // The paper trains GNNTrans to convergence (19 GPU-hours); give it
    // twice the baseline epoch budget and a wider hidden state here.
    est_cfg.epochs = cfg.epochs * 2;
    est_cfg.hidden = 32;
    let mut gnntrans = WireTimingEstimator::new(&est_cfg, cfg.seed);
    gnntrans.train(&train_data)?;
    eprintln!("[accuracy] training DAC'20 GBDT...");
    let dac20 = Dac20Estimator::fit(&train_data, &GbdtConfig::default())?;
    eprintln!("[accuracy] training graph-learning baselines...");
    let baselines = train_baselines(&train_data, cfg)?;
    Ok(TrainedZoo {
        train_data,
        gnntrans,
        dac20,
        baselines,
    })
}

/// Runs the TABLE III/IV protocol and renders the table.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run_accuracy_table(
    cfg: &ExperimentConfig,
    nontree_only: bool,
) -> Result<TableWriter, CoreError> {
    let zoo = train_zoo(cfg)?;
    let tests = build_test_samples(cfg)?;
    let which = if nontree_only { "Non-tree" } else { "All" };
    let mut table = TableWriter::new(
        format!(
            "{which}-net wire slew/delay estimation accuracy (R² score), scale={}",
            cfg.scale
        ),
        &[
            "Benchmark", "DAC20", "GCNII", "GraphSage", "GAT", "Trans.", "GNNTrans",
        ],
    );

    let fmt = |r: &Result<EvalResult, CoreError>| match r {
        Ok(r) => format!("{:.3}/{:.3}", r.r2_slew, r.r2_delay),
        Err(_) => "--/--".to_string(),
    };
    let acc = |avg: &mut (f64, f64, f64), r: &Result<EvalResult, CoreError>| {
        if let Ok(r) = r {
            avg.0 += r.r2_slew;
            avg.1 += r.r2_delay;
            avg.2 += 1.0;
        }
    };
    let mut avg: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); 6];
    for (spec, samples) in &tests {
        let mut cells = vec![spec.name.to_string()];
        let dac = eval_dac20(&zoo.dac20, samples, nontree_only);
        cells.push(fmt(&dac));
        acc(&mut avg[0], &dac);
        for (bi, model) in zoo.baselines.iter().enumerate() {
            let r = eval_baseline(model.as_ref(), &zoo.train_data, samples, nontree_only);
            cells.push(fmt(&r));
            acc(&mut avg[1 + bi], &r);
        }
        let ours = evaluate_estimator(&zoo.gnntrans, samples, nontree_only);
        cells.push(fmt(&ours));
        acc(&mut avg[5], &ours);
        table.row(cells);
    }
    let mut cells = vec!["Average".to_string()];
    for (s, d, n) in &avg {
        if *n > 0.0 {
            cells.push(format!("{:.3}/{:.3}", s / n, d / n));
        } else {
            cells.push("--/--".to_string());
        }
    }
    table.row(cells);
    Ok(table)
}
