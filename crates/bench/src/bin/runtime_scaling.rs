//! Runtime scaling of wire-timing inference (§IV-C): the paper reports
//! 55.7 s average and 97.6 s for its largest design (~200 k nets). This
//! harness measures single-thread estimator throughput against growing
//! net counts, compares with the golden simulator on a subsample, and
//! extrapolates to the paper's 200 k-net operating point.
//!
//! ```text
//! cargo run -p bench --release --bin runtime_scaling [-- --seed N --epochs E]
//! ```

use bench::harness::ExperimentConfig;
use bench::tables::TableWriter;
use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use netgen::nets::{NetConfig, NetGenerator};
use rcsim::{GoldenTimer, SiMode};
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("runtime_scaling", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    let net_cfg = NetConfig {
        nodes_min: 6,
        nodes_max: 36,
        ..Default::default()
    };

    // Train once.
    eprintln!("[runtime] training estimator...");
    let mut g = NetGenerator::new(cfg.seed, net_cfg.clone());
    let train: Vec<_> = (0..300)
        .map(|i| g.net(format!("t{i}"), i % 3 == 0))
        .collect();
    let builder = DatasetBuilder::new(cfg.seed);
    let data = DatasetBuilder::new(cfg.seed)
        .build(&train)
        .expect("train data");
    let mut ecfg = EstimatorConfig::plan_b_small();
    ecfg.epochs = cfg.epochs.min(25);
    let mut est = WireTimingEstimator::new(&ecfg, cfg.seed);
    est.train(&data).expect("training");

    let mut table = TableWriter::new(
        "Wire-timing inference runtime scaling (single thread)",
        &["#nets", "#paths", "total (s)", "us/net", "nets/s", "extrap. 200k (s)"],
    );
    let mut last_us_per_net = 0.0;
    for &count in &[1_000usize, 5_000, 20_000] {
        let nets: Vec<_> = (0..count)
            .map(|i| g.net(format!("s{count}_{i}"), i % 3 == 0))
            .collect();
        let contexts: Vec<_> = nets.iter().map(|n| builder.context_for(n)).collect();
        let paths: usize = nets.iter().map(|n| n.paths().len()).sum();

        let start = Instant::now();
        let out = est
            .predict_many(nets.iter().zip(contexts.iter()))
            .expect("inference");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), count);
        let us_per_net = 1e6 * secs / count as f64;
        last_us_per_net = us_per_net;
        table.row(vec![
            count.to_string(),
            paths.to_string(),
            format!("{secs:.2}"),
            format!("{us_per_net:.0}"),
            format!("{:.0}", count as f64 / secs),
            format!("{:.1}", us_per_net * 0.2),
        ]);
    }
    println!("{table}");

    // Golden comparison on a 50-net subsample.
    let sample: Vec<_> = (0..50)
        .map(|i| g.net(format!("gold{i}"), i % 3 == 0))
        .collect();
    let start = Instant::now();
    for net in &sample {
        let ctx = builder.context_for(net);
        GoldenTimer::new(0.8, ctx.drive_res)
            .with_steps(2500)
            .time_net(net, ctx.input_slew, SiMode::Off)
            .expect("golden");
    }
    let golden_us = 1e6 * start.elapsed().as_secs_f64() / sample.len() as f64;
    println!("golden transient simulation: {golden_us:.0} us/net");
    println!(
        "speedup estimator vs golden: {:.1}x  (paper: wire timing of the \
         200k-net design in 97.6 s;\nextrapolated here: {:.1} s)",
        golden_us / last_us_per_net,
        last_us_per_net * 0.2
    );
}
