//! TABLE III: wire slew/delay estimation accuracy (R² score) on
//! **non-tree** nets — the case where the DAC'20 loop-breaking baseline
//! collapses and GNNTrans's global attention + path features win.
//!
//! ```text
//! cargo run -p bench --release --bin table3_nontree \
//!     [-- --scale X --seed N --epochs E --quick]
//! ```

use bench::accuracy::run_accuracy_table;
use bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("table3", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    match run_accuracy_table(&cfg, true) {
        Ok(table) => {
            println!("{table}");
            println!(
                "Shape check vs paper TABLE III: GNNTrans highest, DAC20 \
                 lowest, message-passing baselines in between."
            );
        }
        Err(e) => {
            eprintln!("table3_nontree failed: {e}");
            std::process::exit(1);
        }
    }
}
