//! Fig. 2(b): distribution of wire-path counts per net over a large
//! design — the paper observes a maximum of 49 with most nets at 10-30
//! paths, which is what makes per-path graph learning tractable.
//!
//! ```text
//! cargo run -p bench --release --bin fig2_stats [-- --scale X --seed N]
//! ```

use bench::{ExperimentConfig, TableWriter};
use netgen::designs::{generate_design, paper_roster};
use netgen::nets::NetConfig;

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("fig2_stats", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    // The paper's "open-source circuit with 200k nets" is mirrored by the
    // largest test design (OPENGFX, 231 934 nets) at the chosen scale,
    // with the sink cap raised to the paper's observed ceiling.
    let spec = paper_roster()
        .into_iter()
        .find(|d| d.name == "OPENGFX")
        .expect("OPENGFX is in the roster");
    // Heavier branching than the training nets so the sink-count
    // distribution matches the paper's observation (most nets 10-30
    // paths, max 49).
    let net_cfg = NetConfig {
        nodes_min: 24,
        nodes_max: 72,
        sinks_max: 49,
        chain_bias: 0.3,
        ..Default::default()
    };
    let scale = cfg.scale.max(2e-3);
    let design = generate_design(&spec, scale, cfg.seed, net_cfg);

    let counts: Vec<usize> = design.nets.iter().map(|n| n.paths().len()).collect();
    let max = counts.iter().copied().max().unwrap_or(0);
    let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
    let in_10_30 = counts.iter().filter(|&&c| (10..=30).contains(&c)).count();

    let mut t = TableWriter::new(
        format!(
            "Fig. 2(b) — wire paths per net, {} @ scale {scale} ({} nets)",
            spec.name,
            counts.len()
        ),
        &["#paths bucket", "#nets", "histogram"],
    );
    let buckets: &[(usize, usize)] = &[(1, 4), (5, 9), (10, 19), (20, 30), (31, 49)];
    for &(lo, hi) in buckets {
        let n = counts.iter().filter(|&&c| c >= lo && c <= hi).count();
        let bar_len = (n * 50 / counts.len().max(1)).min(60);
        t.row(vec![
            format!("{lo}-{hi}"),
            n.to_string(),
            "#".repeat(bar_len.max(usize::from(n > 0))),
        ]);
    }
    println!("{t}");
    println!("max paths on any net: {max} (paper: 49)");
    println!("mean paths per net:   {mean:.1}");
    println!(
        "nets with 10-30 paths: {in_10_30} / {} ({:.0}%)",
        counts.len(),
        100.0 * in_10_30 as f64 / counts.len().max(1) as f64
    );
}
