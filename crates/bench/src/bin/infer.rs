//! Inference-engine benchmark: tape vs tape-free forward, packed vs
//! per-graph batching.
//!
//! Measures the serve/ECO hot path the tape-free engine changed —
//! single-net forward latency (autograd tape vs arena-backed
//! [`InferenceModel`]) and batched throughput (cross-net packed GEMMs
//! vs one forward per graph) at batch sizes 1/8/32/128 — and writes
//! `BENCH_infer.json`. All timing is single-thread (`PAR` pool unused):
//! the engine's win must come from the forward itself, not lane count.
//!
//! ```text
//! cargo run -p bench --release --bin infer [-- --nets N --reps R \
//!     --seed S --out PATH --smoke]
//! ```
//!
//! `--smoke` shrinks the workload and additionally asserts parity:
//! packed tape-free output must match the tape forward within 1e-6
//! relative error on every path (the check script runs this gate).

use gnn::batch::GraphBatch;
use gnn::infer::{Arena, InferenceModel, PackedBatch};
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnntrans::features::{NODE_DIM, PATH_DIM};
use netgen::nets::{NetConfig, NetGenerator};
use std::fmt::Write as _;
use std::time::Instant;
use tensor::Mat;

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

struct Args {
    nets: usize,
    reps: usize,
    seed: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        nets: 256,
        reps: 5,
        seed: 2023,
        out: "BENCH_infer.json".into(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match argv[i].as_str() {
            "--nets" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.nets = v;
                    i += 1;
                }
            }
            "--reps" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.reps = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.seed = v;
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = value {
                    args.out = v.clone();
                    i += 1;
                }
            }
            "--smoke" => args.smoke = true,
            other => {
                eprintln!(
                    "infer: unknown flag `{other}`\
                     \n  --nets N    net pool size (default 256)\
                     \n  --reps R    best-of repetitions (default 5)\
                     \n  --seed S    net-generation seed\
                     \n  --out PATH  result file (default BENCH_infer.json)\
                     \n  --smoke     small workload + parity assertion"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if args.smoke {
        args.nets = args.nets.min(32);
        args.reps = args.reps.min(2);
    }
    args.nets = args.nets.max(BATCH_SIZES[BATCH_SIZES.len() - 1].min(args.nets).max(8));
    args.reps = args.reps.max(1);
    args
}

/// Generated nets with deterministic pseudo-features at the production
/// feature widths; weights don't affect timing, so the model is random.
/// Node counts follow the serve loadgen / ECO session profile (4-14
/// nodes) — the hot path this engine serves — not the larger
/// dataset-build distribution.
fn make_batches(seed: u64, count: usize) -> Vec<GraphBatch> {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 14,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    (0..count)
        .map(|i| {
            let net = g.net(format!("b{i}"), i % 3 == 0);
            let n = net.node_count();
            let x = Mat::from_vec(
                n,
                NODE_DIM,
                (0..n * NODE_DIM)
                    .map(|j| ((j as f32 + i as f32) * 0.29).sin() * 0.6)
                    .collect(),
            )
            .expect("node features");
            let pf = net
                .paths()
                .iter()
                .enumerate()
                .map(|(p, _)| {
                    Mat::from_vec(
                        1,
                        PATH_DIM,
                        (0..PATH_DIM).map(|j| ((p + j) as f32 * 0.17).cos()).collect(),
                    )
                    .expect("path features")
                })
                .collect();
            GraphBatch::build(&net, x, pf, None).expect("batch")
        })
        .collect()
}

/// Best-of-reps seconds for one full pass over the workload.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn max_rel_err(a: &Mat, b: &Mat) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-3))
        .fold(0.0f32, f32::max)
}

fn main() {
    let args = parse_args();
    par::set_threads(1); // single-thread by design: measure the forward, not the pool.

    let model_cfg = GnnTransConfig {
        node_dim: NODE_DIM,
        path_dim: PATH_DIM,
        hidden: 24,
        gnn_layers: 2,
        attn_layers: 1,
        heads: 3,
        mlp_hidden: 24,
        ..Default::default()
    };
    let model = GnnTrans::new(&model_cfg, args.seed);
    let compiled = InferenceModel::compile(&model);
    let mut arena = Arena::new();

    eprintln!("infer: generating {} nets...", args.nets);
    let batches = make_batches(args.seed, args.nets);
    let total_paths: usize = batches.iter().map(|b| b.path_count()).sum();

    // Parity first — a fast wrong answer is worthless (and --smoke gates
    // the check script on this).
    let mut worst = 0.0f32;
    for b in &batches {
        let tape = model.predict(b);
        let fast = compiled.forward_one(b, &mut arena).expect("forward");
        worst = worst.max(max_rel_err(&fast, &tape));
    }
    eprintln!("infer: parity max rel err {worst:.3e} over {total_paths} paths");
    assert!(
        worst <= 1e-6,
        "tape-free forward diverged from tape: {worst:.3e} > 1e-6"
    );

    // --- single-net latency: tape vs tape-free, one forward per graph.
    eprintln!("infer: single-net forward ({} reps)...", args.reps);
    let tape_s = best_of(args.reps, || {
        for b in &batches {
            let out = model.predict(b);
            assert!(out.get(0, 0).is_finite());
        }
    });
    let free_s = best_of(args.reps, || {
        for b in &batches {
            let out = compiled.forward_one(b, &mut arena).expect("forward");
            assert!(out.get(0, 0).is_finite());
        }
    });
    let n = batches.len() as f64;
    eprintln!(
        "infer: tape {:.1} nets/s, tape-free {:.1} nets/s ({:.2}x)",
        n / tape_s,
        n / free_s,
        tape_s / free_s.max(1e-12),
    );

    // --- batched throughput: packed tape-free vs per-graph tape-free
    // vs per-graph tape, at each batch size.
    struct BatchRow {
        batch: usize,
        packed_s: f64,
        unpacked_s: f64,
        tape_s: f64,
    }
    let rows: Vec<BatchRow> = BATCH_SIZES
        .iter()
        .filter(|&&bs| bs <= batches.len())
        .map(|&bs| {
            let groups: Vec<Vec<&GraphBatch>> = batches
                .chunks(bs)
                .map(|c| c.iter().collect())
                .collect();
            let packed: Vec<PackedBatch> = groups
                .iter()
                .map(|g| PackedBatch::pack(g).expect("pack"))
                .collect();
            let packed_s = best_of(args.reps, || {
                for p in &packed {
                    let out = compiled.forward_packed(p, &mut arena).expect("forward");
                    assert!(out.get(0, 0).is_finite());
                }
            });
            let unpacked_s = best_of(args.reps, || {
                for b in &batches {
                    let out = compiled.forward_one(b, &mut arena).expect("forward");
                    assert!(out.get(0, 0).is_finite());
                }
            });
            let tape_s = best_of(args.reps, || {
                for b in &batches {
                    let out = model.predict(b);
                    assert!(out.get(0, 0).is_finite());
                }
            });
            eprintln!(
                "infer: batch {bs}: packed {:.1} nets/s ({:.1} us/net), \
                 unpacked {:.1} nets/s, tape {:.1} nets/s ({:.2}x packed vs tape)",
                n / packed_s,
                packed_s / n * 1e6,
                n / unpacked_s,
                n / tape_s,
                tape_s / packed_s.max(1e-12),
            );
            BatchRow { batch: bs, packed_s, unpacked_s, tape_s }
        })
        .collect();

    // --- report.
    let mut out = String::with_capacity(2048);
    out.push_str("{\"schema\":\"bench.infer.v1\"");
    let _ = write!(out, ",\"nets\":{}", args.nets);
    let _ = write!(out, ",\"total_paths\":{total_paths}");
    let _ = write!(out, ",\"reps\":{}", args.reps);
    out.push_str(",\"parity_max_rel_err\":");
    obs::json::push_f64(&mut out, worst as f64);
    out.push_str(",\"arena_bytes\":");
    obs::json::push_f64(&mut out, arena.bytes() as f64);
    out.push_str(",\"single_net\":{\"tape_nets_per_s\":");
    obs::json::push_f64(&mut out, n / tape_s.max(1e-12));
    out.push_str(",\"tape_free_nets_per_s\":");
    obs::json::push_f64(&mut out, n / free_s.max(1e-12));
    out.push_str(",\"tape_free_us_per_net\":");
    obs::json::push_f64(&mut out, free_s / n * 1e6);
    out.push_str(",\"speedup\":");
    obs::json::push_f64(&mut out, tape_s / free_s.max(1e-12));
    out.push_str("},\"batched\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"batch\":{},\"packed_nets_per_s\":", r.batch);
        obs::json::push_f64(&mut out, n / r.packed_s.max(1e-12));
        out.push_str(",\"packed_us_per_net\":");
        obs::json::push_f64(&mut out, r.packed_s / n * 1e6);
        out.push_str(",\"unpacked_nets_per_s\":");
        obs::json::push_f64(&mut out, n / r.unpacked_s.max(1e-12));
        out.push_str(",\"tape_nets_per_s\":");
        obs::json::push_f64(&mut out, n / r.tape_s.max(1e-12));
        out.push_str(",\"packed_vs_tape\":");
        obs::json::push_f64(&mut out, r.tape_s / r.packed_s.max(1e-12));
        out.push_str(",\"packed_vs_unpacked\":");
        obs::json::push_f64(&mut out, r.unpacked_s / r.packed_s.max(1e-12));
        out.push('}');
    }
    out.push_str("]}");

    std::fs::write(&args.out, format!("{out}\n")).expect("write report");
    eprintln!("infer: wrote {}", args.out);
}
