//! Training-engine benchmark: tape vs packed-batch backward.
//!
//! Measures the stage the packed trainer changed — single-thread epoch
//! throughput of the autograd-tape backend vs the tape-free packed
//! backend at accumulation 1/8/32 — plus packed-vs-tape gradient
//! parity, and writes `BENCH_train.json`. All timing is single-thread
//! (`PAR` pool sized 1): the engine's win must come from the backward
//! itself, not lane count.
//!
//! ```text
//! cargo run -p bench --release --bin train [-- --nets N --epochs E \
//!     --reps R --seed S --out PATH --smoke]
//! ```
//!
//! `--smoke` shrinks the workload and additionally asserts parity:
//! packed gradients must match the tape within 1e-6 relative error on
//! every parameter, both for a single-graph pack and a full
//! multi-graph pack (the check script runs this gate).

use gnn::batch::GraphBatch;
use gnn::grad::TrainScratch;
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnn::train::{train, TrainBackend, TrainConfig};
use gnntrans::features::{NODE_DIM, PATH_DIM};
use netgen::nets::{NetConfig, NetGenerator};
use std::fmt::Write as _;
use std::time::Instant;
use tensor::{Mat, Tape};

const ACCUM_SIZES: [usize; 3] = [1, 8, 32];

struct Args {
    nets: usize,
    epochs: usize,
    reps: usize,
    seed: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        nets: 128,
        epochs: 2,
        reps: 3,
        seed: 2023,
        out: "BENCH_train.json".into(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match argv[i].as_str() {
            "--nets" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.nets = v;
                    i += 1;
                }
            }
            "--epochs" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.epochs = v;
                    i += 1;
                }
            }
            "--reps" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.reps = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.seed = v;
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = value {
                    args.out = v.clone();
                    i += 1;
                }
            }
            "--smoke" => args.smoke = true,
            other => {
                eprintln!(
                    "train: unknown flag `{other}`\
                     \n  --nets N     training-set size (default 128)\
                     \n  --epochs E   epochs per timed run (default 2)\
                     \n  --reps R     best-of repetitions (default 3)\
                     \n  --seed S     net-generation seed\
                     \n  --out PATH   result file (default BENCH_train.json)\
                     \n  --smoke      small workload + gradient-parity assertion"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if args.smoke {
        args.nets = args.nets.min(32);
        args.epochs = args.epochs.min(1);
        args.reps = args.reps.min(1);
    }
    args.nets = args.nets.max(ACCUM_SIZES[ACCUM_SIZES.len() - 1]);
    args.epochs = args.epochs.max(1);
    args.reps = args.reps.max(1);
    args
}

/// Labelled nets at the production feature widths, on the serve/ECO
/// node-count profile (4-14 nodes) the inference bench uses — training
/// is per technology/corner over the same net population. Targets are
/// deterministic pseudo-labels; the loss surface doesn't affect timing.
fn make_batches(seed: u64, count: usize) -> Vec<GraphBatch> {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 14,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    (0..count)
        .map(|i| {
            let net = g.net(format!("b{i}"), i % 3 == 0);
            let n = net.node_count();
            let x = Mat::from_vec(
                n,
                NODE_DIM,
                (0..n * NODE_DIM)
                    .map(|j| ((j as f32 + i as f32) * 0.29).sin() * 0.6)
                    .collect(),
            )
            .expect("node features");
            let paths = net.paths().len();
            let pf = (0..paths)
                .map(|p| {
                    Mat::from_vec(
                        1,
                        PATH_DIM,
                        (0..PATH_DIM).map(|j| ((p + j) as f32 * 0.17).cos()).collect(),
                    )
                    .expect("path features")
                })
                .collect();
            let t = Mat::from_vec(
                paths,
                2,
                (0..paths * 2)
                    .map(|j| ((j as f32 + i as f32) * 0.31).cos() * 0.4 + 0.5)
                    .collect(),
            )
            .expect("targets");
            GraphBatch::build(&net, x, pf, Some(t)).expect("batch")
        })
        .collect()
}

/// Best-of-reps seconds for one full pass over the workload.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// One graph's tape gradients — the oracle the packed backward is
/// pinned to.
fn tape_grads(model: &GnnTrans, batch: &GraphBatch) -> Vec<(usize, Mat)> {
    let mut tape = Tape::new();
    let pred = model.forward(&mut tape, batch);
    let loss = tape.mse_loss(pred, batch.targets.as_ref().expect("labelled"));
    tape.backward(loss);
    tape.param_grads()
}

/// Worst per-parameter relative deviation (infinity norms) between two
/// gradient vectors in matching id order.
fn grads_rel_err(a: &[(usize, Mat)], b: &[(usize, Mat)]) -> f32 {
    assert_eq!(a.len(), b.len(), "gradient vectors must align");
    let mut worst = 0.0f32;
    for ((id_a, ga), (id_b, gb)) in a.iter().zip(b) {
        assert_eq!(id_a, id_b, "gradient order must align");
        let mut num = 0.0f32;
        let mut den = 1e-3f32;
        for (x, y) in ga.as_slice().iter().zip(gb.as_slice()) {
            num = num.max((x - y).abs());
            den = den.max(x.abs()).max(y.abs());
        }
        worst = worst.max(num / den);
    }
    worst
}

fn main() {
    let args = parse_args();
    par::set_threads(1); // single-thread by design: measure the backward, not the pool.

    let model_cfg = GnnTransConfig {
        node_dim: NODE_DIM,
        path_dim: PATH_DIM,
        hidden: 24,
        gnn_layers: 2,
        attn_layers: 1,
        heads: 3,
        mlp_hidden: 24,
        ..Default::default()
    };
    let model = GnnTrans::new(&model_cfg, args.seed);
    let trainer = model.packed_trainer().expect("GnnTrans compiles a packed trainer");

    eprintln!("train: generating {} labelled nets...", args.nets);
    let batches = make_batches(args.seed, args.nets);
    let total_paths: usize = batches.iter().map(|b| b.path_count()).sum();

    // Parity first — a fast wrong gradient is worthless (and --smoke
    // gates the check script on this). Single-graph packs must match
    // the tape exactly; a full pack regroups the weight-grad sums, so
    // it is pinned at 1e-6 relative.
    let mut scratch = TrainScratch::new();
    let mut worst_single = 0.0f32;
    for b in batches.iter().take(16) {
        let step = trainer
            .step(model.param_set(), &[b], &mut scratch)
            .expect("packed step");
        worst_single = worst_single.max(grads_rel_err(&step.grads, &tape_grads(&model, b)));
    }
    let pack: Vec<&GraphBatch> = batches.iter().take(8).collect();
    let pack_step = trainer
        .step(model.param_set(), &pack, &mut scratch)
        .expect("packed step");
    let mut tape_sum: Vec<(usize, Mat)> = Vec::new();
    for b in &pack {
        for (id, g) in tape_grads(&model, b) {
            match tape_sum.iter_mut().find(|(i, _)| *i == id) {
                Some((_, acc)) => acc.axpy(1.0, &g),
                None => tape_sum.push((id, g)),
            }
        }
    }
    let worst_pack = grads_rel_err(&pack_step.grads, &tape_sum);
    eprintln!(
        "train: grad parity vs tape: single {worst_single:.3e}, 8-graph pack {worst_pack:.3e}"
    );
    assert!(
        worst_single <= 1e-6,
        "single-graph packed gradients diverged from tape: {worst_single:.3e} > 1e-6"
    );
    assert!(
        worst_pack <= 1e-6,
        "packed-batch gradients diverged from tape sum: {worst_pack:.3e} > 1e-6"
    );

    // --- epoch throughput: tape vs packed backend at each accumulation
    // size, fresh identically-seeded model per timed run.
    struct Row {
        accum: usize,
        tape_s: f64,
        packed_s: f64,
        arena_bytes_peak: usize,
        fallbacks: u64,
    }
    let graphs_per_run = (args.epochs * batches.len()) as f64;
    let rows: Vec<Row> = ACCUM_SIZES
        .iter()
        .map(|&accum| {
            let cfg_for = |backend: TrainBackend| TrainConfig {
                epochs: args.epochs,
                seed: args.seed,
                accum,
                backend,
                ..TrainConfig::default()
            };
            let tape_s = best_of(args.reps, || {
                let mut m = GnnTrans::new(&model_cfg, args.seed);
                train(&mut m, &batches, &cfg_for(TrainBackend::Tape)).expect("tape training");
            });
            let mut arena_bytes_peak = 0usize;
            let mut fallbacks = 0u64;
            let packed_s = best_of(args.reps, || {
                let mut m = GnnTrans::new(&model_cfg, args.seed);
                let report =
                    train(&mut m, &batches, &cfg_for(TrainBackend::Packed)).expect("packed training");
                arena_bytes_peak = arena_bytes_peak.max(report.arena_bytes_peak);
                fallbacks = report.fallbacks;
            });
            eprintln!(
                "train: accum {accum}: tape {:.1} graphs/s, packed {:.1} graphs/s ({:.2}x)",
                graphs_per_run / tape_s,
                graphs_per_run / packed_s,
                tape_s / packed_s.max(1e-12),
            );
            Row { accum, tape_s, packed_s, arena_bytes_peak, fallbacks }
        })
        .collect();

    // --- report.
    let mut out = String::with_capacity(2048);
    out.push_str("{\"schema\":\"bench.train.v1\"");
    let _ = write!(out, ",\"nets\":{}", args.nets);
    let _ = write!(out, ",\"total_paths\":{total_paths}");
    let _ = write!(out, ",\"epochs\":{}", args.epochs);
    let _ = write!(out, ",\"reps\":{}", args.reps);
    out.push_str(",\"grad_parity_single\":");
    obs::json::push_f64(&mut out, worst_single as f64);
    out.push_str(",\"grad_parity_pack\":");
    obs::json::push_f64(&mut out, worst_pack as f64);
    out.push_str(",\"batched\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"accum\":{},\"tape_graphs_per_s\":", r.accum);
        obs::json::push_f64(&mut out, graphs_per_run / r.tape_s.max(1e-12));
        out.push_str(",\"packed_graphs_per_s\":");
        obs::json::push_f64(&mut out, graphs_per_run / r.packed_s.max(1e-12));
        out.push_str(",\"packed_us_per_graph\":");
        obs::json::push_f64(&mut out, r.packed_s / graphs_per_run * 1e6);
        out.push_str(",\"speedup\":");
        obs::json::push_f64(&mut out, r.tape_s / r.packed_s.max(1e-12));
        let _ = write!(out, ",\"arena_bytes_peak\":{}", r.arena_bytes_peak);
        let _ = write!(out, ",\"fallbacks\":{}", r.fallbacks);
        out.push('}');
    }
    out.push_str("]}");

    std::fs::write(&args.out, format!("{out}\n")).expect("write report");
    eprintln!("train: wrote {}", args.out);
}
