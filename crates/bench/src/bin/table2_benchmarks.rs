//! TABLE II: the benchmark roster, paper statistics next to the scaled
//! generated counterpart.
//!
//! ```text
//! cargo run -p bench --release --bin table2_benchmarks [-- --scale X --seed N]
//! ```

use bench::{ExperimentConfig, TableWriter};
use netgen::designs::{generate_design, paper_roster};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("table2", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    let mut t = TableWriter::new(
        format!("TABLE II — benchmark statistics (generated at scale {})", cfg.scale),
        &[
            "Split",
            "Benchmark",
            "#Cells(paper)",
            "#Nets(paper)",
            "(Non-tree)",
            "#FFs",
            "#CPs",
            "#Nets(gen)",
            "(Non-tree gen)",
        ],
    );
    let mut tot: [u64; 4] = [0; 4];
    for spec in paper_roster() {
        let design = generate_design(&spec, cfg.scale, cfg.seed, cfg.net_config());
        let gen_total = design.net_count() as u64;
        let gen_nontree = design.nontree_nets().count() as u64;
        tot[0] += spec.nets;
        tot[1] += spec.nontree_nets;
        tot[2] += gen_total;
        tot[3] += gen_nontree;
        t.row(vec![
            if spec.train { "Train" } else { "Test" }.into(),
            spec.name.into(),
            spec.cells.to_string(),
            spec.nets.to_string(),
            format!("({})", spec.nontree_nets),
            spec.ffs.to_string(),
            spec.cps.to_string(),
            gen_total.to_string(),
            format!("({gen_nontree})"),
        ]);
    }
    t.row(vec![
        "".into(),
        "Total".into(),
        "".into(),
        tot[0].to_string(),
        format!("({})", tot[1]),
        "".into(),
        "".into(),
        tot[2].to_string(),
        format!("({})", tot[3]),
    ]);
    println!("{t}");
}
