//! Incremental ECO engine benchmark: resident sessions vs cold re-times.
//!
//! For each design size, loads a netgen design into an
//! [`eco::DesignSession`], measures the median *cold* full re-time
//! (fresh session, fresh prediction cache), then streams single-edit
//! ECO batches through a warm session and measures the median
//! *incremental* apply. Writes `BENCH_eco.json` with edits/sec, cache
//! hit rate and the incremental-vs-full speedup per size.
//!
//! ```text
//! cargo run -p bench --release --bin eco [-- --edits N --seed S \
//!     --out PATH --smoke]
//! ```
//!
//! Correctness gate (both modes): after the whole edit stream, a cold
//! full re-time of the same final design state through a fresh cache
//! must agree with the incrementally-maintained solution to ≤1e-9 s.
//! Performance gate (full mode): the medium design's speedup must be
//! ≥5x — the acceptance bar for an optimizer-in-the-loop workload.

use eco::design::from_netgen;
use eco::{DesignSession, EcoEdit, PredictionCache};
use rcnet::Seconds;
use sta::netlist::Netlist;
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    edits: usize,
    seed: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        edits: 64,
        seed: 2023,
        out: "BENCH_eco.json".into(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match argv[i].as_str() {
            "--edits" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.edits = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.seed = v;
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = value {
                    args.out = v.clone();
                    i += 1;
                }
            }
            "--smoke" => args.smoke = true,
            other => {
                eprintln!(
                    "eco: unknown flag `{other}`\
                     \n  --edits N   single-edit ECO batches per size (default 64)\
                     \n  --seed S    design + edit-stream seed\
                     \n  --out PATH  result file (default BENCH_eco.json)\
                     \n  --smoke     small sizes + agreement gate only, for CI"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args.edits = args.edits.max(4);
    args
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splitmix64 so the bench owns its randomness.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One random, valid single-net edit against the current design state.
/// Mirrors the optimizer move set: driver resize, load change, buffer
/// insertion, wire RC tweaks.
fn random_edit(nl: &Netlist, rng: &mut u64) -> EcoEdit {
    const CELLS: [&str; 5] = ["BUF_X1", "BUF_X2", "BUF_X4", "INV_X1", "INV_X2"];
    loop {
        let i = (mix(rng) % nl.nets().len() as u64) as usize;
        let ni = &nl.nets()[i];
        let net = ni.rc.name().to_string();
        match mix(rng) % 8 {
            0..=1 => {
                if ni.driver.is_none() {
                    continue;
                }
                let cell = CELLS[(mix(rng) % CELLS.len() as u64) as usize];
                return EcoEdit::ResizeDriver { net, cell: cell.into() };
            }
            2..=4 => {
                let sinks = ni.rc.sinks();
                let sid = sinks[(mix(rng) % sinks.len() as u64) as usize];
                return EcoEdit::SetSinkLoad {
                    net,
                    sink: ni.rc.node(sid).name.clone(),
                    ceff_ff: 0.5 + (mix(rng) % 50) as f64 / 10.0,
                };
            }
            5 => {
                let sinks = ni.rc.sinks();
                let sid = sinks[(mix(rng) % sinks.len() as u64) as usize];
                return EcoEdit::InsertBuffer {
                    net,
                    sink: ni.rc.node(sid).name.clone(),
                    cell: "BUF_X2".into(),
                };
            }
            6 => {
                let edges: Vec<_> = ni.rc.iter_edges().collect();
                let (_, e) = edges[(mix(rng) % edges.len() as u64) as usize];
                return EcoEdit::SetResistance {
                    a: ni.rc.node(e.a).name.clone(),
                    b: ni.rc.node(e.b).name.clone(),
                    net,
                    ohms: 1.0 + (mix(rng) % 200) as f64,
                };
            }
            _ => {
                let nodes: Vec<_> = ni.rc.iter_nodes().collect();
                let (_, node) = nodes[(mix(rng) % nodes.len() as u64) as usize];
                return EcoEdit::SetCap {
                    net,
                    node: node.name.clone(),
                    ff: 0.1 + (mix(rng) % 80) as f64 / 10.0,
                };
            }
        }
    }
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

/// Largest |a - b| over every sink's arrival and slew, seconds.
fn max_abs_diff(a: &DesignSession, b: &DesignSession) -> f64 {
    let (ta, tb) = (a.all_timing(), b.all_timing());
    assert_eq!(ta.len(), tb.len(), "net-count mismatch between sessions");
    let mut worst = 0.0_f64;
    for (x, y) in ta.iter().zip(tb) {
        assert_eq!(x.at_sinks.len(), y.at_sinks.len());
        for (&(at_x, sl_x), &(at_y, sl_y)) in x.at_sinks.iter().zip(&y.at_sinks) {
            worst = worst
                .max((at_x.value() - at_y.value()).abs())
                .max((sl_x.value() - sl_y.value()).abs());
        }
    }
    worst
}

struct Row {
    label: &'static str,
    design: &'static str,
    scale: f64,
    nets: usize,
    gates: usize,
    cold_full_s: f64,
    incr_median_s: f64,
    incr_p95_s: f64,
    edits_per_s: f64,
    speedup: f64,
    cache_hit_rate: f64,
    dirty_nets_mean: f64,
    agreement_s: f64,
}

fn bench_size(
    label: &'static str,
    design: &'static str,
    scale: f64,
    est: &gnntrans::WireTimingEstimator,
    args: &Args,
    cold_reps: usize,
) -> Row {
    let slew = Seconds::from_ps(20.0);
    let nl = from_netgen(design, scale, args.seed).expect("build design");

    // Cold baseline: fresh session, fresh cache, full re-time.
    let mut cold_times: Vec<f64> = (0..cold_reps)
        .map(|_| {
            let cache = PredictionCache::new(8, 32 << 20);
            let mut s = DesignSession::new("cold", nl.clone(), slew);
            let t0 = Instant::now();
            s.full_retime(est, 1, &cache).expect("cold full retime");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    cold_times.sort_by(f64::total_cmp);
    let cold_full_s = median(&cold_times);

    // Warm session: one full re-time seeds the prediction cache, then
    // the edit stream exercises the incremental path.
    let cache = PredictionCache::new(8, 32 << 20);
    let mut warm = DesignSession::new("warm", nl.clone(), slew);
    warm.full_retime(est, 1, &cache).expect("warm full retime");

    let mut rng = args.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut edits: Vec<EcoEdit> = Vec::with_capacity(args.edits);
    let mut incr_times: Vec<f64> = Vec::with_capacity(args.edits);
    let mut dirty_total = 0usize;
    let stream_t0 = Instant::now();
    for _ in 0..args.edits {
        let edit = random_edit(warm.netlist(), &mut rng);
        let t0 = Instant::now();
        let report = warm
            .apply(std::slice::from_ref(&edit), est, 1, &cache)
            .expect("apply edit");
        incr_times.push(t0.elapsed().as_secs_f64());
        assert!(!report.full_retime, "single edit must stay incremental");
        dirty_total += report.dirty_nets.len();
        edits.push(edit);
    }
    let stream_s = stream_t0.elapsed().as_secs_f64();
    incr_times.sort_by(f64::total_cmp);
    let stats = cache.stats();

    // Oracle: replay the exact edit stream on a fresh session (design
    // mutations only matter), then cold full re-time through a fresh
    // cache — the incrementally-maintained solution must agree.
    let fresh = PredictionCache::new(8, 32 << 20);
    let mut oracle = DesignSession::new("oracle", nl, slew);
    oracle.full_retime(est, 1, &fresh).expect("oracle warm");
    for edit in &edits {
        oracle
            .apply(std::slice::from_ref(edit), est, 1, &fresh)
            .expect("oracle replay");
    }
    let fresh2 = PredictionCache::new(8, 32 << 20);
    oracle.full_retime(est, 1, &fresh2).expect("oracle cold");
    let agreement_s = max_abs_diff(&warm, &oracle);

    let summary = warm.timing_summary();
    let incr_median_s = median(&incr_times);
    let row = Row {
        label,
        design,
        scale,
        nets: summary.nets,
        gates: summary.gates,
        cold_full_s,
        incr_median_s,
        incr_p95_s: percentile(&incr_times, 0.95),
        edits_per_s: args.edits as f64 / stream_s.max(1e-12),
        speedup: cold_full_s / incr_median_s.max(1e-12),
        cache_hit_rate: stats.hit_rate(),
        dirty_nets_mean: dirty_total as f64 / args.edits as f64,
        agreement_s,
    };
    eprintln!(
        "eco: {label} ({design} x{scale}, {} nets): cold {:.1} ms, incr median {:.2} ms, \
         {:.0} edits/s, {:.1}x speedup, hit rate {:.1}%, agree {:.2e} s",
        row.nets,
        row.cold_full_s * 1e3,
        row.incr_median_s * 1e3,
        row.edits_per_s,
        row.speedup,
        row.cache_hit_rate * 100.0,
        row.agreement_s,
    );
    row
}

fn main() {
    let args = parse_args();
    // Same quick demo model the serve smoke path trains: the bench
    // measures engine overhead and cone sizes, not model quality.
    let est = serve::demo_model(7, 16, 8);

    let sizes: &[(&str, &str, f64)] = if args.smoke {
        &[("S", "PCI_BRIDGE", 0.02), ("M", "DMA", 0.01)]
    } else {
        &[("S", "PCI_BRIDGE", 0.05), ("M", "DMA", 0.05), ("L", "B19", 0.05)]
    };
    let cold_reps = if args.smoke { 2 } else { 3 };

    let rows: Vec<Row> = sizes
        .iter()
        .map(|&(label, design, scale)| bench_size(label, design, scale, &est, &args, cold_reps))
        .collect();

    let cores = host_cores();
    let mut out = String::with_capacity(2048);
    out.push_str("{\"schema\":\"bench.eco.v1\"");
    let _ = write!(out, ",\"host_cores\":{cores}");
    let _ = write!(out, ",\"edits_per_size\":{}", args.edits);
    let _ = write!(out, ",\"cold_reps\":{cold_reps}");
    let _ = write!(out, ",\"smoke\":{}", args.smoke);
    out.push_str(",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"design\":\"{}\",\"scale\":",
            row.label, row.design
        );
        obs::json::push_f64(&mut out, row.scale);
        let _ = write!(out, ",\"nets\":{},\"gates\":{}", row.nets, row.gates);
        out.push_str(",\"cold_full_s\":");
        obs::json::push_f64(&mut out, row.cold_full_s);
        out.push_str(",\"incr_median_s\":");
        obs::json::push_f64(&mut out, row.incr_median_s);
        out.push_str(",\"incr_p95_s\":");
        obs::json::push_f64(&mut out, row.incr_p95_s);
        out.push_str(",\"edits_per_s\":");
        obs::json::push_f64(&mut out, row.edits_per_s);
        out.push_str(",\"speedup\":");
        obs::json::push_f64(&mut out, row.speedup);
        out.push_str(",\"cache_hit_rate\":");
        obs::json::push_f64(&mut out, row.cache_hit_rate);
        out.push_str(",\"dirty_nets_mean\":");
        obs::json::push_f64(&mut out, row.dirty_nets_mean);
        out.push_str(",\"agreement_max_abs_s\":");
        obs::json::push_f64(&mut out, row.agreement_s);
        out.push('}');
    }
    out.push_str("]}");

    std::fs::write(&args.out, format!("{out}\n")).expect("write report");
    eprintln!("eco: wrote {}", args.out);

    // Gate on correctness everywhere: the incremental solution must
    // match a cold full re-time of the same final design exactly.
    for row in &rows {
        assert!(
            row.agreement_s <= 1e-9,
            "incremental/full disagreement {:.3e} s at {} (tolerance 1e-9 s)",
            row.agreement_s,
            row.label
        );
    }
    // Gate on speed in full mode: a single-edit re-time on the medium
    // design must beat the cold full re-time by ≥5x (the acceptance
    // bar for an optimizer-in-the-loop workload).
    if !args.smoke {
        let medium = rows.iter().find(|r| r.label == "M").expect("medium row");
        assert!(
            medium.speedup >= 5.0,
            "medium incremental speedup {:.2}x below the 5x acceptance bar",
            medium.speedup
        );
    }
}
