//! TABLE IV: wire slew/delay estimation accuracy (R² score) on **all**
//! nets (tree-like + non-tree). Scores run higher than TABLE III because
//! tree nets are the easy case for every estimator.
//!
//! ```text
//! cargo run -p bench --release --bin table4_allnets \
//!     [-- --scale X --seed N --epochs E --quick]
//! ```

use bench::accuracy::run_accuracy_table;
use bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("table4", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    match run_accuracy_table(&cfg, false) {
        Ok(table) => {
            println!("{table}");
            println!(
                "Shape check vs paper TABLE IV: same model ordering as \
                 TABLE III with uniformly higher R² scores."
            );
        }
        Err(e) => {
            eprintln!("table4_allnets failed: {e}");
            std::process::exit(1);
        }
    }
}
