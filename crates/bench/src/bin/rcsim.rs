//! Golden-timer solver benchmark: sparse LDLᵀ vs the dense LU oracle.
//!
//! Times end-to-end golden wire timing (assembly, factorization,
//! trapezoidal integration, measurement) per net size, topology (tree vs
//! loops) and SI mode, for both solver backends, and writes
//! `BENCH_rcsim.json`. The dense oracle is skipped above
//! `--dense-max` nodes (its per-step solve is O(n²); at n = 2000 a
//! single net takes a minute).
//!
//! ```text
//! cargo run -p bench --release --bin rcsim [-- --reps N --steps N \
//!     --seed S --out PATH --smoke]
//! ```
//!
//! The factor/solve split is read from the `rcsim.factor_seconds` /
//! `rcsim.solve_seconds` histogram deltas around each run. Like the
//! other benches, the report records `host_cores`; every measurement
//! here is single-threaded, so the caveat only matters for comparing
//! absolute numbers across hosts.

use netgen::nets::{NetConfig, NetGenerator};
use rcnet::{RcNet, Seconds};
use rcsim::{GoldenTimer, PathTiming, SiMode, SolverKind};
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    reps: usize,
    steps: usize,
    seed: u64,
    dense_max: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 3,
        steps: 1000,
        seed: 2023,
        dense_max: 500,
        out: "BENCH_rcsim.json".into(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match argv[i].as_str() {
            "--reps" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.reps = v;
                    i += 1;
                }
            }
            "--steps" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.steps = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.seed = v;
                    i += 1;
                }
            }
            "--dense-max" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.dense_max = v;
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = value {
                    args.out = v.clone();
                    i += 1;
                }
            }
            "--smoke" => args.smoke = true,
            other => {
                eprintln!(
                    "rcsim: unknown flag `{other}`\
                     \n  --reps N       nets per configuration (default 3)\
                     \n  --steps N      integration steps per net (default 1000)\
                     \n  --seed S       net-generation seed\
                     \n  --dense-max N  largest size the dense oracle runs at (default 500)\
                     \n  --out PATH     result file (default BENCH_rcsim.json)\
                     \n  --smoke        tiny sizes for CI"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args.reps = args.reps.max(1);
    args.steps = args.steps.max(50);
    args
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One (size, topology, SI) configuration's nets.
fn nets_for(seed: u64, nodes: usize, nontree: bool, si_on: bool, count: usize) -> Vec<RcNet> {
    let cfg = NetConfig {
        nodes_min: nodes,
        nodes_max: nodes,
        // SI rows need coupled nets; quiet rows stay uncoupled so the
        // two rows measure distinct RHS work.
        coupling_prob: if si_on { 0.5 } else { 0.0 },
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed ^ (nodes as u64) << 2 | u64::from(si_on), cfg);
    (0..count)
        .map(|i| g.net(format!("b{nodes}_{i}"), nontree))
        .collect()
}

struct SolverRun {
    total_s: f64,
    factor_s: f64,
    solve_s: f64,
    timings: Vec<Vec<PathTiming>>,
}

/// Times one backend over a set of nets, reading the factor/solve split
/// from the obs histogram deltas around the run.
fn run_solver(
    nets: &[RcNet],
    solver: SolverKind,
    steps: usize,
    si_on: bool,
) -> SolverRun {
    let factor_h = obs::histogram("rcsim.factor_seconds");
    let solve_h = obs::histogram("rcsim.solve_seconds");
    let (f0, s0) = (factor_h.sum(), solve_h.sum());
    let timer = GoldenTimer::default().with_steps(steps).with_solver(solver);
    let t0 = Instant::now();
    let timings = nets
        .iter()
        .map(|net| {
            let si = if si_on && !net.couplings().is_empty() {
                SiMode::WorstCase {
                    aggressor_ramp: Seconds::from_ps(20.0),
                }
            } else {
                SiMode::Off
            };
            timer
                .time_net(net, Seconds::from_ps(20.0), si)
                .expect("golden timing")
        })
        .collect();
    SolverRun {
        total_s: t0.elapsed().as_secs_f64(),
        factor_s: factor_h.sum() - f0,
        solve_s: solve_h.sum() - s0,
        timings,
    }
}

/// Largest |sparse - dense| over every path's slew and delay, seconds.
fn max_abs_diff(a: &[Vec<PathTiming>], b: &[Vec<PathTiming>]) -> f64 {
    let mut worst = 0.0_f64;
    for (ta, tb) in a.iter().zip(b) {
        for (pa, pb) in ta.iter().zip(tb) {
            worst = worst
                .max((pa.delay.value() - pb.delay.value()).abs())
                .max((pa.slew.value() - pb.slew.value()).abs());
        }
    }
    worst
}

struct Row {
    nodes: usize,
    nontree: bool,
    si_on: bool,
    nets: usize,
    sparse: SolverRun,
    dense: Option<SolverRun>,
    agreement_s: Option<f64>,
}

fn main() {
    let args = parse_args();
    let sizes: &[usize] = if args.smoke { &[20, 100] } else { &[20, 100, 500, 2000] };
    let steps = if args.smoke { 300 } else { args.steps };
    let dense_max = if args.smoke { 100 } else { args.dense_max };

    // Warm-up so the first measured row doesn't absorb one-time costs
    // (lazy metric registration, allocator growth, page faults).
    let warmup = nets_for(args.seed ^ 0xdead, 20, true, true, 1);
    run_solver(&warmup, SolverKind::SparseLdl, 200, true);
    run_solver(&warmup, SolverKind::DenseLu, 200, true);

    let mut rows = Vec::new();
    for &nodes in sizes {
        for nontree in [false, true] {
            for si_on in [false, true] {
                let nets = nets_for(args.seed, nodes, nontree, si_on, args.reps);
                let sparse = run_solver(&nets, SolverKind::SparseLdl, steps, si_on);
                let dense = (nodes <= dense_max)
                    .then(|| run_solver(&nets, SolverKind::DenseLu, steps, si_on));
                let agreement_s = dense
                    .as_ref()
                    .map(|d| max_abs_diff(&sparse.timings, &d.timings));
                let speedup = dense
                    .as_ref()
                    .map(|d| d.total_s / sparse.total_s.max(1e-12));
                eprintln!(
                    "rcsim: n={nodes} {} si={}: sparse {:.1} nets/s{}{}",
                    if nontree { "loops" } else { "tree " },
                    u8::from(si_on),
                    nets.len() as f64 / sparse.total_s.max(1e-12),
                    speedup
                        .map(|s| format!(", {s:.1}x vs dense"))
                        .unwrap_or_default(),
                    agreement_s
                        .map(|d| format!(", agree {d:.2e} s"))
                        .unwrap_or_default(),
                );
                rows.push(Row {
                    nodes,
                    nontree,
                    si_on,
                    nets: nets.len(),
                    sparse,
                    dense,
                    agreement_s,
                });
            }
        }
    }

    let cores = host_cores();
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"bench.rcsim.v1\"");
    let _ = write!(out, ",\"host_cores\":{cores}");
    let _ = write!(out, ",\"reps\":{}", args.reps);
    let _ = write!(out, ",\"steps\":{steps}");
    let _ = write!(out, ",\"dense_max_nodes\":{dense_max}");
    let _ = write!(out, ",\"smoke\":{}", args.smoke);
    out.push_str(",\"rows\":[");
    let push_run = |out: &mut String, name: &str, nets: usize, run: &SolverRun| {
        let _ = write!(out, ",\"{name}\":{{\"total_s\":");
        obs::json::push_f64(out, run.total_s);
        out.push_str(",\"nets_per_s\":");
        obs::json::push_f64(out, nets as f64 / run.total_s.max(1e-12));
        out.push_str(",\"factor_s\":");
        obs::json::push_f64(out, run.factor_s);
        out.push_str(",\"solve_s\":");
        obs::json::push_f64(out, run.solve_s);
        out.push('}');
    };
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"nodes\":{},\"topology\":\"{}\",\"si\":{},\"nets\":{}",
            row.nodes,
            if row.nontree { "loops" } else { "tree" },
            row.si_on,
            row.nets,
        );
        push_run(&mut out, "sparse", row.nets, &row.sparse);
        if let Some(dense) = &row.dense {
            push_run(&mut out, "dense", row.nets, dense);
            out.push_str(",\"speedup\":");
            obs::json::push_f64(&mut out, dense.total_s / row.sparse.total_s.max(1e-12));
        }
        if let Some(d) = row.agreement_s {
            out.push_str(",\"agreement_max_abs_s\":");
            obs::json::push_f64(&mut out, d);
        }
        out.push('}');
    }
    out.push_str("]}");

    std::fs::write(&args.out, format!("{out}\n")).expect("write report");
    eprintln!("rcsim: wrote {}", args.out);

    // Gate on physics, not just speed: where both backends ran they
    // must agree to sub-nanosecond-in-seconds precision.
    for row in &rows {
        if let Some(d) = row.agreement_s {
            assert!(
                d <= 1e-9,
                "solver disagreement {d:.3e} s at n={} (tolerance 1e-9 s)",
                row.nodes
            );
        }
    }
}
