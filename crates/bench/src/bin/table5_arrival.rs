//! TABLE V: path arrival-time accuracy (R² / max abs error in ps)
//! against the golden flow for DAC'20 and the three GNNTrans depth plans,
//! plus the runtime split (gate vs wire) that backs the paper's
//! ">200k nets in <100s" claim.
//!
//! Arrival times compose NLDM gate delays with wire delays from the
//! timer under test; the reference uses the golden transient simulator
//! for wires (the PrimeTime-SI stand-in).
//!
//! ```text
//! cargo run -p bench --release --bin table5_arrival \
//!     [-- --scale X --seed N --epochs E --quick]
//! ```

use bench::harness::{build_train_dataset, ExperimentConfig};
use bench::tables::TableWriter;
use gnn::gbdt::GbdtConfig;
use gnntrans::dac20::Dac20Estimator;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use gnntrans::timers::GoldenWireTimer;
use netgen::designs::{generate_design, paper_roster, Design};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcnet::Seconds;
use rcsim::GoldenTimer;
use sta::cells::CellLibrary;
use sta::path::{Stage, TimingPath};
use sta::WireTimer;
use std::time::Instant;

/// Builds deterministic multi-stage timing paths through a design's nets.
fn make_paths(design: &Design, lib: &CellLibrary, count: usize, seed: u64) -> Vec<TimingPath> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = ["BUF_X1", "BUF_X2", "BUF_X4", "INV_X1", "INV_X2", "INV_X4"];
    (0..count)
        .map(|_| {
            let depth = rng.gen_range(3..=8usize);
            let stages = (0..depth)
                .map(|_| {
                    let net = design.nets[rng.gen_range(0..design.nets.len())].clone();
                    let sink_path = rng.gen_range(0..net.paths().len());
                    let cell = lib
                        .cell(cells[rng.gen_range(0..cells.len())])
                        .expect("builtin cell")
                        .clone();
                    Stage {
                        cell,
                        net,
                        sink_path,
                    }
                })
                .collect();
            TimingPath::new(stages)
        })
        .collect()
}

fn arrivals_ps<T: WireTimer>(
    paths: &[TimingPath],
    timer: &T,
    input_slew: Seconds,
) -> Result<(Vec<f64>, f64, f64), sta::StaError> {
    let start = Instant::now();
    let mut out = Vec::with_capacity(paths.len());
    let mut gate_total = 0.0;
    let mut wire_total = 0.0;
    for p in paths {
        let a = p.arrival(timer, input_slew)?;
        out.push(a.arrival.pico_seconds());
        gate_total += a.gate_total.pico_seconds();
        wire_total += a.wire_total.pico_seconds();
    }
    let _ = (gate_total, wire_total);
    Ok((out, start.elapsed().as_secs_f64(), 0.0))
}

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("table5", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    let lib = CellLibrary::builtin();
    let input_slew = Seconds::from_ps(25.0);

    eprintln!("[table5] training estimators...");
    let train_data = match build_train_dataset(&cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dataset build failed: {e}");
            std::process::exit(1);
        }
    };
    let mut plans = Vec::new();
    for (name, mut ecfg) in [
        ("PlanA", EstimatorConfig::plan_a_small()),
        ("PlanB", EstimatorConfig::plan_b_small()),
        ("PlanC", EstimatorConfig::plan_c_small()),
    ] {
        // The paper trains each plan to convergence; double the harness
        // epoch budget for the arrival study.
        ecfg.epochs = cfg.epochs * 2;
        let mut est = WireTimingEstimator::new(&ecfg, cfg.seed);
        est.train(&train_data).expect("training must converge");
        plans.push((name, est));
    }
    let dac20 = Dac20Estimator::fit(&train_data, &GbdtConfig::default()).expect("gbdt fit");

    let mut table = TableWriter::new(
        format!(
            "TABLE V — path arrival accuracy (R²/max-err ps) and wire runtime, scale={}",
            cfg.scale
        ),
        &[
            "Benchmark",
            "#nets",
            "DAC20",
            "PlanA",
            "PlanB",
            "PlanC",
            "GoldenWire(s)",
            "EstWire(s)",
            "Est us/net",
        ],
    );

    let mut sums = vec![(0.0f64, 0.0f64); 4];
    let mut n_rows = 0.0f64;
    for spec in paper_roster().into_iter().filter(|d| !d.train) {
        let design = generate_design(&spec, cfg.scale, cfg.seed, cfg.net_config());
        let paths = make_paths(&design, &lib, 40, cfg.seed ^ 0xab);

        // Golden reference arrivals (NLDM gates + golden wire sim), with
        // the supply and drive resistance the estimator's generic context
        // assumes (vdd 0.8, BUF_X2-class 140 ohm driver).
        let golden_timer = GoldenWireTimer::new(
            GoldenTimer::new(0.8, rcnet::Ohms(140.0)).with_steps(2500),
            true,
        );
        let (golden, golden_wire_s, _) =
            arrivals_ps(&paths, &golden_timer, input_slew).expect("golden arrival");

        let mut cells = vec![spec.name.to_string(), design.net_count().to_string()];
        let mut est_wire_s = 0.0;
        let (dac_arr, t, _) = arrivals_ps(&paths, &dac20, input_slew).expect("dac20 arrival");
        est_wire_s += t;
        let score = |pred: &[f64]| -> (f64, f64) {
            (
                numeric::stats::r2_score(&golden, pred).unwrap_or(f64::NAN),
                numeric::stats::max_abs_err(&golden, pred).unwrap_or(f64::NAN),
            )
        };
        let (r2, me) = score(&dac_arr);
        sums[0].0 += r2;
        sums[0].1 += me;
        cells.push(format!("{r2:.3}/{me:.1}"));
        for (pi, (_, est)) in plans.iter().enumerate() {
            let (arr, t, _) = arrivals_ps(&paths, est, input_slew).expect("plan arrival");
            est_wire_s += t;
            let (r2, me) = score(&arr);
            sums[1 + pi].0 += r2;
            sums[1 + pi].1 += me;
            cells.push(format!("{r2:.3}/{me:.1}"));
        }

        // Wire-only inference throughput over every net of the design
        // (the paper's ">200k nets in <100s" claim, measured per net).
        let builder = gnntrans::dataset::DatasetBuilder::new(cfg.seed);
        let contexts: Vec<_> = design.nets.iter().map(|n| builder.context_for(n)).collect();
        let pairs: Vec<_> = design.nets.iter().zip(contexts.iter()).collect();
        let start = Instant::now();
        let _ = plans[1]
            .1
            .predict_many(pairs.iter().map(|(n, c)| (*n, *c)))
            .expect("batch inference");
        let batch_s = start.elapsed().as_secs_f64();
        let us_per_net = 1e6 * batch_s / design.net_count().max(1) as f64;

        cells.push(format!("{golden_wire_s:.2}"));
        cells.push(format!("{est_wire_s:.2}"));
        cells.push(format!("{us_per_net:.0}"));
        table.row(cells);
        n_rows += 1.0;
    }
    let mut cells = vec!["Average".to_string(), "".to_string()];
    for (r2, me) in &sums {
        cells.push(format!("{:.3}/{:.1}", r2 / n_rows, me / n_rows));
    }
    table.row(cells);
    println!("{table}");
    println!(
        "Shape check vs paper TABLE V: plan R² near 1 with ps-scale max \
         errors; DAC20 with tens-of-ps max errors; estimator wire runtime \
         orders of magnitude below the golden wire simulation.\n\
         Extrapolation: at the printed us/net, 200k nets take \
         (us/net * 0.2) seconds."
    );
}
