//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * path-feature concatenation in the pooling module (eq. 4) on/off;
//! * resistance-weighted vs mean neighbor aggregation (eq. 1);
//! * attention depth `L2 = 0` (GNN only) vs GNN depth `L1 = 0`
//!   (attention only) vs the combined stack.
//!
//! ```text
//! cargo run -p bench --release --bin ablation \
//!     [-- --scale X --seed N --epochs E --quick]
//! ```

use bench::harness::{build_test_samples, build_train_dataset, ExperimentConfig};
use bench::tables::TableWriter;
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnn::train::{train, TrainConfig};
use gnntrans::features::{NODE_DIM, PATH_DIM};
use gnntrans::metrics::Evaluator;

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("ablation", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    eprintln!("[ablation] building datasets (scale {})...", cfg.scale);
    let train_data = build_train_dataset(&cfg).expect("train data");
    let tests = build_test_samples(&cfg).expect("test data");
    let batches = train_data.batches().expect("batches");

    let base = GnnTransConfig {
        node_dim: NODE_DIM,
        path_dim: PATH_DIM,
        hidden: 16,
        gnn_layers: 4,
        attn_layers: 2,
        heads: 4,
        mlp_hidden: 32,
        path_features: true,
        weighted_aggregation: true,
        attn_norm: true,
    };
    let variants: Vec<(&str, GnnTransConfig)> = vec![
        ("full GNNTrans (L1=4, L2=2)", base.clone()),
        (
            "no path features (baseline-style pooling)",
            GnnTransConfig {
                path_features: false,
                ..base.clone()
            },
        ),
        (
            "unweighted aggregation (ignore resistance)",
            GnnTransConfig {
                weighted_aggregation: false,
                ..base.clone()
            },
        ),
        (
            "GNN only (L2=0)",
            GnnTransConfig {
                gnn_layers: 6,
                attn_layers: 0,
                ..base.clone()
            },
        ),
        (
            "attention only (L1=0)",
            GnnTransConfig {
                gnn_layers: 0,
                attn_layers: 6,
                ..base.clone()
            },
        ),
    ];

    let mut table = TableWriter::new(
        format!("Ablation — test-set R² (slew/delay), scale={}", cfg.scale),
        &["Variant", "R² slew", "R² delay", "#params"],
    );
    let tcfg = TrainConfig {
        epochs: cfg.epochs,
        lr: 3e-3,
        seed: cfg.seed,
        grad_clip: Some(5.0),
        accum: 1,
        backend: gnn::train::TrainBackend::from_env(),
    };
    for (name, vcfg) in variants {
        eprint!("[ablation] training `{name}`... ");
        let mut model = GnnTrans::new(&vcfg, cfg.seed);
        train(&mut model, &batches, &tcfg).expect("training");
        let mut ev = Evaluator::new();
        for (_, samples) in &tests {
            for s in samples {
                let batch = train_data.batch_for(&s.net, &s.ctx).expect("batch");
                let pred = train_data.target_scaler.inverse(&model.predict(&batch));
                for i in 0..pred.rows() {
                    ev.push(
                        (
                            s.targets_ps.get(i, 0) as f64,
                            s.targets_ps.get(i, 1) as f64,
                        ),
                        (
                            pred.get(i, 0).max(0.0) as f64,
                            pred.get(i, 1).max(0.0) as f64,
                        ),
                    );
                }
            }
        }
        let r = ev.finish().expect("evaluation");
        eprintln!("R² delay {:.3}", r.r2_delay);
        table.row(vec![
            name.to_string(),
            format!("{:.3}", r.r2_slew),
            format!("{:.3}", r.r2_delay),
            model.param_set().scalar_count().to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Expected shape: the full model leads; dropping path features \
         costs the most (they carry the Elmore/D2M physics); unweighted \
         aggregation and single-family stacks land in between."
    );
}
