//! Extension study: inductive generalization to out-of-distribution
//! topologies (the paper's claim that "the inductive model can be shared
//! across different designs without loss of accuracy even if they are
//! unseen").
//!
//! The estimator is trained on random routing nets, then evaluated on
//! balanced clock H-trees and neighbor-coupled bus bits — structures it
//! has never seen — before and after a short fine-tuning pass.
//!
//! ```text
//! cargo run -p bench --release --bin clocktree_study [-- --seed N --epochs E]
//! ```

use bench::harness::ExperimentConfig;
use bench::tables::TableWriter;
use gnntrans::dataset::{DatasetBuilder, Sample};
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use gnntrans::metrics::evaluate_estimator;
use netgen::nets::{NetConfig, NetGenerator};
use netgen::special::{bus, clock_htree};
use netgen::TechProfile;

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("clocktree", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {
    let tech = TechProfile::n16();
    let builder = DatasetBuilder::new(cfg.seed);

    // Train on ordinary routing nets.
    eprintln!("[clocktree] training on random routing nets...");
    let mut g = NetGenerator::new(cfg.seed, NetConfig::default());
    let train: Vec<_> = (0..250)
        .map(|i| g.net(format!("t{i}"), i % 3 == 0))
        .collect();
    let data = DatasetBuilder::new(cfg.seed)
        .build(&train)
        .expect("train data");
    let mut ecfg = EstimatorConfig::plan_b_small();
    ecfg.epochs = cfg.epochs;
    let mut est = WireTimingEstimator::new(&ecfg, cfg.seed);
    est.train(&data).expect("training");

    // Out-of-distribution sets.
    let htrees: Vec<Sample> = (0..12)
        .map(|i| {
            let levels = 2 + (i % 3) as u32;
            let net = clock_htree(&format!("clk{i}"), levels, &tech, cfg.seed + i);
            builder.sample_for(&net).expect("htree label")
        })
        .collect();
    let bus_bits: Vec<Sample> = (0..4)
        .flat_map(|b| {
            bus(&format!("bus{b}"), 8, 10, &tech, cfg.seed + b)
                .bits
                .into_iter()
        })
        .map(|net| builder.sample_for(&net).expect("bus label"))
        .collect();

    let mut table = TableWriter::new(
        "Out-of-distribution generalization (R² slew/delay)",
        &["Topology", "#nets", "zero-shot", "after fine-tune (6 nets)"],
    );
    for (name, samples) in [("clock H-trees", &htrees), ("bus bits", &bus_bits)] {
        let zero = evaluate_estimator(&est, samples, false).expect("zero-shot eval");
        // Fine-tune on the first 5 nets of the family, evaluate on the rest.
        let mut tuned = est.clone();
        tuned
            .fine_tune(&samples[..6], 25, 2e-3)
            .expect("fine-tune");
        let after = evaluate_estimator(&tuned, &samples[6..], false).expect("tuned eval");
        table.row(vec![
            name.to_string(),
            samples.len().to_string(),
            format!("{:.3}/{:.3}", zero.r2_slew, zero.r2_delay),
            format!("{:.3}/{:.3}", after.r2_slew, after.r2_delay),
        ]);
    }
    println!("{table}");
    println!(
        "Zero-shot scores quantify the paper's inductive-sharing claim on \
         structured\ntopologies; a 6-net fine-tune (the incremental flow) \
         recovers most of any gap."
    );
}
