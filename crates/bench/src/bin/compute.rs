//! Compute-layer benchmark: blocked matmul kernels and `par` scaling.
//!
//! Measures the two things the parallel compute layer changed —
//! single-thread matmul throughput (blocked/dispatched kernel vs the
//! seed scalar kernel kept as [`Mat::matmul_reference`]) and
//! dataset-build nets/sec at 1 thread vs `N` threads on the `par` pool
//! — and writes `BENCH_compute.json`. Training throughput has its own
//! benchmark (`bench --bin train`, `BENCH_train.json`), which measures
//! the tape vs packed gradient backends rather than pool scaling.
//!
//! ```text
//! cargo run -p bench --release --bin compute [-- --steps N --threads T \
//!     --seed S --out PATH]
//! ```
//!
//! `--steps` scales every workload (reps, net counts); the
//! check-script smoke uses `--steps 2`. Like the serve loadgen, the
//! report records `host_cores`: on a single-core host the 1-vs-N runs
//! validate determinism under concurrency, not parallel speedup, and a
//! caveat is printed.

use gnntrans::dataset::DatasetBuilder;
use netgen::nets::{NetConfig, NetGenerator};
use std::fmt::Write as _;
use std::time::Instant;
use tensor::Mat;

struct Args {
    steps: usize,
    threads: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        steps: 30,
        threads: par::resolve_threads(None).max(2),
        seed: 2023,
        out: "BENCH_compute.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match argv[i].as_str() {
            "--steps" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.steps = v;
                    i += 1;
                }
            }
            "--threads" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.threads = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    args.seed = v;
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = value {
                    args.out = v.clone();
                    i += 1;
                }
            }
            other => {
                eprintln!(
                    "compute: unknown flag `{other}`\
                     \n  --steps N     workload scale (default 30; smoke: 2)\
                     \n  --threads T   parallel lane count for the 1-vs-N runs\
                     \n  --seed S      net-generation seed\
                     \n  --out PATH    result file (default BENCH_compute.json)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args.steps = args.steps.max(1);
    args.threads = args.threads.max(2);
    args
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn fill(rows: usize, cols: usize, seed: f32) -> Mat {
    let data = (0..rows * cols)
        .map(|i| ((i as f32 * 0.37 + seed).sin()) * 0.8)
        .collect();
    Mat::from_vec(rows, cols, data).expect("bench matrix")
}

/// Best-of-reps GFLOP/s of `f` for an `m x k x n` product. Best-of is
/// the robust throughput estimator on a shared host: every slowdown is
/// external (scheduler preemption, cold pages), so the fastest rep is
/// the closest observation of the kernel itself.
fn gflops(m: usize, k: usize, n: usize, reps: usize, f: &dyn Fn() -> Mat) -> f64 {
    let flops = 2.0 * (m * k * n) as f64;
    let best = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            assert!(out.get(0, 0).is_finite());
            dt
        })
        .fold(f64::INFINITY, f64::min);
    flops / best / 1e9
}

struct MatmulRow {
    shape: (usize, usize, usize),
    gflops_blocked: f64,
    gflops_seed: f64,
}

/// 1-vs-N timing of one closure, with the pool reset in between.
struct Scaling {
    serial_s: f64,
    parallel_s: f64,
}

fn time_at<F: FnMut()>(threads: usize, mut f: F) -> f64 {
    par::set_threads(threads);
    let t0 = Instant::now();
    f();
    let dt = t0.elapsed().as_secs_f64();
    par::set_threads(1);
    dt
}

fn main() {
    let args = parse_args();

    // --- matmul throughput (single thread; the kernel itself is serial).
    // Square shapes exercise the cache blocking; the skinny shapes are
    // the hidden-dim products GNNTrans actually runs (hidden 24, node
    // counts tens to hundreds).
    eprintln!("compute: matmul kernels ({} reps)...", args.steps);
    let shapes = [
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (64, 24, 24),
        (200, 13, 24),
    ];
    let reps = args.steps.clamp(3, 60);
    let matmul: Vec<MatmulRow> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = fill(m, k, 1.0);
            let b = fill(k, n, 2.0);
            let row = MatmulRow {
                shape: (m, k, n),
                gflops_blocked: gflops(m, k, n, reps, &|| a.matmul(&b)),
                gflops_seed: gflops(m, k, n, reps, &|| a.matmul_reference(&b)),
            };
            eprintln!(
                "compute: {m}x{k}x{n}: blocked {:.2} GF/s, seed {:.2} GF/s ({:.2}x)",
                row.gflops_blocked,
                row.gflops_seed,
                row.gflops_blocked / row.gflops_seed.max(1e-12),
            );
            row
        })
        .collect();

    // --- dataset build nets/sec, 1 vs N threads.
    let net_count = (4 * args.steps).max(6);
    eprintln!(
        "compute: dataset build over {net_count} nets, 1 vs {} threads...",
        args.threads
    );
    let net_cfg = NetConfig {
        nodes_min: 6,
        nodes_max: 24,
        ..Default::default()
    };
    let mut g = NetGenerator::new(args.seed, net_cfg);
    let nets: Vec<_> = (0..net_count)
        .map(|i| g.net(format!("c{i}"), i % 3 == 0))
        .collect();
    let build = |_: &mut ()| {
        DatasetBuilder::new(1)
            .with_sim_steps(600)
            .build(&nets)
            .expect("dataset build")
    };
    let ds_serial = time_at(1, || {
        build(&mut ());
    });
    let ds_parallel = time_at(args.threads, || {
        build(&mut ());
    });
    let dataset_scaling = Scaling {
        serial_s: ds_serial,
        parallel_s: ds_parallel,
    };

    // --- report.
    let cores = host_cores();
    let mut out = String::with_capacity(2048);
    out.push_str("{\"schema\":\"bench.compute.v1\"");
    let _ = write!(out, ",\"host_cores\":{cores}");
    let _ = write!(out, ",\"steps\":{}", args.steps);
    let _ = write!(out, ",\"threads_n\":{}", args.threads);
    let _ = write!(out, ",\"pool_workers\":{}", par::workers());
    out.push_str(",\"matmul\":[");
    for (i, row) in matmul.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (m, k, n) = row.shape;
        let _ = write!(out, "{{\"shape\":\"{m}x{k}x{n}\",\"gflops_blocked\":");
        obs::json::push_f64(&mut out, row.gflops_blocked);
        out.push_str(",\"gflops_seed\":");
        obs::json::push_f64(&mut out, row.gflops_seed);
        out.push_str(",\"speedup\":");
        obs::json::push_f64(&mut out, row.gflops_blocked / row.gflops_seed.max(1e-12));
        out.push('}');
    }
    out.push(']');
    let push_scaling = |out: &mut String, name: &str, s: &Scaling, unit_per_s: Option<f64>| {
        let _ = write!(out, ",\"{name}\":{{\"serial_s\":");
        obs::json::push_f64(out, s.serial_s);
        out.push_str(",\"parallel_s\":");
        obs::json::push_f64(out, s.parallel_s);
        out.push_str(",\"speedup\":");
        obs::json::push_f64(out, s.serial_s / s.parallel_s.max(1e-12));
        if let Some(units) = unit_per_s {
            out.push_str(",\"serial_nets_per_s\":");
            obs::json::push_f64(out, units / s.serial_s.max(1e-12));
            out.push_str(",\"parallel_nets_per_s\":");
            obs::json::push_f64(out, units / s.parallel_s.max(1e-12));
        }
        out.push('}');
    };
    push_scaling(&mut out, "dataset_build", &dataset_scaling, Some(net_count as f64));
    out.push('}');

    std::fs::write(&args.out, format!("{out}\n")).expect("write report");
    eprintln!("compute: wrote {}", args.out);

    if cores < args.threads {
        eprintln!(
            "compute: note: host has {cores} core(s) — the par pool is \
             compute-bound, so parallel speedup requires >= {} cores; \
             this run validates determinism under concurrency, not scaling",
            args.threads
        );
    }
}
