//! Fig. 1 / Fig. 2(a): timing-path counts explode with gate count on
//! netlists, while a wire RC net has exactly one path per sink.
//!
//! ```text
//! cargo run -p bench --release --bin fig1_paths [-- --seed N]
//! ```

use bench::{ExperimentConfig, TableWriter};
use netgen::dag::GateDag;
use netgen::nets::{NetConfig, NetGenerator};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let report_cfg = cfg.clone();
    bench::run_experiment("fig1_paths", &report_cfg, move || run(cfg));
}

fn run(cfg: ExperimentConfig) {

    // Fig. 2(a): #paths vs #gates on random netlists (ISCAS89-like
    // reconvergent DAGs). The paper reports >1M paths at 10k gates.
    let mut t = TableWriter::new(
        "Fig. 2(a) — netlist path count vs gate count",
        &["#gates", "#paths (exact, saturating)", "#paths (float)"],
    );
    for &n in &[10usize, 30, 100, 300, 1000, 3000, 10000] {
        let dag = GateDag::random(n, cfg.seed);
        let exact = dag.path_count();
        let float = dag.path_count_f64();
        let exact_str = if exact == u128::MAX {
            ">= 2^128".to_string()
        } else {
            exact.to_string()
        };
        t.row(vec![n.to_string(), exact_str, format!("{float:.3e}")]);
    }
    println!("{t}");

    // Fig. 1(b)/2(b) contrast: wire paths equal the sink count and stay
    // tiny regardless of how many capacitances the net has.
    let mut t = TableWriter::new(
        "Fig. 1 contrast — wire path count vs capacitance count",
        &["#caps (nodes)", "#paths (=#sinks)"],
    );
    for &nodes in &[8usize, 16, 32, 64, 128] {
        let net_cfg = NetConfig {
            nodes_min: nodes,
            nodes_max: nodes,
            sinks_max: 49, // the paper's observed maximum
            ..Default::default()
        };
        let mut g = NetGenerator::new(cfg.seed, net_cfg);
        let net = g.nontree_net(format!("w{nodes}"));
        t.row(vec![
            net.node_count().to_string(),
            net.paths().len().to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Shape check: netlist paths grow combinatorially with gates; wire \
         paths stay bounded by the sink count (paper: max 49 across 200k nets)."
    );
}
