//! `obs-trace`: critical-path analyzer for serve request traces.
//!
//! Reads per-request stage breakdowns — either a JSONL dump (one
//! [`obs::TraceRecord`] per line, as written by `loadgen --traces-out`)
//! or live from a running server's `GET /v1/traces` — and prints a
//! stage-attribution report: per-stage latency percentiles, where wall
//! time goes (queue vs model vs overhead), and the slowest requests
//! with their dominant stage.
//!
//! ```text
//! # from a dump
//! cargo run -p bench --release --bin obs-trace -- --input traces.jsonl
//!
//! # live, newest 256 traces, slow requests only
//! cargo run -p bench --release --bin obs-trace -- --url 127.0.0.1:8080 --n 256 --min-ms 5
//!
//! # self-contained smoke (scripts/check.sh)
//! cargo run -p bench --release --bin obs-trace -- --smoke
//! ```

use obs::{Stage, TraceRecord};
use serve::json::Json;

struct Args {
    input: Option<String>,
    url: Option<String>,
    n: usize,
    min_ms: f64,
    slowest: usize,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            input: None,
            url: None,
            n: 512,
            min_ms: 0.0,
            slowest: 5,
            smoke: false,
        }
    }
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let need = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--input" => args.input = Some(need(&mut argv, "--input")?),
            "--url" => args.url = Some(need(&mut argv, "--url")?),
            "--n" => {
                args.n = need(&mut argv, "--n")?
                    .parse::<usize>()
                    .map_err(|_| "--n needs an integer".to_string())?
                    .max(1);
            }
            "--min-ms" => {
                args.min_ms = need(&mut argv, "--min-ms")?
                    .parse::<f64>()
                    .map_err(|_| "--min-ms needs a number".to_string())?
                    .max(0.0);
            }
            "--slowest" => {
                args.slowest = need(&mut argv, "--slowest")?
                    .parse::<usize>()
                    .map_err(|_| "--slowest needs an integer".to_string())?;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "obs-trace: stage-attribution report for serve request traces\n\
                     \n  --input PATH   trace JSONL dump (from `loadgen --traces-out`)\
                     \n  --url ADDR     fetch live traces from HOST:PORT instead\
                     \n  --n K          traces to fetch in --url mode (default 512)\
                     \n  --min-ms X     ignore traces faster than X ms total (default 0)\
                     \n  --slowest K    slowest traces to list (default 5)\
                     \n  --smoke        run the self-contained smoke test and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !args.smoke && args.input.is_none() && args.url.is_none() {
        return Err("supply --input PATH or --url HOST:PORT (see --help)".into());
    }
    if args.input.is_some() && args.url.is_some() {
        return Err("--input and --url are mutually exclusive".into());
    }
    Ok(args)
}

/// Rebuilds a [`TraceRecord`] from one parsed JSON object (the wire
/// format of both `/v1/traces` entries and JSONL dump lines).
fn trace_from_json(t: &Json) -> Option<TraceRecord> {
    let trace_id = obs::TraceId::parse(t.get("trace_id")?.as_str()?)?;
    let stages_obj = t.get("stages")?;
    let mut stages = [0.0f64; obs::trace::STAGE_COUNT];
    for stage in Stage::ALL {
        stages[stage.index()] = stages_obj.get(stage.name())?.as_f64()? / 1e3;
    }
    Some(TraceRecord {
        trace_id,
        started_unix_ms: t.get("started_unix_ms")?.as_u64()?,
        total_s: t.get("total_ms")?.as_f64()? / 1e3,
        status: t.get("status")?.as_u64()? as u16,
        nets: t.get("nets")?.as_u64()? as u32,
        stages,
    })
}

fn load_jsonl(path: &str) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut traces = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed =
            serve::json::parse(line).map_err(|e| format!("{path}:{}: bad JSON: {e}", i + 1))?;
        let rec = trace_from_json(&parsed)
            .ok_or_else(|| format!("{path}:{}: not a trace record", i + 1))?;
        traces.push(rec);
    }
    Ok(traces)
}

fn fetch_live(url: &str, n: usize) -> Result<Vec<TraceRecord>, String> {
    let addr: std::net::SocketAddr = url
        .parse()
        .map_err(|_| format!("--url must be HOST:PORT, got `{url}`"))?;
    let mut client = serve::Client::new(addr);
    let r = client
        .request("GET", &format!("/v1/traces?n={n}"), None)
        .map_err(|e| format!("GET /v1/traces failed: {e}"))?;
    if r.status != 200 {
        return Err(format!("GET /v1/traces returned {}", r.status));
    }
    let parsed = serve::json::parse(&r.body).map_err(|e| format!("traces body: {e}"))?;
    match parsed.get("traces") {
        Some(Json::Arr(items)) => Ok(items.iter().filter_map(trace_from_json).collect()),
        _ => Err("traces body missing `traces` array".into()),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The stage holding the largest share of a trace's wall time.
fn dominant_stage(t: &TraceRecord) -> Stage {
    Stage::ALL
        .into_iter()
        .max_by(|a, b| {
            t.stage(*a)
                .partial_cmp(&t.stage(*b))
                .expect("finite stage times")
        })
        .expect("Stage::ALL is non-empty")
}

/// Prints the stage-attribution report; returns the fraction of total
/// wall time that the six stages fail to account for (used by --smoke).
fn report(traces: &[TraceRecord], slowest: usize) -> f64 {
    let n = traces.len();
    let total_s: f64 = traces.iter().map(|t| t.total_s).sum();
    println!("obs-trace: {n} trace(s), {:.1} ms total wall time", total_s * 1e3);
    println!();

    // Per-stage latency table.
    println!("{:<12} {:>10} {:>10} {:>10} {:>10} {:>8}", "stage", "p50 ms", "p95 ms", "p99 ms", "mean ms", "share");
    let mut attributed_s = 0.0;
    for stage in Stage::ALL {
        let mut v: Vec<f64> = traces.iter().map(|t| t.stage(stage)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite stage times"));
        let sum: f64 = v.iter().sum();
        attributed_s += sum;
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.1}%",
            stage.name(),
            percentile(&v, 50.0) * 1e3,
            percentile(&v, 95.0) * 1e3,
            percentile(&v, 99.0) * 1e3,
            sum / n as f64 * 1e3,
            if total_s > 0.0 { sum / total_s * 100.0 } else { 0.0 },
        );
    }
    println!();

    // Where does a request's life go?
    let queue_s: f64 = traces
        .iter()
        .map(|t| t.stage(Stage::QueueWait) + t.stage(Stage::BatchWait))
        .sum();
    let model_s: f64 = traces.iter().map(|t| t.stage(Stage::Inference)).sum();
    let other_s = (attributed_s - queue_s - model_s).max(0.0);
    let unattributed = if total_s > 0.0 {
        ((total_s - attributed_s) / total_s).abs()
    } else {
        0.0
    };
    if total_s > 0.0 {
        println!(
            "time in queue {:.1}%  |  time in model {:.1}%  |  http/parse/respond {:.1}%  (unattributed {:.2}%)",
            queue_s / total_s * 100.0,
            model_s / total_s * 100.0,
            other_s / total_s * 100.0,
            unattributed * 100.0,
        );
    }

    // Slowest traces with their dominant stage.
    let k = slowest.min(n);
    if k > 0 {
        let mut by_total: Vec<&TraceRecord> = traces.iter().collect();
        by_total.sort_by(|a, b| b.total_s.partial_cmp(&a.total_s).expect("finite totals"));
        println!();
        println!("slowest {k}:");
        for t in &by_total[..k] {
            let dom = dominant_stage(t);
            println!(
                "  {}  {:>9.3} ms  status {}  nets {:>3}  dominant: {} ({:.1}%)",
                t.trace_id.to_hex(),
                t.total_s * 1e3,
                t.status,
                t.nets,
                dom.name(),
                if t.total_s > 0.0 { t.stage(dom) / t.total_s * 100.0 } else { 0.0 },
            );
        }
    }
    unattributed
}

/// Self-contained smoke: spin up an in-process server, generate
/// traffic, analyze its live traces, and check the attribution adds
/// up. Exercises the same path `scripts/check.sh` gates on.
fn smoke() -> i32 {
    let cfg = serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..Default::default()
    };
    let server = match serve::Server::start(cfg, serve::demo_model(3, 12, 10), "obs-trace-smoke") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs-trace: SMOKE FAIL: server failed to start: {e}");
            return 1;
        }
    };
    let addr = server.local_addr();
    let mut client = serve::Client::new(addr);
    let body = r#"{"netgen":{"seed":5,"count":2,"nodes_min":4,"nodes_max":8}}"#;
    for _ in 0..20 {
        match client.request("POST", "/v1/predict", Some(body)) {
            Ok(r) if r.status == 200 => {}
            Ok(r) => {
                eprintln!("obs-trace: SMOKE FAIL: predict returned {}: {}", r.status, r.body);
                return 1;
            }
            Err(e) => {
                eprintln!("obs-trace: SMOKE FAIL: predict failed: {e}");
                return 1;
            }
        }
    }
    let traces = match fetch_live(&addr.to_string(), 64) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-trace: SMOKE FAIL: {e}");
            return 1;
        }
    };
    server.shutdown();
    if traces.len() < 20 {
        eprintln!("obs-trace: SMOKE FAIL: expected >= 20 traces, got {}", traces.len());
        return 1;
    }
    let unattributed = report(&traces, 3);
    // The respond stage is the clamped remainder, so the stage sum can
    // only undershoot the wall time; 5% matches the integration gate.
    if unattributed > 0.05 {
        eprintln!(
            "obs-trace: SMOKE FAIL: {:.2}% of wall time unattributed (> 5%)",
            unattributed * 100.0
        );
        return 1;
    }
    println!("obs-trace: SMOKE PASS");
    0
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(m) => {
            eprintln!("obs-trace: {m}");
            std::process::exit(2);
        }
    };
    if args.smoke {
        std::process::exit(smoke());
    }
    let loaded = match (&args.input, &args.url) {
        (Some(path), None) => load_jsonl(path),
        (None, Some(url)) => fetch_live(url, args.n),
        _ => unreachable!("parse_args enforces exactly one source"),
    };
    let mut traces = match loaded {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-trace: {e}");
            std::process::exit(1);
        }
    };
    traces.retain(|t| t.total_s * 1e3 >= args.min_ms);
    if traces.is_empty() {
        eprintln!("obs-trace: no traces to analyze (after --min-ms filter)");
        std::process::exit(1);
    }
    report(&traces, args.slowest);
}
