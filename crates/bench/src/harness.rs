//! Dataset assembly and model-zoo helpers for the experiment binaries.

use gnn::models::{BaselineConfig, GatNet, Gcn2Net, GraphModel, GraphSageNet, GraphTransformerNet};
use gnn::train::{train, TrainConfig};
use gnntrans::dataset::{Dataset, DatasetBuilder, Sample};
use gnntrans::metrics::{EvalResult, Evaluator};
use gnntrans::CoreError;
use netgen::designs::{generate_design, paper_roster, DesignSpec};
use netgen::nets::NetConfig;

/// Knobs shared by every experiment binary, overridable from the command
/// line (`--scale`, `--seed`, `--epochs`, `--quick`, `--obs-json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Fraction of each paper design's net count to generate.
    pub scale: f64,
    /// Global seed.
    pub seed: u64,
    /// Training epochs for all neural models.
    pub epochs: usize,
    /// Baseline search depth `L` (the paper uses 20).
    pub baseline_layers: usize,
    /// Where to write the observability run report (`--obs-json <path>`;
    /// `None` disables the report).
    pub obs_json: Option<String>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 4e-4,
            seed: 2023,
            epochs: 40,
            baseline_layers: 6,
            obs_json: None,
        }
    }
}

/// Parses one flag value, warning (and leaving the default in place)
/// when the value is missing or malformed.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Option<T> {
    let Some(raw) = value else {
        obs::event!(
            obs::Level::Warn,
            "bench.harness",
            "flag is missing its value; keeping default",
            flag = flag,
        );
        return None;
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            obs::event!(
                obs::Level::Warn,
                "bench.harness",
                "rejecting malformed flag value; keeping default",
                flag = flag,
                value = raw,
            );
            None
        }
    }
}

impl ExperimentConfig {
    /// Parses `--scale X --seed N --epochs N --quick` style arguments;
    /// unknown arguments are ignored so binaries can add their own.
    /// Malformed values (e.g. `--epochs abc`) emit a warn-level obs event
    /// naming the flag and the rejected value, and keep the default.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = ExperimentConfig::default();
        let argv: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let value = argv.get(i + 1);
            match flag {
                "--scale" => {
                    if let Some(v) = parse_flag(flag, value) {
                        cfg.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = parse_flag(flag, value) {
                        cfg.seed = v;
                        i += 1;
                    }
                }
                "--epochs" => {
                    if let Some(v) = parse_flag(flag, value) {
                        cfg.epochs = v;
                        i += 1;
                    }
                }
                "--layers" => {
                    if let Some(v) = parse_flag(flag, value) {
                        cfg.baseline_layers = v;
                        i += 1;
                    }
                }
                "--obs-json" => {
                    if let Some(v) = parse_flag::<String>(flag, value) {
                        cfg.obs_json = Some(v);
                        i += 1;
                    }
                }
                "--quick" => {
                    cfg.scale = 2e-4;
                    cfg.epochs = 10;
                    cfg.baseline_layers = 3;
                }
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// The net-shape configuration used across all experiments.
    pub fn net_config(&self) -> NetConfig {
        NetConfig {
            nodes_min: 6,
            nodes_max: 36,
            ..Default::default()
        }
    }
}

/// Runs an experiment body inside a root span named `name`, publishing
/// the shared knobs as gauges, then writes the observability run report
/// when `--obs-json` was given.
pub fn run_experiment(name: &str, cfg: &ExperimentConfig, body: impl FnOnce()) {
    obs::gauge("bench.experiment.scale").set(cfg.scale);
    obs::gauge("bench.experiment.seed").set(cfg.seed as f64);
    obs::gauge("bench.experiment.epochs").set(cfg.epochs as f64);
    obs::gauge("bench.experiment.baseline_layers").set(cfg.baseline_layers as f64);
    let wall = std::time::Instant::now();
    obs::with_span(name, body);
    obs::gauge_labeled("bench.experiment.wall_seconds", Some(name))
        .set(wall.elapsed().as_secs_f64());
    write_obs_report(cfg);
}

/// Captures the global span/metric state and writes it to the path
/// configured by `--obs-json` (no-op when unset).
pub fn write_obs_report(cfg: &ExperimentConfig) {
    let Some(path) = &cfg.obs_json else {
        return;
    };
    let report = obs::RunReport::capture();
    match report.write_file(path) {
        Ok(()) => obs::event!(
            obs::Level::Info,
            "bench.harness",
            "obs run report written",
            path = path.as_str(),
        ),
        // A requested report that cannot be written is a real failure;
        // report it regardless of the obs level.
        Err(e) => eprintln!("failed to write obs run report to {path}: {e}"),
    }
}

/// Generates the training roster and builds the labelled dataset.
///
/// # Errors
///
/// Propagates golden-simulation failures.
pub fn build_train_dataset(cfg: &ExperimentConfig) -> Result<Dataset, CoreError> {
    let _span = obs::span("train_data");
    let mut nets = Vec::new();
    for spec in paper_roster().iter().filter(|d| d.train) {
        let design = generate_design(spec, cfg.scale, cfg.seed, cfg.net_config());
        nets.extend(design.nets);
    }
    obs::counter("bench.harness.train_nets").add(nets.len() as u64);
    DatasetBuilder::new(cfg.seed).build(&nets)
}

/// Generates and labels the test designs, keeping them per design (the
/// tables report per-design rows).
///
/// # Errors
///
/// Propagates golden-simulation failures.
pub fn build_test_samples(
    cfg: &ExperimentConfig,
) -> Result<Vec<(DesignSpec, Vec<Sample>)>, CoreError> {
    let _span = obs::span("test_data");
    let builder = DatasetBuilder::new(cfg.seed);
    // Test rows are cheap (no training), so generate 3x the training
    // scale to stabilize the per-design R² estimates.
    let test_scale = cfg.scale * 3.0;
    paper_roster()
        .into_iter()
        .filter(|d| !d.train)
        .map(|spec| {
            let design = generate_design(&spec, test_scale, cfg.seed, cfg.net_config());
            let samples: Result<Vec<Sample>, CoreError> =
                design.nets.iter().map(|n| builder.sample_for(n)).collect();
            Ok((spec, samples?))
        })
        .collect()
}

/// The four graph-learning baselines, trained on the dataset's batches.
///
/// # Errors
///
/// Propagates training failures.
pub fn train_baselines(
    data: &Dataset,
    cfg: &ExperimentConfig,
) -> Result<Vec<Box<dyn GraphModel>>, CoreError> {
    let bcfg = BaselineConfig {
        node_dim: gnntrans::features::NODE_DIM,
        hidden: 16,
        layers: cfg.baseline_layers,
        heads: 4,
        mlp_hidden: 32,
    };
    let mut models: Vec<Box<dyn GraphModel>> = vec![
        Box::new(Gcn2Net::new(&bcfg, cfg.seed)),
        Box::new(GraphSageNet::new(&bcfg, cfg.seed)),
        Box::new(GatNet::new(&bcfg, cfg.seed)),
        Box::new(GraphTransformerNet::new(&bcfg, cfg.seed)),
    ];
    let _span = obs::span("baselines");
    let batches = data.batches()?;
    for m in &mut models {
        // The pure transformer is the most sensitive to learning rate
        // (layer norm + global attention, no graph prior); give it a
        // gentler schedule, as the original Dwivedi-Bresson recipe does.
        let lr = if m.name() == "Trans." { 7e-4 } else { 3e-3 };
        let tcfg = TrainConfig {
            epochs: cfg.epochs,
            lr,
            seed: cfg.seed,
            grad_clip: Some(5.0),
            accum: 1,
            backend: gnn::train::TrainBackend::from_env(),
        };
        train(m.as_mut(), &batches, &tcfg)?;
    }
    Ok(models)
}

/// Evaluates one graph model on labelled samples using the training
/// dataset's scalers.
///
/// # Errors
///
/// Propagates batch packing failures and empty-selection rejection.
pub fn eval_baseline(
    model: &dyn GraphModel,
    train_data: &Dataset,
    samples: &[Sample],
    nontree_only: bool,
) -> Result<EvalResult, CoreError> {
    let mut ev = Evaluator::new();
    for s in samples {
        if nontree_only && s.is_tree() {
            continue;
        }
        let batch = train_data.batch_for(&s.net, &s.ctx)?;
        let pred = train_data.target_scaler.inverse(&model.predict(&batch));
        for i in 0..pred.rows() {
            ev.push(
                (
                    s.targets_ps.get(i, 0) as f64,
                    s.targets_ps.get(i, 1) as f64,
                ),
                (
                    pred.get(i, 0).max(0.0) as f64,
                    pred.get(i, 1).max(0.0) as f64,
                ),
            );
        }
    }
    ev.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_default() {
        let cfg = ExperimentConfig::from_args(
            ["--scale", "0.001", "--seed", "5", "--epochs", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cfg.scale, 0.001);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.epochs, 3);
        let q = ExperimentConfig::from_args(["--quick".to_string()]);
        assert!(q.scale < ExperimentConfig::default().scale);
    }

    #[test]
    fn unknown_args_ignored() {
        let cfg = ExperimentConfig::from_args(["--bogus".to_string(), "7".to_string()]);
        assert_eq!(cfg, ExperimentConfig::default());
    }

    #[test]
    fn obs_json_flag_parses() {
        let cfg = ExperimentConfig::from_args(
            ["--obs-json", "/tmp/report.json", "--quick"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cfg.obs_json.as_deref(), Some("/tmp/report.json"));
    }

    #[test]
    fn malformed_value_warns_and_keeps_default() {
        use std::sync::{Arc, Mutex};

        struct Capture(Mutex<Vec<String>>);
        impl obs::Sink for Capture {
            fn emit(&self, e: &obs::Event<'_>) {
                self.0.lock().unwrap().push(obs::JsonlSink::render(e));
            }
        }
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        obs::set_sinks(vec![cap.clone()]);
        obs::set_level(obs::Level::Warn);

        let cfg = ExperimentConfig::from_args(
            ["--epochs", "abc", "--scale", "0.001"]
                .iter()
                .map(|s| s.to_string()),
        );
        obs::set_sinks(vec![Arc::new(obs::StderrSink)]);

        // The malformed value left the default in place; later flags
        // still applied.
        assert_eq!(cfg.epochs, ExperimentConfig::default().epochs);
        assert_eq!(cfg.scale, 0.001);
        let lines = cap.0.lock().unwrap();
        let warn = lines
            .iter()
            .find(|l| l.contains("--epochs"))
            .expect("a warning naming the flag");
        assert!(warn.contains("\"value\":\"abc\""), "{warn}");
        assert!(warn.contains("\"level\":\"warn\""), "{warn}");
    }
}
