//! Dataset assembly and model-zoo helpers for the experiment binaries.

use gnn::models::{BaselineConfig, GatNet, Gcn2Net, GraphModel, GraphSageNet, GraphTransformerNet};
use gnn::train::{train, TrainConfig};
use gnntrans::dataset::{Dataset, DatasetBuilder, Sample};
use gnntrans::metrics::{EvalResult, Evaluator};
use gnntrans::CoreError;
use netgen::designs::{generate_design, paper_roster, DesignSpec};
use netgen::nets::NetConfig;

/// Knobs shared by every experiment binary, overridable from the command
/// line (`--scale`, `--seed`, `--epochs`, `--quick`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Fraction of each paper design's net count to generate.
    pub scale: f64,
    /// Global seed.
    pub seed: u64,
    /// Training epochs for all neural models.
    pub epochs: usize,
    /// Baseline search depth `L` (the paper uses 20).
    pub baseline_layers: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 4e-4,
            seed: 2023,
            epochs: 40,
            baseline_layers: 6,
        }
    }
}

impl ExperimentConfig {
    /// Parses `--scale X --seed N --epochs N --quick` style arguments;
    /// unknown arguments are ignored so binaries can add their own.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = ExperimentConfig::default();
        let argv: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < argv.len() {
            let value = argv.get(i + 1);
            match argv[i].as_str() {
                "--scale" => {
                    if let Some(v) = value.and_then(|v| v.parse().ok()) {
                        cfg.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = value.and_then(|v| v.parse().ok()) {
                        cfg.seed = v;
                        i += 1;
                    }
                }
                "--epochs" => {
                    if let Some(v) = value.and_then(|v| v.parse().ok()) {
                        cfg.epochs = v;
                        i += 1;
                    }
                }
                "--layers" => {
                    if let Some(v) = value.and_then(|v| v.parse().ok()) {
                        cfg.baseline_layers = v;
                        i += 1;
                    }
                }
                "--quick" => {
                    cfg.scale = 2e-4;
                    cfg.epochs = 10;
                    cfg.baseline_layers = 3;
                }
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// The net-shape configuration used across all experiments.
    pub fn net_config(&self) -> NetConfig {
        NetConfig {
            nodes_min: 6,
            nodes_max: 36,
            ..Default::default()
        }
    }
}

/// Generates the training roster and builds the labelled dataset.
///
/// # Errors
///
/// Propagates golden-simulation failures.
pub fn build_train_dataset(cfg: &ExperimentConfig) -> Result<Dataset, CoreError> {
    let mut nets = Vec::new();
    for spec in paper_roster().iter().filter(|d| d.train) {
        let design = generate_design(spec, cfg.scale, cfg.seed, cfg.net_config());
        nets.extend(design.nets);
    }
    DatasetBuilder::new(cfg.seed).build(&nets)
}

/// Generates and labels the test designs, keeping them per design (the
/// tables report per-design rows).
///
/// # Errors
///
/// Propagates golden-simulation failures.
pub fn build_test_samples(
    cfg: &ExperimentConfig,
) -> Result<Vec<(DesignSpec, Vec<Sample>)>, CoreError> {
    let builder = DatasetBuilder::new(cfg.seed);
    // Test rows are cheap (no training), so generate 3x the training
    // scale to stabilize the per-design R² estimates.
    let test_scale = cfg.scale * 3.0;
    paper_roster()
        .into_iter()
        .filter(|d| !d.train)
        .map(|spec| {
            let design = generate_design(&spec, test_scale, cfg.seed, cfg.net_config());
            let samples: Result<Vec<Sample>, CoreError> =
                design.nets.iter().map(|n| builder.sample_for(n)).collect();
            Ok((spec, samples?))
        })
        .collect()
}

/// The four graph-learning baselines, trained on the dataset's batches.
///
/// # Errors
///
/// Propagates training failures.
pub fn train_baselines(
    data: &Dataset,
    cfg: &ExperimentConfig,
) -> Result<Vec<Box<dyn GraphModel>>, CoreError> {
    let bcfg = BaselineConfig {
        node_dim: gnntrans::features::NODE_DIM,
        hidden: 16,
        layers: cfg.baseline_layers,
        heads: 4,
        mlp_hidden: 32,
    };
    let mut models: Vec<Box<dyn GraphModel>> = vec![
        Box::new(Gcn2Net::new(&bcfg, cfg.seed)),
        Box::new(GraphSageNet::new(&bcfg, cfg.seed)),
        Box::new(GatNet::new(&bcfg, cfg.seed)),
        Box::new(GraphTransformerNet::new(&bcfg, cfg.seed)),
    ];
    let batches = data.batches()?;
    for m in &mut models {
        // The pure transformer is the most sensitive to learning rate
        // (layer norm + global attention, no graph prior); give it a
        // gentler schedule, as the original Dwivedi-Bresson recipe does.
        let lr = if m.name() == "Trans." { 7e-4 } else { 3e-3 };
        let tcfg = TrainConfig {
            epochs: cfg.epochs,
            lr,
            seed: cfg.seed,
            grad_clip: Some(5.0),
        };
        train(m.as_mut(), &batches, &tcfg)?;
    }
    Ok(models)
}

/// Evaluates one graph model on labelled samples using the training
/// dataset's scalers.
///
/// # Errors
///
/// Propagates batch packing failures and empty-selection rejection.
pub fn eval_baseline(
    model: &dyn GraphModel,
    train_data: &Dataset,
    samples: &[Sample],
    nontree_only: bool,
) -> Result<EvalResult, CoreError> {
    let mut ev = Evaluator::new();
    for s in samples {
        if nontree_only && s.is_tree() {
            continue;
        }
        let batch = train_data.batch_for(&s.net, &s.ctx)?;
        let pred = train_data.target_scaler.inverse(&model.predict(&batch));
        for i in 0..pred.rows() {
            ev.push(
                (
                    s.targets_ps.get(i, 0) as f64,
                    s.targets_ps.get(i, 1) as f64,
                ),
                (
                    pred.get(i, 0).max(0.0) as f64,
                    pred.get(i, 1).max(0.0) as f64,
                ),
            );
        }
    }
    ev.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_default() {
        let cfg = ExperimentConfig::from_args(
            ["--scale", "0.001", "--seed", "5", "--epochs", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cfg.scale, 0.001);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.epochs, 3);
        let q = ExperimentConfig::from_args(["--quick".to_string()]);
        assert!(q.scale < ExperimentConfig::default().scale);
    }

    #[test]
    fn unknown_args_ignored() {
        let cfg = ExperimentConfig::from_args(["--bogus".to_string(), "7".to_string()]);
        assert_eq!(cfg, ExperimentConfig::default());
    }
}
