//! Hostile-input property tests for the SPEF parser.
//!
//! The serving layer feeds untrusted request bodies straight into
//! `rcnet::spef::parse`, so the parser's contract is: *any* byte soup
//! either parses or returns a typed `RcNetError` — it must never panic,
//! hang, or produce a structurally invalid net.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rcnet::spef::parse;

/// A well-formed multi-net fixture exercising every section the parser
/// knows: header units, name map, connections, ground and coupling caps,
/// resistors. Mutations start from here so they hit deep code paths
/// instead of bouncing off the preamble.
const FIXTURE: &str = r#"*SPEF "IEEE 1481-1998"
*DESIGN "hostile"
*DIVIDER /
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM

*NAME_MAP
*1 blk/net0
*2 U1
*3 U2
*4 blk/net1

*D_NET *1 4.5
*CONN
*I *2:Z O
*I *3:A I
*CAP
1 *1:1 1.5
2 *3:A 1.5
3 *1:1 agg:7 0.25
*RES
1 *2:Z *1:1 12.0
2 *1:1 *3:A 8.0
*END

*D_NET *4 2.0
*CONN
*I U4:Z O
*I U5:B I
*CAP
1 U5:B 2.0
*RES
1 U4:Z U5:B 6.5
*END
"#;

/// Tokens a confused or malicious writer might splice in anywhere.
const HOSTILE_TOKENS: &[&str] = &[
    "*END",
    "*D_NET",
    "*D_NET *99 1e308",
    "*CONN",
    "*CAP",
    "*RES",
    "*NAME_MAP",
    "*T_UNIT 1 XS",
    "*T_UNIT NaN PS",
    "*DELIMITER",
    "*DIVIDER",
    "*I",
    "*I x:Z Q",
    "*P",
    "*9999",
    "1 *9999:1 1.5",
    "1 a b c d e",
    "-1 n:1 -inf",
    "1 n:1 1e999",
    "\u{0}\u{1}\u{2}",
    "\t\t\t",
    "*",
    "**",
    "*I :: O",
    "1 : : 0",
    "//",
];

/// Parse must return (Ok or Err), never panic; an Ok document must be
/// structurally sound enough to walk.
fn assert_total(text: &str) {
    if let Ok(doc) = parse(text) {
        for net in &doc.nets {
            // Walking paths, nodes and couplings must be safe on any
            // net the parser accepts.
            let mut paths = 0usize;
            for p in net.paths() {
                let _ = net.node(p.sink);
                paths += 1;
            }
            assert_eq!(paths, net.paths().len());
            assert!(net.node_count() >= 1);
        }
    }
}

/// Deterministic byte-level mutation of the fixture.
fn mutate_bytes(seed: u64, mutations: usize) -> String {
    let mut rng = TestRng::for_case("spef_mutate_bytes", seed as u32);
    let mut bytes = FIXTURE.as_bytes().to_vec();
    for _ in 0..mutations {
        if bytes.is_empty() {
            break;
        }
        let pos = rng.next_below(bytes.len() as u64) as usize;
        match rng.next_below(4) {
            0 => bytes[pos] = (rng.next_below(256)) as u8,
            1 => {
                bytes.remove(pos);
            }
            2 => bytes.insert(pos, (rng.next_below(128)) as u8),
            _ => bytes.truncate(pos),
        }
    }
    // The parser takes &str; lossy conversion mirrors what a server
    // would do with a request body that is not valid UTF-8.
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Deterministic line-level mutation: duplicate, drop, swap, or splice
/// hostile tokens between lines.
fn mutate_lines(seed: u64, mutations: usize) -> String {
    let mut rng = TestRng::for_case("spef_mutate_lines", seed as u32);
    let mut lines: Vec<String> = FIXTURE.lines().map(str::to_string).collect();
    for _ in 0..mutations {
        if lines.is_empty() {
            lines.push(String::new());
        }
        let pos = rng.next_below(lines.len() as u64) as usize;
        match rng.next_below(4) {
            0 => {
                let l = lines[pos].clone();
                lines.insert(pos, l);
            }
            1 => {
                lines.remove(pos);
            }
            2 => {
                let tok = HOSTILE_TOKENS[rng.next_below(HOSTILE_TOKENS.len() as u64) as usize];
                lines.insert(pos, tok.to_string());
            }
            _ => {
                let other = rng.next_below(lines.len() as u64) as usize;
                lines.swap(pos, other);
            }
        }
    }
    lines.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn byte_mutations_never_panic(seed in 0u64..1_000_000, n in 1usize..24) {
        assert_total(&mutate_bytes(seed, n));
    }

    #[test]
    fn line_mutations_never_panic(seed in 0u64..1_000_000, n in 1usize..16) {
        assert_total(&mutate_lines(seed, n));
    }

    #[test]
    fn truncation_at_any_point_never_panics(frac in 0.0f64..1.0) {
        let cut = (FIXTURE.len() as f64 * frac) as usize;
        let mut cut = cut.min(FIXTURE.len());
        while !FIXTURE.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_total(&FIXTURE[..cut]);
    }

    #[test]
    fn keyword_soup_never_panics(seed in 0u64..1_000_000, len in 1usize..40) {
        let mut rng = TestRng::for_case("spef_soup", seed as u32);
        let mut doc = String::new();
        for _ in 0..len {
            let tok = HOSTILE_TOKENS[rng.next_below(HOSTILE_TOKENS.len() as u64) as usize];
            doc.push_str(tok);
            doc.push(if rng.next_below(4) == 0 { ' ' } else { '\n' });
        }
        assert_total(&doc);
    }
}

#[test]
fn fixture_itself_parses_cleanly() {
    let doc = parse(FIXTURE).expect("fixture is valid SPEF");
    assert_eq!(doc.nets.len(), 2);
    assert_eq!(doc.nets[0].name(), "blk/net0");
    assert_eq!(doc.nets[1].name(), "blk/net1");
}
