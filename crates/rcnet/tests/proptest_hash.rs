//! Property tests for the canonical content hash: insertion order must
//! never matter, and every single-value perturbation must flip the hash.

use proptest::prelude::*;
use rcnet::{content_hash, Farads, Ohms, RcNet, RcNetBuilder};

/// Splitmix64 — a tiny deterministic stream for structure generation so
/// the test owns its randomness (the proptest shim only hands us seeds).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random tree net description: node names/kinds/caps + edges by name.
struct Blueprint {
    nodes: Vec<(String, u8, f64)>, // (name, 0=source 1=sink 2=internal, cap)
    edges: Vec<(String, String, f64)>,
    couplings: Vec<(String, String, f64)>,
}

fn blueprint(seed: u64) -> Blueprint {
    let mut s = seed;
    let n = 3 + (mix(&mut s) % 12) as usize;
    let mut nodes = Vec::with_capacity(n);
    let mut edges = Vec::with_capacity(n - 1);
    let mut couplings = Vec::new();
    for i in 0..n {
        let kind = if i == 0 {
            0
        } else if i == n - 1 || mix(&mut s).is_multiple_of(3) {
            1
        } else {
            2
        };
        let cap = 1e-16 + (mix(&mut s) % 1000) as f64 * 1e-17;
        nodes.push((format!("nd{i}"), kind, cap));
    }
    for i in 1..n {
        let parent = (mix(&mut s) % i as u64) as usize;
        let res = 1.0 + (mix(&mut s) % 500) as f64 * 0.1;
        edges.push((format!("nd{parent}"), format!("nd{i}"), res));
    }
    if mix(&mut s).is_multiple_of(2) {
        let victim = (mix(&mut s) % n as u64) as usize;
        couplings.push((format!("nd{victim}"), "agg:x".to_string(), 0.3e-15));
    }
    Blueprint { nodes, edges, couplings }
}

/// Materializes a blueprint, permuting node/edge insertion order by `perm`.
fn build(bp: &Blueprint, perm: u64) -> RcNet {
    let mut order: Vec<usize> = (0..bp.nodes.len()).collect();
    let mut s = perm;
    for i in (1..order.len()).rev() {
        order.swap(i, (mix(&mut s) % (i as u64 + 1)) as usize);
    }
    let mut b = RcNetBuilder::new("bp");
    for &i in &order {
        let (name, kind, cap) = &bp.nodes[i];
        match kind {
            0 => b.source(name.clone(), Farads(*cap)),
            1 => b.sink(name.clone(), Farads(*cap)),
            _ => b.internal(name.clone(), Farads(*cap)),
        };
    }
    let mut eorder: Vec<usize> = (0..bp.edges.len()).collect();
    for i in (1..eorder.len()).rev() {
        eorder.swap(i, (mix(&mut s) % (i as u64 + 1)) as usize);
    }
    for &i in &eorder {
        let (a, bn, res) = &bp.edges[i];
        let (a, bn) = (b.node_by_name(a).unwrap(), b.node_by_name(bn).unwrap());
        // Endpoint order is electrically meaningless; flip it with the perm.
        if mix(&mut s).is_multiple_of(2) {
            b.resistor(a, bn, Ohms(*res));
        } else {
            b.resistor(bn, a, Ohms(*res));
        }
    }
    for (victim, agg, cap) in &bp.couplings {
        let v = b.node_by_name(victim).unwrap();
        b.coupling(v, agg.clone(), Farads(*cap));
    }
    b.build().expect("blueprint trees are always valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_is_insertion_order_invariant(seed in 0u64..100_000, p1 in any::<u64>(), p2 in any::<u64>()) {
        let bp = blueprint(seed);
        prop_assert_eq!(content_hash(&build(&bp, p1)), content_hash(&build(&bp, p2)));
    }

    #[test]
    fn any_single_value_change_flips_the_hash(seed in 0u64..100_000, which in any::<u64>()) {
        let bp = blueprint(seed);
        let base = content_hash(&build(&bp, 1));
        let mut bp2 = Blueprint {
            nodes: bp.nodes.clone(),
            edges: bp.edges.clone(),
            couplings: bp.couplings.clone(),
        };
        // Perturb exactly one value, chosen by `which`.
        let n_targets = bp2.nodes.len() + bp2.edges.len();
        let t = (which % n_targets as u64) as usize;
        if t < bp2.nodes.len() {
            bp2.nodes[t].2 *= 1.0 + 1e-9;
        } else {
            bp2.edges[t - bp2.nodes.len()].2 *= 1.0 + 1e-9;
        }
        prop_assert_ne!(content_hash(&build(&bp2, 1)), base);
    }
}
