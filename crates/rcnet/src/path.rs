//! Wire-path extraction.
//!
//! A *wire path* (paper Definition 1) runs from the net's source to one
//! target sink. On tree nets the path is unique; on non-tree nets the paper
//! defines it as the resistance-weighted shortest path (§II-B), with the
//! remaining nodes and edges regarded as branches.

use crate::{EdgeId, NodeId, Ohms, RcNet};

/// One source → sink timing path through the RC network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePath {
    /// The target sink.
    pub sink: NodeId,
    /// Visited nodes, ordered source → sink (source and sink included).
    pub nodes: Vec<NodeId>,
    /// Traversed edges, ordered source-side first; `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
}

impl WirePath {
    /// Number of nodes on the path.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the path is degenerate (source == sink; cannot happen on a
    /// validated net, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total resistance along the path.
    pub fn total_res(&self, net: &RcNet) -> Ohms {
        self.edges.iter().map(|&e| net.edge(e).res).sum()
    }

    /// Whether `node` lies on the path.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// Extracts the wire path for every sink of the net, in sink order.
///
/// Uses a single Dijkstra run from the source, which degenerates to plain
/// tree traversal on tree nets.
pub fn extract_paths(net: &RcNet) -> Vec<WirePath> {
    let sp = crate::topology::shortest_paths(net);
    net.sinks()
        .iter()
        .map(|&sink| {
            let (nodes, edges) = sp.path_to(sink);
            WirePath { sink, nodes, edges }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Farads, RcNetBuilder};

    #[test]
    fn tree_paths_are_unique_traversals() {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(1e-15));
        let k1 = b.sink("k1", Farads(1e-15));
        let k2 = b.sink("k2", Farads(1e-15));
        b.resistor(s, m, Ohms(5.0));
        b.resistor(m, k1, Ohms(7.0));
        b.resistor(m, k2, Ohms(9.0));
        let net = b.build().unwrap();

        let paths = net.paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].nodes, vec![s, m, k1]);
        assert_eq!(paths[1].nodes, vec![s, m, k2]);
        assert_eq!(paths[0].total_res(&net), Ohms(12.0));
        assert_eq!(paths[1].total_res(&net), Ohms(14.0));
        assert_eq!(paths[0].edges.len(), paths[0].nodes.len() - 1);
    }

    #[test]
    fn nontree_path_takes_shortest_branch() {
        let mut b = RcNetBuilder::new("d");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(1e-15));
        let c = b.internal("c", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, a, Ohms(100.0));
        b.resistor(a, k, Ohms(100.0));
        b.resistor(s, c, Ohms(1.0));
        b.resistor(c, k, Ohms(1.0));
        let net = b.build().unwrap();

        let p = &net.paths()[0];
        assert_eq!(p.sink, k);
        assert_eq!(p.nodes, vec![s, c, k]);
        assert_eq!(p.total_res(&net), Ohms(2.0));
        assert!(p.contains(c));
        assert!(!p.contains(a));
    }

    #[test]
    fn path_starts_at_source_ends_at_sink() {
        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(3.0));
        let net = b.build().unwrap();
        let p = &net.paths()[0];
        assert_eq!(p.nodes.first(), Some(&s));
        assert_eq!(p.nodes.last(), Some(&k));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
