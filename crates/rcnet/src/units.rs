//! Unit newtypes keeping resistances, capacitances, times and voltages
//! statically distinct (values are stored in SI units).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal, $pretty:ident, $scale:expr, $pretty_suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw SI value.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Larger of the two values.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            #[doc = concat!("Value expressed in ", $pretty_suffix, ".")]
            pub fn $pretty(self) -> f64 {
                self.0 / $scale
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6e} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Resistance in ohms.
    Ohms, "ohm", kilo_ohms, 1e3, "kilo-ohms"
);
unit!(
    /// Capacitance in farads.
    Farads, "F", femto_farads, 1e-15, "femtofarads"
);
unit!(
    /// Time in seconds.
    Seconds, "s", pico_seconds, 1e-12, "picoseconds"
);
unit!(
    /// Voltage in volts.
    Volts, "V", milli_volts, 1e-3, "millivolts"
);

impl Seconds {
    /// Constructs a time from picoseconds.
    pub fn from_ps(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }
}

impl Farads {
    /// Constructs a capacitance from femtofarads.
    pub fn from_ff(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }
}

/// `R * C` is a time constant.
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// `C * R` is a time constant.
impl Mul<Ohms> for Farads {
    type Output = Seconds;
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_time() {
        let tau = Ohms(1000.0) * Farads(1e-12);
        assert!((tau.value() - 1e-9).abs() < 1e-21);
        assert!((tau.pico_seconds() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_works() {
        let a = Ohms(10.0) + Ohms(5.0) - Ohms(3.0);
        assert_eq!(a, Ohms(12.0));
        assert_eq!(a * 2.0, Ohms(24.0));
        assert_eq!(a / 4.0, Ohms(3.0));
        assert_eq!(Ohms(10.0) / Ohms(5.0), 2.0);
        assert_eq!(-Ohms(1.0), Ohms(-1.0));
    }

    #[test]
    fn conversions() {
        assert!((Seconds::from_ps(2.0).value() - 2e-12).abs() < 1e-24);
        assert!((Farads::from_ff(3.0).value() - 3e-15).abs() < 1e-27);
        assert!((Farads(5e-15).femto_farads() - 5.0).abs() < 1e-12);
        assert!((Volts(0.9).milli_volts() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn sum_and_compare() {
        let total: Farads = [Farads(1.0), Farads(2.5)].into_iter().sum();
        assert_eq!(total, Farads(3.5));
        assert!(Ohms(2.0) > Ohms(1.0));
        assert_eq!(Ohms(-2.0).abs(), Ohms(2.0));
        assert_eq!(Ohms(1.0).max(Ohms(4.0)), Ohms(4.0));
    }

    #[test]
    fn display_includes_unit() {
        assert!(format!("{}", Ohms(1.0)).contains("ohm"));
        assert!(format!("{}", Seconds(1.0)).ends_with(" s"));
    }
}
