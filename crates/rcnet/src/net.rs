//! The RC network itself: nodes (capacitances), edges (resistances),
//! coupling capacitors, and the validating builder.

use crate::{Farads, Ohms, RcNetError, WirePath};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (capacitance) within one [`RcNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into [`RcNet::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge (resistance) within one [`RcNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Index into [`RcNet::edges`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Role of a node on the net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The unique driver pin of the net.
    Source,
    /// A load pin; every sink terminates one wire path.
    Sink,
    /// A parasitic-only internal node.
    Internal,
}

/// A node of the RC graph: a named circuit node with its ground capacitance.
#[derive(Debug, Clone, PartialEq)]
pub struct RcNode {
    /// Circuit node name (e.g. `U12:A` or `net5:3`).
    pub name: String,
    /// Role on the net.
    pub kind: NodeKind,
    /// Capacitance to ground.
    pub cap: Farads,
}

/// An edge of the RC graph: a resistance between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcEdge {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Resistance value.
    pub res: Ohms,
}

impl RcEdge {
    /// The endpoint opposite to `n`, or `None` when `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if self.a == n {
            Some(self.b)
        } else if self.b == n {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A coupling capacitor from a net node to a node of another (aggressor) net.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingCap {
    /// Victim-side node.
    pub node: NodeId,
    /// Name of the aggressor-net node on the far side.
    pub aggressor: String,
    /// Coupling capacitance.
    pub cap: Farads,
}

/// A validated parasitic RC network with one driver and one or more sinks.
///
/// Construct via [`RcNetBuilder`] or [`crate::spef::parse`]. The structure is
/// immutable after `build`, so derived data (adjacency lists, wire paths) is
/// computed once and shared.
#[derive(Debug, Clone, PartialEq)]
pub struct RcNet {
    name: String,
    nodes: Vec<RcNode>,
    edges: Vec<RcEdge>,
    couplings: Vec<CouplingCap>,
    source: NodeId,
    sinks: Vec<NodeId>,
    /// adjacency[n] = (neighbor, edge) pairs.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    paths: Vec<WirePath>,
}

impl RcNet {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[RcNode] {
        &self.nodes
    }

    /// All resistive edges, indexable by [`EdgeId::index`].
    pub fn edges(&self) -> &[RcEdge] {
        &self.edges
    }

    /// All coupling capacitors to other nets.
    pub fn couplings(&self) -> &[CouplingCap] {
        &self.couplings
    }

    /// The driver node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The sink nodes, in insertion order.
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of resistive edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// One node by id.
    pub fn node(&self, id: NodeId) -> &RcNode {
        &self.nodes[id.index()]
    }

    /// One edge by id.
    pub fn edge(&self, id: EdgeId) -> &RcEdge {
        &self.edges[id.index()]
    }

    /// Neighbors of `n` as `(neighbor, edge)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[n.index()]
    }

    /// Degree (number of incident resistors) of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// The wire paths from the source to every sink (paper Definition 1),
    /// in sink order. Extracted once at build time; on non-tree nets each
    /// path is the resistance-weighted shortest path.
    pub fn paths(&self) -> &[WirePath] {
        &self.paths
    }

    /// Whether the net is a tree (no resistive loops).
    pub fn is_tree(&self) -> bool {
        self.edges.len() + 1 == self.nodes.len()
    }

    /// Number of independent resistive loops (`|E| - |V| + 1`).
    pub fn loop_count(&self) -> usize {
        self.edges.len() + 1 - self.nodes.len()
    }

    /// Sum of all ground capacitances.
    pub fn total_cap(&self) -> Farads {
        self.nodes.iter().map(|n| n.cap).sum()
    }

    /// Sum of all coupling capacitances.
    pub fn total_coupling_cap(&self) -> Farads {
        self.couplings.iter().map(|c| c.cap).sum()
    }

    /// Sum of all resistances.
    pub fn total_res(&self) -> Ohms {
        self.edges.iter().map(|e| e.res).sum()
    }

    /// Finds a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Iterates over `(NodeId, &RcNode)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &RcNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over `(EdgeId, &RcEdge)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (EdgeId, &RcEdge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }
}

/// Builder assembling and validating an [`RcNet`].
///
/// # Examples
///
/// ```
/// use rcnet::{Farads, Ohms, RcNetBuilder};
///
/// # fn main() -> Result<(), rcnet::RcNetError> {
/// let mut b = RcNetBuilder::new("clk_leaf");
/// let s = b.source("BUF3:Z", Farads(0.8e-15));
/// let t = b.sink("FF7:CK", Farads(1.2e-15));
/// b.resistor(s, t, Ohms(42.0));
/// let net = b.build()?;
/// assert_eq!(net.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetBuilder {
    name: String,
    nodes: Vec<RcNode>,
    edges: Vec<RcEdge>,
    couplings: Vec<CouplingCap>,
    names: HashMap<String, NodeId>,
}

impl RcNetBuilder {
    /// Starts a new builder for a net called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        RcNetBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    fn add_node(&mut self, name: impl Into<String>, kind: NodeKind, cap: Farads) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.names.get(&name) {
            // Re-declaring an existing node refreshes its role/cap; SPEF
            // emits *CONN before *CAP so this upgrade path is required.
            let node = &mut self.nodes[id.index()];
            if kind != NodeKind::Internal {
                node.kind = kind;
            }
            if cap.value() != 0.0 {
                node.cap = cap;
            }
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RcNode { name: name.clone(), kind, cap });
        self.names.insert(name, id);
        id
    }

    /// Adds (or re-labels) the driver node.
    pub fn source(&mut self, name: impl Into<String>, cap: Farads) -> NodeId {
        self.add_node(name, NodeKind::Source, cap)
    }

    /// Adds (or re-labels) a sink node.
    pub fn sink(&mut self, name: impl Into<String>, cap: Farads) -> NodeId {
        self.add_node(name, NodeKind::Sink, cap)
    }

    /// Adds an internal parasitic node.
    pub fn internal(&mut self, name: impl Into<String>, cap: Farads) -> NodeId {
        self.add_node(name, NodeKind::Internal, cap)
    }

    /// Looks up an already-added node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Sets the ground capacitance of an existing node.
    pub fn set_cap(&mut self, node: NodeId, cap: Farads) {
        self.nodes[node.index()].cap = cap;
    }

    /// Promotes an existing node to a sink, adding `pin_cap` to its
    /// ground capacitance (the load pin's input capacitance).
    pub fn promote_to_sink(&mut self, node: NodeId, pin_cap: Farads) {
        let n = &mut self.nodes[node.index()];
        n.kind = NodeKind::Sink;
        n.cap += pin_cap;
    }

    /// Adds a resistor between two nodes.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, res: Ohms) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(RcEdge { a, b, res });
        id
    }

    /// Adds a coupling capacitor from `node` to an aggressor-net node.
    pub fn coupling(&mut self, node: NodeId, aggressor: impl Into<String>, cap: Farads) {
        self.couplings.push(CouplingCap {
            node,
            aggressor: aggressor.into(),
            cap,
        });
    }

    /// Validates and finalizes the net.
    ///
    /// # Errors
    ///
    /// Returns [`RcNetError::InvalidNet`] when the net has no or multiple
    /// sources, no sinks, non-positive resistances, negative capacitances,
    /// self-loop resistors, or is not connected.
    pub fn build(self) -> Result<RcNet, RcNetError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(RcNetError::InvalidNet("net has no nodes".into()));
        }
        let sources: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, nd)| nd.kind == NodeKind::Source)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        if sources.len() != 1 {
            return Err(RcNetError::InvalidNet(format!(
                "net `{}` must have exactly one source, found {}",
                self.name,
                sources.len()
            )));
        }
        let source = sources[0];
        let sinks: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, nd)| nd.kind == NodeKind::Sink)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        if sinks.is_empty() {
            return Err(RcNetError::InvalidNet(format!(
                "net `{}` has no sinks",
                self.name
            )));
        }
        for (i, nd) in self.nodes.iter().enumerate() {
            if nd.cap.value() < 0.0 {
                return Err(RcNetError::InvalidNet(format!(
                    "node {i} (`{}`) has negative capacitance {}",
                    nd.name, nd.cap
                )));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.a == e.b {
                return Err(RcNetError::InvalidNet(format!(
                    "edge {i} is a self-loop on node {}",
                    e.a
                )));
            }
            let positive = e.res.value() > 0.0;
            if !positive {
                return Err(RcNetError::InvalidNet(format!(
                    "edge {i} has non-positive resistance {}",
                    e.res
                )));
            }
        }
        for c in &self.couplings {
            if c.cap.value() < 0.0 {
                return Err(RcNetError::InvalidNet(format!(
                    "coupling cap at node {} is negative",
                    c.node
                )));
            }
        }
        let mut adjacency: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adjacency[e.a.index()].push((e.b, id));
            adjacency[e.b.index()].push((e.a, id));
        }
        // Connectivity from the source.
        let mut seen = vec![false; n];
        let mut stack = vec![source];
        seen[source.index()] = true;
        let mut reached = 1usize;
        while let Some(u) = stack.pop() {
            for &(v, _) in &adjacency[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    reached += 1;
                    stack.push(v);
                }
            }
        }
        if reached != n {
            return Err(RcNetError::InvalidNet(format!(
                "net `{}` is disconnected: only {reached} of {n} nodes reachable from the source",
                self.name
            )));
        }
        let mut net = RcNet {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
            couplings: self.couplings,
            source,
            sinks,
            adjacency,
            paths: Vec::new(),
        };
        net.paths = crate::path::extract_paths(&net);
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> RcNet {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(1e-15));
        let k1 = b.sink("k1", Farads(2e-15));
        let k2 = b.sink("k2", Farads(2e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k1, Ohms(20.0));
        b.resistor(m, k2, Ohms(30.0));
        b.build().unwrap()
    }

    #[test]
    fn builds_and_reports_structure() {
        let net = simple_net();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.edge_count(), 3);
        assert!(net.is_tree());
        assert_eq!(net.loop_count(), 0);
        assert_eq!(net.sinks().len(), 2);
        assert_eq!(net.degree(net.node_by_name("m").unwrap()), 3);
        assert!((net.total_cap().value() - 6e-15).abs() < 1e-27);
        assert_eq!(net.total_res(), Ohms(60.0));
    }

    #[test]
    fn rejects_missing_source() {
        let mut b = RcNetBuilder::new("x");
        let a = b.internal("a", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(a, k, Ohms(1.0));
        assert!(matches!(b.build(), Err(RcNetError::InvalidNet(_))));
    }

    #[test]
    fn rejects_two_sources() {
        let mut b = RcNetBuilder::new("x");
        let s1 = b.source("s1", Farads(1e-15));
        let s2 = b.source("s2", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s1, k, Ohms(1.0));
        b.resistor(s2, k, Ohms(1.0));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_no_sink() {
        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(1e-15));
        b.resistor(s, a, Ohms(1.0));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(1.0));
        b.internal("island", Farads(1e-15));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_self_loop_and_bad_values() {
        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(1.0));
        b.resistor(k, k, Ohms(1.0));
        assert!(b.build().is_err());

        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(0.0));
        assert!(b.build().is_err());

        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(-1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(1.0));
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_name_merges_and_upgrades() {
        let mut b = RcNetBuilder::new("x");
        let a = b.internal("p", Farads(0.0));
        let a2 = b.sink("p", Farads(2e-15));
        assert_eq!(a, a2);
        let s = b.source("s", Farads(1e-15));
        b.resistor(s, a, Ohms(5.0));
        let net = b.build().unwrap();
        assert_eq!(net.node(a).kind, NodeKind::Sink);
        assert_eq!(net.node(a).cap, Farads(2e-15));
    }

    #[test]
    fn nontree_loop_count() {
        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, a, Ohms(1.0));
        b.resistor(a, k, Ohms(1.0));
        b.resistor(s, k, Ohms(1.0));
        let net = b.build().unwrap();
        assert!(!net.is_tree());
        assert_eq!(net.loop_count(), 1);
    }

    #[test]
    fn edge_other_endpoint() {
        let net = simple_net();
        let e = net.edge(EdgeId(0));
        assert_eq!(e.other(e.a), Some(e.b));
        assert_eq!(e.other(e.b), Some(e.a));
        assert_eq!(e.other(NodeId(99)), None);
    }

    #[test]
    fn coupling_caps_tracked() {
        let mut b = RcNetBuilder::new("x");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(1.0));
        b.coupling(k, "agg:3", Farads(0.5e-15));
        let net = b.build().unwrap();
        assert_eq!(net.couplings().len(), 1);
        assert_eq!(net.total_coupling_cap(), Farads(0.5e-15));
    }
}
