//! Topology queries on an [`RcNet`]: traversal orders, shortest paths,
//! cycle detection, and tree orientation.

use crate::{EdgeId, NodeId, Ohms, RcNet};
use std::collections::BinaryHeap;

/// Breadth-first order of all nodes starting from the source.
pub fn bfs_order(net: &RcNet) -> Vec<NodeId> {
    let n = net.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(net.source());
    seen[net.source().index()] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in net.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Result of a single-source shortest-path run (weights = resistance).
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Total path resistance from the source to each node.
    pub dist: Vec<Ohms>,
    /// For each node, the `(parent, edge)` on its shortest path;
    /// `None` for the source.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Reconstructs the node/edge sequence from the source to `target`.
    /// Nodes are ordered source → target.
    pub fn path_to(&self, target: NodeId) -> (Vec<NodeId>, Vec<EdgeId>) {
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.parent[cur.index()] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        (nodes, edges)
    }
}

/// Dijkstra from the net source with resistance edge weights.
///
/// Used to define wire paths on non-tree nets ("the wire path is the
/// shortest path from the source to the target sink", paper §II-B).
pub fn shortest_paths(net: &RcNet) -> ShortestPaths {
    let n = net.node_count();
    let mut dist = vec![Ohms(f64::INFINITY); n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut done = vec![false; n];
    dist[net.source().index()] = Ohms(0.0);

    // Max-heap on reversed order => min-heap on distance.
    #[derive(PartialEq)]
    struct Entry(f64, NodeId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Entry(0.0, net.source()));
    while let Some(Entry(d, u)) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for &(v, e) in net.neighbors(u) {
            let nd = d + net.edge(e).res.value();
            if nd < dist[v.index()].value() {
                dist[v.index()] = Ohms(nd);
                parent[v.index()] = Some((u, e));
                heap.push(Entry(nd, v));
            }
        }
    }
    ShortestPaths { dist, parent }
}

/// A tree orientation of the net rooted at the source.
///
/// On a tree net this covers every edge. On a non-tree net it is the
/// shortest-path tree; the remaining edges are returned as `chords`
/// (each chord closes one independent loop).
#[derive(Debug, Clone)]
pub struct Orientation {
    /// `(parent, connecting edge)` per node; `None` for the source.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
    /// Children per node, in discovery order.
    pub children: Vec<Vec<(NodeId, EdgeId)>>,
    /// Nodes in topological (parent-before-child) order; starts at the source.
    pub order: Vec<NodeId>,
    /// Edges not in the tree (loop-closing chords).
    pub chords: Vec<EdgeId>,
}

impl Orientation {
    /// Reconstructs the tree path from the root to `target` as
    /// `(nodes, edges)`, nodes ordered root → target.
    pub fn path_to(&self, target: NodeId) -> (Vec<NodeId>, Vec<EdgeId>) {
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.parent[cur.index()] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        (nodes, edges)
    }
}

/// Orients the net as a depth-first spanning tree rooted at the source —
/// a crude loop-breaking that keeps whichever edge is discovered first,
/// as naive non-tree-to-tree conversions do.
pub fn orient_dfs(net: &RcNet) -> Orientation {
    let n = net.node_count();
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut children: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
    let mut tree_edge = vec![false; net.edge_count()];
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![net.source()];
    seen[net.source().index()] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &(v, e) in net.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some((u, e));
                children[u.index()].push((v, e));
                tree_edge[e.index()] = true;
                stack.push(v);
            }
        }
    }
    // DFS discovery order is not parent-before-child when revisiting the
    // stack; rebuild a BFS order over the tree children.
    let mut topo = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(net.source());
    while let Some(u) = queue.pop_front() {
        topo.push(u);
        for &(v, _) in &children[u.index()] {
            queue.push_back(v);
        }
    }
    let chords = (0..net.edge_count())
        .filter(|&i| !tree_edge[i])
        .map(|i| EdgeId(i as u32))
        .collect();
    Orientation {
        parent,
        children,
        order: topo,
        chords,
    }
}

/// Orients the net as a shortest-path tree rooted at the source.
pub fn orient(net: &RcNet) -> Orientation {
    let sp = shortest_paths(net);
    let n = net.node_count();
    let mut children: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
    let mut tree_edge = vec![false; net.edge_count()];
    for (i, p) in sp.parent.iter().enumerate() {
        if let Some((parent, e)) = p {
            children[parent.index()].push((NodeId(i as u32), *e));
            tree_edge[e.index()] = true;
        }
    }
    // Parent-before-child order via BFS over tree children.
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(net.source());
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in &children[u.index()] {
            queue.push_back(v);
        }
    }
    let chords = (0..net.edge_count())
        .filter(|&i| !tree_edge[i])
        .map(|i| EdgeId(i as u32))
        .collect();
    Orientation {
        parent: sp.parent,
        children,
        order,
        chords,
    }
}

/// Finds the cycle closed by adding `chord` to the orientation's tree:
/// returns the cycle's edges (chord included).
pub fn cycle_of_chord(net: &RcNet, orientation: &Orientation, chord: EdgeId) -> Vec<EdgeId> {
    let e = net.edge(chord);
    // Walk both endpoints up to their common ancestor.
    let depth = |mut n: NodeId| -> usize {
        let mut d = 0;
        while let Some((p, _)) = orientation.parent[n.index()] {
            n = p;
            d += 1;
        }
        d
    };
    let (mut u, mut v) = (e.a, e.b);
    let (mut du, mut dv) = (depth(u), depth(v));
    let mut cycle = vec![chord];
    while du > dv {
        let (p, pe) = orientation.parent[u.index()].expect("depth > 0 has parent");
        cycle.push(pe);
        u = p;
        du -= 1;
    }
    while dv > du {
        let (p, pe) = orientation.parent[v.index()].expect("depth > 0 has parent");
        cycle.push(pe);
        v = p;
        dv -= 1;
    }
    while u != v {
        let (pu, eu) = orientation.parent[u.index()].expect("non-root");
        let (pv, ev) = orientation.parent[v.index()].expect("non-root");
        cycle.push(eu);
        cycle.push(ev);
        u = pu;
        v = pv;
    }
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Farads, RcNetBuilder};

    fn diamond() -> RcNet {
        // s - a - k and s - b - k: one loop.
        let mut b = RcNetBuilder::new("d");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(1e-15));
        let bb = b.internal("b", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, a, Ohms(10.0));
        b.resistor(a, k, Ohms(10.0));
        b.resistor(s, bb, Ohms(1.0));
        b.resistor(bb, k, Ohms(1.0));
        b.build().unwrap()
    }

    #[test]
    fn bfs_starts_at_source_and_covers_all() {
        let net = diamond();
        let order = bfs_order(&net);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], net.source());
    }

    #[test]
    fn dijkstra_prefers_low_resistance_branch() {
        let net = diamond();
        let sp = shortest_paths(&net);
        let k = net.node_by_name("k").unwrap();
        assert!((sp.dist[k.index()].value() - 2.0).abs() < 1e-12);
        let (nodes, edges) = sp.path_to(k);
        assert_eq!(nodes.len(), 3);
        assert_eq!(edges.len(), 2);
        let b = net.node_by_name("b").unwrap();
        assert_eq!(nodes[1], b);
    }

    #[test]
    fn orientation_of_tree_has_no_chords() {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, m, Ohms(1.0));
        b.resistor(m, k, Ohms(1.0));
        let net = b.build().unwrap();
        let o = orient(&net);
        assert!(o.chords.is_empty());
        assert_eq!(o.order[0], net.source());
        assert_eq!(o.order.len(), 3);
    }

    #[test]
    fn orientation_of_diamond_has_one_chord() {
        let net = diamond();
        let o = orient(&net);
        assert_eq!(o.chords.len(), 1);
        // Every non-source node has a parent.
        for (i, p) in o.parent.iter().enumerate() {
            if NodeId(i as u32) == net.source() {
                assert!(p.is_none());
            } else {
                assert!(p.is_some());
            }
        }
    }

    #[test]
    fn chord_cycle_covers_loop() {
        let net = diamond();
        let o = orient(&net);
        let cycle = cycle_of_chord(&net, &o, o.chords[0]);
        // Diamond loop has 4 edges.
        assert_eq!(cycle.len(), 4);
        let mut sorted: Vec<usize> = cycle.iter().map(|e| e.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "cycle edges must be distinct");
    }

    #[test]
    fn dfs_orientation_spans_and_may_differ_from_shortest() {
        let net = diamond();
        let o = orient_dfs(&net);
        assert_eq!(o.chords.len(), 1);
        assert_eq!(o.order.len(), 4);
        assert_eq!(o.order[0], net.source());
        // Every non-source node has a parent; the spanning tree covers all.
        for (i, p) in o.parent.iter().enumerate() {
            assert_eq!(p.is_none(), NodeId(i as u32) == net.source());
        }
        // Tree path reconstruction reaches the sink through tree edges only.
        let k = net.node_by_name("k").unwrap();
        let (nodes, edges) = o.path_to(k);
        assert_eq!(nodes.first(), Some(&net.source()));
        assert_eq!(nodes.last(), Some(&k));
        assert_eq!(edges.len(), nodes.len() - 1);
    }

    #[test]
    fn dfs_orientation_on_tree_matches_structure() {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, m, Ohms(1.0));
        b.resistor(m, k, Ohms(1.0));
        let net = b.build().unwrap();
        let o = orient_dfs(&net);
        assert!(o.chords.is_empty());
        let (nodes, _) = o.path_to(k);
        assert_eq!(nodes, vec![s, m, k]);
    }

    #[test]
    fn shortest_path_to_source_is_empty() {
        let net = diamond();
        let sp = shortest_paths(&net);
        let (nodes, edges) = sp.path_to(net.source());
        assert_eq!(nodes, vec![net.source()]);
        assert!(edges.is_empty());
    }
}
