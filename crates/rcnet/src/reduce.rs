//! Parasitic network reduction.
//!
//! Extraction output is often heavily over-segmented: long routes appear
//! as chains of tiny RC segments. [`merge_series`] collapses internal
//! degree-2 nodes — the classic first step of TICER-style reduction —
//! preserving total resistance exactly and redistributing the eliminated
//! node's capacitance to its neighbors, which keeps the Elmore delay of
//! every remaining node within the standard reduction error bound.

use crate::{Farads, NodeKind, RcNet, RcNetBuilder, RcNetError};

/// Options for [`merge_series`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReduceOptions {
    /// Only merge nodes whose ground capacitance is below this bound
    /// (`None` merges every eligible node).
    pub max_merged_cap: Option<Farads>,
}

/// Result of a reduction pass.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// The reduced network.
    pub net: RcNet,
    /// Number of nodes eliminated.
    pub merged: usize,
}

/// Collapses internal degree-2 nodes: `a -R1- x -R2- b` with `x` internal
/// and uncoupled becomes `a -(R1+R2)- b`, with `C_x` split equally onto
/// `a` and `b`.
///
/// Sources, sinks, coupled nodes and branch points are never eliminated,
/// so the wire-path structure (source → sink sets) is preserved exactly.
///
/// # Errors
///
/// Propagates [`RcNetError::InvalidNet`] from rebuilding (cannot happen
/// for a valid input net).
pub fn merge_series(net: &RcNet, opts: ReduceOptions) -> Result<Reduced, RcNetError> {
    let n = net.node_count();
    let mut keep = vec![true; n];
    let coupled: std::collections::HashSet<usize> =
        net.couplings().iter().map(|c| c.node.index()).collect();

    // Mark eligible nodes. Merging changes neighbor degrees only through
    // the replaced edges (2 -> 1 per merge), so a single marking pass over
    // the original topology is conservative and safe.
    for (id, node) in net.iter_nodes() {
        let i = id.index();
        let eligible = node.kind == NodeKind::Internal
            && net.degree(id) == 2
            && !coupled.contains(&i)
            && opts
                .max_merged_cap
                .is_none_or(|lim| node.cap.value() <= lim.value());
        if eligible {
            keep[i] = false;
        }
    }

    // Union-find-free approach: walk chains. For every eliminated run of
    // nodes between two kept endpoints, emit one resistor with the summed
    // resistance and push half of each eliminated cap to each endpoint.
    let mut extra_cap = vec![0.0f64; n];
    let mut new_edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut edge_done = vec![false; net.edge_count()];

    for (eid, e) in net.iter_edges() {
        if edge_done[eid.index()] {
            continue;
        }
        let (a, b) = (e.a.index(), e.b.index());
        if !keep[a] && !keep[b] {
            continue; // handled when walking from a kept endpoint
        }
        if keep[a] && keep[b] {
            edge_done[eid.index()] = true;
            new_edges.push((a, b, e.res.value()));
            continue;
        }
        // Walk from the kept endpoint through the eliminated chain,
        // accumulating the chain's resistance and capacitance; the cap is
        // split evenly between the two kept endpoints at the end.
        let (start, mut cur) = if keep[a] { (a, b) } else { (b, a) };
        edge_done[eid.index()] = true;
        let mut total_res = e.res.value();
        let mut chain_cap = 0.0f64;
        loop {
            // `cur` is eliminated: degree 2, so at most one unvisited edge.
            let id = crate::NodeId(cur as u32);
            chain_cap += net.node(id).cap.value();
            let mut next = None;
            for &(nb, ne) in net.neighbors(id) {
                if !edge_done[ne.index()] {
                    next = Some((nb.index(), ne.index()));
                }
            }
            let Some((nxt, ne)) = next else {
                // The chain dead-ends in a stub: all of its capacitance
                // lands on the single kept endpoint.
                extra_cap[start] += chain_cap;
                break;
            };
            edge_done[ne] = true;
            total_res += net.edge(crate::EdgeId(ne as u32)).res.value();
            if keep[nxt] {
                new_edges.push((start, nxt, total_res));
                extra_cap[start] += chain_cap / 2.0;
                extra_cap[nxt] += chain_cap / 2.0;
                break;
            }
            cur = nxt;
        }
    }

    // Rebuild.
    let mut b = RcNetBuilder::new(net.name());
    let mut map = vec![None; n];
    let mut merged = 0usize;
    for (id, node) in net.iter_nodes() {
        let i = id.index();
        if !keep[i] {
            merged += 1;
            continue;
        }
        let cap = Farads(node.cap.value() + extra_cap[i]);
        let new_id = match node.kind {
            NodeKind::Source => b.source(node.name.clone(), cap),
            NodeKind::Sink => b.sink(node.name.clone(), cap),
            NodeKind::Internal => b.internal(node.name.clone(), cap),
        };
        map[i] = Some(new_id);
    }
    for (a, c, r) in new_edges {
        let (Some(na), Some(nc)) = (map[a], map[c]) else {
            continue;
        };
        b.resistor(na, nc, crate::Ohms(r));
    }
    for cpl in net.couplings() {
        if let Some(nid) = map[cpl.node.index()] {
            b.coupling(nid, cpl.aggressor.clone(), cpl.cap);
        }
    }
    Ok(Reduced {
        net: b.build()?,
        merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ohms, RcNetBuilder};

    fn chain(n_internal: usize) -> RcNet {
        let mut b = RcNetBuilder::new("c");
        let mut prev = b.source("s", Farads::from_ff(1.0));
        for i in 0..n_internal {
            let m = b.internal(format!("m{i}"), Farads::from_ff(1.0));
            b.resistor(prev, m, Ohms(10.0));
            prev = m;
        }
        let k = b.sink("k", Farads::from_ff(2.0));
        b.resistor(prev, k, Ohms(10.0));
        b.build().unwrap()
    }

    #[test]
    fn chain_collapses_to_two_nodes() {
        let net = chain(5);
        let r = merge_series(&net, ReduceOptions::default()).unwrap();
        assert_eq!(r.merged, 5);
        assert_eq!(r.net.node_count(), 2);
        assert_eq!(r.net.edge_count(), 1);
        // Total R and C preserved exactly.
        assert!((r.net.total_res().value() - net.total_res().value()).abs() < 1e-9);
        assert!((r.net.total_cap().value() - net.total_cap().value()).abs() < 1e-27);
        // Path structure preserved.
        assert_eq!(r.net.paths().len(), net.paths().len());
    }

    #[test]
    fn branch_points_survive() {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads::from_ff(1.0));
        let m1 = b.internal("m1", Farads::from_ff(1.0));
        let j = b.internal("j", Farads::from_ff(1.0)); // branch point, degree 3
        let m2 = b.internal("m2", Farads::from_ff(1.0));
        let k1 = b.sink("k1", Farads::from_ff(1.0));
        let k2 = b.sink("k2", Farads::from_ff(1.0));
        b.resistor(s, m1, Ohms(10.0));
        b.resistor(m1, j, Ohms(10.0));
        b.resistor(j, m2, Ohms(10.0));
        b.resistor(m2, k1, Ohms(10.0));
        b.resistor(j, k2, Ohms(10.0));
        let net = b.build().unwrap();

        let r = merge_series(&net, ReduceOptions::default()).unwrap();
        // m1 and m2 go; s, j, k1, k2 stay.
        assert_eq!(r.merged, 2);
        assert_eq!(r.net.node_count(), 4);
        assert!(r.net.node_by_name("j").is_some());
        assert_eq!(r.net.sinks().len(), 2);
    }

    #[test]
    fn coupled_nodes_are_kept() {
        let mut b = RcNetBuilder::new("c");
        let s = b.source("s", Farads::from_ff(1.0));
        let m = b.internal("m", Farads::from_ff(1.0));
        let k = b.sink("k", Farads::from_ff(1.0));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k, Ohms(10.0));
        b.coupling(m, "agg:1", Farads::from_ff(0.5));
        let net = b.build().unwrap();
        let r = merge_series(&net, ReduceOptions::default()).unwrap();
        assert_eq!(r.merged, 0);
        assert_eq!(r.net.couplings().len(), 1);
    }

    #[test]
    fn cap_bound_limits_merging() {
        let net = chain(3);
        let r = merge_series(
            &net,
            ReduceOptions {
                max_merged_cap: Some(Farads::from_ff(0.5)),
            },
        )
        .unwrap();
        // All internal caps are 1 fF > 0.5 fF bound: nothing merges.
        assert_eq!(r.merged, 0);
        assert_eq!(r.net.node_count(), net.node_count());
    }

    #[test]
    fn elmore_error_is_bounded() {
        // Reduction redistributes caps; sink Elmore delay must stay within
        // the half-segment error bound (well under 20% on a uniform chain).
        let net = chain(8);
        let r = merge_series(&net, ReduceOptions::default()).unwrap();
        let full = elmore_of_sink(&net);
        let red = elmore_of_sink(&r.net);
        assert!(
            (full - red).abs() < 0.2 * full,
            "elmore {full} vs reduced {red}"
        );
    }

    fn elmore_of_sink(net: &RcNet) -> f64 {
        // Local tree-walk Elmore (avoids a dev-dependency on `elmore`).
        let o = crate::topology::orient(net);
        let mut down: Vec<f64> = net.nodes().iter().map(|n| n.cap.value()).collect();
        for &node in o.order.iter().rev() {
            if let Some((p, _)) = o.parent[node.index()] {
                down[p.index()] += down[node.index()];
            }
        }
        let sink = net.sinks()[0];
        let (nodes, edges) = o.path_to(sink);
        nodes[1..]
            .iter()
            .zip(edges)
            .map(|(n, e)| net.edge(e).res.value() * down[n.index()])
            .sum()
    }

    #[test]
    fn generated_nets_round_trip_through_reduction() {
        // Reduction must keep every generated net valid with identical
        // source/sink naming.
        let mut bld = RcNetBuilder::new("g");
        let s = bld.source("s", Farads::from_ff(0.5));
        let mut prev = s;
        for i in 0..10 {
            let m = bld.internal(format!("seg{i}"), Farads::from_ff(0.4));
            bld.resistor(prev, m, Ohms(7.0));
            prev = m;
        }
        let k1 = bld.sink("k1", Farads::from_ff(1.0));
        bld.resistor(prev, k1, Ohms(7.0));
        let k2 = bld.sink("k2", Farads::from_ff(1.0));
        bld.resistor(s, k2, Ohms(3.0));
        let net = bld.build().unwrap();

        let r = merge_series(&net, ReduceOptions::default()).unwrap();
        assert!(r.merged >= 9);
        assert_eq!(r.net.sinks().len(), 2);
        assert!(r.net.node_by_name("s").is_some());
        assert!(r.net.node_by_name("k1").is_some());
        assert!(r.net.node_by_name("k2").is_some());
    }
}
