//! Parasitic RC network model for wire timing estimation.
//!
//! A routed net's parasitics form an *RC graph* `G = (V, E, P)` (paper §II-B):
//! every node carries a ground capacitance, every edge is a resistance, and
//! every *wire path* in `P` runs from the unique driver (source) to one of
//! the sinks. This crate provides:
//!
//! * [`RcNet`] / [`RcNetBuilder`] — the network itself, with validation;
//! * [`topology`] — tree/loop classification, BFS, resistance-weighted
//!   shortest paths (Dijkstra);
//! * [`path`] — wire-path extraction (tree traversal, or shortest path on
//!   non-tree nets per Definition 1 of the paper);
//! * [`spef`] — a from-scratch SPEF (IEEE 1481) subset parser and writer so
//!   externally extracted parasitics can be ingested and round-tripped;
//! * [`reduce`] — series-merge parasitic reduction (TICER-style first
//!   pass) preserving path structure and total R/C.
//!
//! # Examples
//!
//! ```
//! use rcnet::{Farads, Ohms, RcNetBuilder};
//!
//! # fn main() -> Result<(), rcnet::RcNetError> {
//! let mut b = RcNetBuilder::new("net0");
//! let s = b.source("drv:Z", Farads(1e-15));
//! let m = b.internal("net0:1", Farads(2e-15));
//! let k = b.sink("load:A", Farads(3e-15));
//! b.resistor(s, m, Ohms(10.0));
//! b.resistor(m, k, Ohms(20.0));
//! let net = b.build()?;
//! assert!(net.is_tree());
//! assert_eq!(net.paths().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod hash;
pub mod net;
pub mod path;
pub mod reduce;
pub mod spef;
pub mod topology;
mod units;

pub use hash::{content_hash, Fnv1a};
pub use net::{CouplingCap, EdgeId, NodeId, NodeKind, RcEdge, RcNet, RcNetBuilder, RcNode};
pub use path::WirePath;
pub use units::{Farads, Ohms, Seconds, Volts};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing RC networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RcNetError {
    /// The net failed structural validation (message explains the violation).
    InvalidNet(String),
    /// A SPEF document could not be parsed; carries line number and message.
    SpefParse {
        /// 1-based line where the parse failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// I/O failure while reading or writing SPEF.
    Io(String),
}

impl fmt::Display for RcNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcNetError::InvalidNet(msg) => write!(f, "invalid RC net: {msg}"),
            RcNetError::SpefParse { line, message } => {
                write!(f, "SPEF parse error at line {line}: {message}")
            }
            RcNetError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl Error for RcNetError {}

impl From<std::io::Error> for RcNetError {
    fn from(e: std::io::Error) -> Self {
        RcNetError::Io(e.to_string())
    }
}
