//! Canonical 64-bit content hashing of RC networks.
//!
//! Incremental timing needs a stable identity for "this exact net": two
//! nets with the same nodes, resistances, capacitances and coupling caps
//! must hash identically *regardless of the order the builder saw them
//! in*, and any change to a value or to the topology must flip the hash.
//! That identity keys the ECO prediction cache, so the canonicalization
//! here is load-bearing: a false collision would serve a stale timing
//! estimate for a physically different net.
//!
//! The scheme is FNV-1a over a normalized traversal:
//!
//! 1. nodes are visited in lexicographic *name* order (names are the
//!    stable handle across rebuilds; [`crate::net::NodeId`]s are not),
//!    hashing name, kind and `cap.to_bits()`;
//! 2. edges are re-expressed as `(min_rank, max_rank, res)` over the
//!    name-order ranks, sorted, then hashed;
//! 3. coupling caps are re-expressed as `(victim_rank, aggressor, cap)`,
//!    sorted, then hashed.
//!
//! The net *name* is deliberately excluded: the hash addresses content,
//! so a renamed but electrically identical net reuses cached work.

use crate::net::{NodeKind, RcNet};

/// Incremental FNV-1a (64-bit) hasher.
///
/// Exposed so downstream crates (the ECO engine hashes driver/load
/// context alongside the net) can extend a net hash with more fields
/// using the same primitive.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by exact bit pattern; no rounding, so any value
    /// change (however small) changes the hash.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a length-prefixed string (prefix prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn kind_tag(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Source => 1,
        NodeKind::Sink => 2,
        NodeKind::Internal => 3,
    }
}

/// Canonical content hash of a net's topology and parasitics.
///
/// Stable across builder insertion order and node-id assignment; changes
/// whenever a node name/kind/cap, an edge or its resistance, or a
/// coupling cap changes. The net name is *not* hashed (see module docs).
pub fn content_hash(net: &RcNet) -> u64 {
    // Rank nodes by name. Builder semantics guarantee unique names, so
    // the order (and therefore the hash) is total and deterministic.
    let mut order: Vec<usize> = (0..net.node_count()).collect();
    order.sort_by(|&a, &b| net.nodes()[a].name.cmp(&net.nodes()[b].name));
    let mut rank = vec![0u32; net.node_count()];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r as u32;
    }

    let mut h = Fnv1a::new();
    h.write(b"rcnet.content.v1");
    h.write_u64(net.node_count() as u64);
    h.write_u64(net.edge_count() as u64);
    h.write_u64(net.couplings().len() as u64);

    for &i in &order {
        let n = &net.nodes()[i];
        h.write_str(&n.name);
        h.write(&[kind_tag(n.kind)]);
        h.write_f64(n.cap.value());
    }

    let mut edges: Vec<(u32, u32, u64)> = net
        .edges()
        .iter()
        .map(|e| {
            let (ra, rb) = (rank[e.a.index()], rank[e.b.index()]);
            (ra.min(rb), ra.max(rb), e.res.value().to_bits())
        })
        .collect();
    edges.sort_unstable();
    for (a, b, res) in edges {
        h.write_u64(u64::from(a)).write_u64(u64::from(b)).write_u64(res);
    }

    let mut couplings: Vec<(u32, &str, u64)> = net
        .couplings()
        .iter()
        .map(|c| (rank[c.node.index()], c.aggressor.as_str(), c.cap.value().to_bits()))
        .collect();
    couplings.sort_unstable();
    for (r, aggressor, cap) in couplings {
        h.write_u64(u64::from(r)).write_str(aggressor).write_u64(cap);
    }

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Farads, Ohms, RcNetBuilder};

    /// A 4-node tree built with nodes/edges declared in `forward` or
    /// reversed order; electrically identical either way.
    fn star(forward: bool) -> RcNet {
        let mut b = RcNetBuilder::new(if forward { "a" } else { "b" });
        if forward {
            let s = b.source("drv:Z", Farads(1e-15));
            let m = b.internal("n:1", Farads(2e-15));
            let k1 = b.sink("u1:A", Farads(3e-15));
            let k2 = b.sink("u2:A", Farads(4e-15));
            b.resistor(s, m, Ohms(10.0));
            b.resistor(m, k1, Ohms(20.0));
            b.resistor(m, k2, Ohms(30.0));
            b.coupling(k1, "agg:7", Farads(0.5e-15));
        } else {
            let k2 = b.sink("u2:A", Farads(4e-15));
            let k1 = b.sink("u1:A", Farads(3e-15));
            let m = b.internal("n:1", Farads(2e-15));
            let s = b.source("drv:Z", Farads(1e-15));
            b.resistor(k2, m, Ohms(30.0));
            b.resistor(k1, m, Ohms(20.0));
            b.resistor(m, s, Ohms(10.0));
            b.coupling(k1, "agg:7", Farads(0.5e-15));
        }
        b.build().unwrap()
    }

    #[test]
    fn insertion_order_and_name_do_not_matter() {
        assert_eq!(content_hash(&star(true)), content_hash(&star(false)));
    }

    #[test]
    fn value_changes_flip_the_hash() {
        let base = content_hash(&star(true));

        let mut b = RcNetBuilder::new("a");
        let s = b.source("drv:Z", Farads(1e-15));
        let m = b.internal("n:1", Farads(2e-15));
        let k1 = b.sink("u1:A", Farads(3e-15));
        let k2 = b.sink("u2:A", Farads(4e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k1, Ohms(20.0));
        b.resistor(m, k2, Ohms(30.000001)); // one resistor nudged
        b.coupling(k1, "agg:7", Farads(0.5e-15));
        assert_ne!(content_hash(&b.build().unwrap()), base);

        let mut b = RcNetBuilder::new("a");
        let s = b.source("drv:Z", Farads(1e-15));
        let m = b.internal("n:1", Farads(2.0000001e-15)); // one cap nudged
        let k1 = b.sink("u1:A", Farads(3e-15));
        let k2 = b.sink("u2:A", Farads(4e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k1, Ohms(20.0));
        b.resistor(m, k2, Ohms(30.0));
        b.coupling(k1, "agg:7", Farads(0.5e-15));
        assert_ne!(content_hash(&b.build().unwrap()), base);
    }

    #[test]
    fn topology_changes_flip_the_hash() {
        let base = content_hash(&star(true));

        // Same nodes, different wiring: chain instead of star.
        let mut b = RcNetBuilder::new("a");
        let s = b.source("drv:Z", Farads(1e-15));
        let m = b.internal("n:1", Farads(2e-15));
        let k1 = b.sink("u1:A", Farads(3e-15));
        let k2 = b.sink("u2:A", Farads(4e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k1, Ohms(20.0));
        b.resistor(k1, k2, Ohms(30.0));
        b.coupling(k1, "agg:7", Farads(0.5e-15));
        assert_ne!(content_hash(&b.build().unwrap()), base);

        // Dropping the coupling cap also flips it.
        let mut b = RcNetBuilder::new("a");
        let s = b.source("drv:Z", Farads(1e-15));
        let m = b.internal("n:1", Farads(2e-15));
        let k1 = b.sink("u1:A", Farads(3e-15));
        let k2 = b.sink("u2:A", Farads(4e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k1, Ohms(20.0));
        b.resistor(m, k2, Ohms(30.0));
        assert_ne!(content_hash(&b.build().unwrap()), base);
    }

    #[test]
    fn kind_changes_flip_the_hash() {
        // Promote the internal node to a sink: same values, new role.
        let mut b = RcNetBuilder::new("a");
        let s = b.source("drv:Z", Farads(1e-15));
        let m = b.sink("n:1", Farads(2e-15));
        let k1 = b.sink("u1:A", Farads(3e-15));
        let k2 = b.sink("u2:A", Farads(4e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k1, Ohms(20.0));
        b.resistor(m, k2, Ohms(30.0));
        b.coupling(k1, "agg:7", Farads(0.5e-15));
        assert_ne!(content_hash(&b.build().unwrap()), content_hash(&star(true)));
    }

    #[test]
    fn fnv_primitive_is_stable() {
        // Pin the primitive so checkpointed caches stay valid across
        // refactors: FNV-1a of "a" is a published constant.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
