//! Line-oriented SPEF subset parser.

use crate::{Farads, Ohms, RcNet, RcNetBuilder, RcNetError};
use std::collections::HashMap;

/// Header fields of a SPEF document that affect interpretation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpefHeader {
    /// Design name from `*DESIGN`.
    pub design: String,
    /// Hierarchy divider character from `*DIVIDER`.
    pub divider: char,
    /// Pin delimiter character from `*DELIMITER`.
    pub delimiter: char,
    /// Multiplier converting file time values to seconds.
    pub time_scale: f64,
    /// Multiplier converting file capacitance values to farads.
    pub cap_scale: f64,
    /// Multiplier converting file resistance values to ohms.
    pub res_scale: f64,
}

impl Default for SpefHeader {
    fn default() -> Self {
        SpefHeader {
            design: String::new(),
            divider: '/',
            delimiter: ':',
            time_scale: 1e-12,
            cap_scale: 1e-15,
            res_scale: 1.0,
        }
    }
}

/// A parsed SPEF document: the header plus one validated [`RcNet`] per
/// `*D_NET` section.
#[derive(Debug, Clone)]
pub struct SpefDocument {
    /// Interpreted header fields.
    pub header: SpefHeader,
    /// Parasitic networks in file order.
    pub nets: Vec<RcNet>,
}

fn err(line: usize, message: impl Into<String>) -> RcNetError {
    RcNetError::SpefParse {
        line,
        message: message.into(),
    }
}

fn unit_scale(line_no: usize, value: &str, unit: &str, kind: char) -> Result<f64, RcNetError> {
    let v: f64 = value
        .parse()
        .map_err(|_| err(line_no, format!("bad unit multiplier `{value}`")))?;
    let base = match (kind, unit.to_ascii_uppercase().as_str()) {
        ('t', "S") => 1.0,
        ('t', "MS") => 1e-3,
        ('t', "US") => 1e-6,
        ('t', "NS") => 1e-9,
        ('t', "PS") => 1e-12,
        ('c', "F") => 1.0,
        ('c', "PF") => 1e-12,
        ('c', "FF") => 1e-15,
        ('r', "OHM") => 1.0,
        ('r', "KOHM") => 1e3,
        _ => return Err(err(line_no, format!("unsupported unit `{unit}`"))),
    };
    Ok(v * base)
}

/// Resolves `*<idx>` name-map references inside a node token. Handles the
/// delimiter form `*12:3` (mapped name plus pin/sub-node suffix).
fn resolve(
    token: &str,
    map: &HashMap<u64, String>,
    delimiter: char,
    line_no: usize,
) -> Result<String, RcNetError> {
    if let Some(rest) = token.strip_prefix('*') {
        let (idx_str, suffix) = match rest.find(delimiter) {
            Some(pos) => (&rest[..pos], &rest[pos..]),
            None => (rest, ""),
        };
        let idx: u64 = idx_str
            .parse()
            .map_err(|_| err(line_no, format!("bad name-map reference `{token}`")))?;
        let name = map
            .get(&idx)
            .ok_or_else(|| err(line_no, format!("unknown name-map index *{idx}")))?;
        Ok(format!("{name}{suffix}"))
    } else {
        Ok(token.to_string())
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Section {
    Preamble,
    NameMap,
    NetConn,
    NetCap,
    NetRes,
}

/// Parses a SPEF document from text.
///
/// Supports the header, `*NAME_MAP`, and `*D_NET` sections with `*CONN`,
/// `*CAP` (ground and coupling) and `*RES`. `//` comments and blank lines
/// are skipped anywhere.
///
/// # Errors
///
/// Returns [`RcNetError::SpefParse`] with a line number on malformed input,
/// and [`RcNetError::InvalidNet`] when a `*D_NET` section fails RC-net
/// validation (e.g. no driver connection).
pub fn parse(text: &str) -> Result<SpefDocument, RcNetError> {
    let _span = obs::span("spef_parse");
    let result = parse_inner(text);
    obs::counter("rcnet.spef.lines").add(text.lines().count() as u64);
    match &result {
        Ok(doc) => obs::counter("rcnet.spef.nets").add(doc.nets.len() as u64),
        Err(e) => {
            obs::counter("rcnet.spef.parse_errors").inc();
            obs::event!(
                obs::Level::Warn,
                "rcnet.spef",
                "SPEF parse failed",
                error = e.to_string(),
            );
        }
    }
    result
}

fn parse_inner(text: &str) -> Result<SpefDocument, RcNetError> {
    let cap_entries = obs::counter("rcnet.spef.caps");
    let res_entries = obs::counter("rcnet.spef.res");
    let mut header = SpefHeader::default();
    let mut name_map: HashMap<u64, String> = HashMap::new();
    let mut nets = Vec::new();
    let mut section = Section::Preamble;
    let mut builder: Option<RcNetBuilder> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find("//") {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let keyword = tokens[0];

        match keyword {
            "*SPEF" | "*DATE" | "*VENDOR" | "*PROGRAM" | "*VERSION" | "*DESIGN_FLOW"
            | "*BUS_DELIMITER" | "*L_UNIT" => continue,
            "*DESIGN" => {
                header.design = tokens
                    .get(1)
                    .map(|s| s.trim_matches('"').to_string())
                    .unwrap_or_default();
                continue;
            }
            "*DIVIDER" => {
                header.divider = tokens
                    .get(1)
                    .and_then(|s| s.chars().next())
                    .ok_or_else(|| err(line_no, "missing divider"))?;
                continue;
            }
            "*DELIMITER" => {
                header.delimiter = tokens
                    .get(1)
                    .and_then(|s| s.chars().next())
                    .ok_or_else(|| err(line_no, "missing delimiter"))?;
                continue;
            }
            "*T_UNIT" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "malformed *T_UNIT"));
                }
                header.time_scale = unit_scale(line_no, tokens[1], tokens[2], 't')?;
                continue;
            }
            "*C_UNIT" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "malformed *C_UNIT"));
                }
                header.cap_scale = unit_scale(line_no, tokens[1], tokens[2], 'c')?;
                continue;
            }
            "*R_UNIT" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "malformed *R_UNIT"));
                }
                header.res_scale = unit_scale(line_no, tokens[1], tokens[2], 'r')?;
                continue;
            }
            "*NAME_MAP" => {
                section = Section::NameMap;
                continue;
            }
            "*D_NET" => {
                if builder.is_some() {
                    return Err(err(line_no, "*D_NET before previous *END"));
                }
                if tokens.len() < 2 {
                    return Err(err(line_no, "malformed *D_NET"));
                }
                let name = resolve(tokens[1], &name_map, header.delimiter, line_no)?;
                builder = Some(RcNetBuilder::new(name));
                section = Section::NetConn;
                continue;
            }
            "*CONN" => {
                section = Section::NetConn;
                continue;
            }
            "*CAP" => {
                section = Section::NetCap;
                continue;
            }
            "*RES" => {
                section = Section::NetRes;
                continue;
            }
            "*END" => {
                let b = builder
                    .take()
                    .ok_or_else(|| err(line_no, "*END outside *D_NET"))?;
                nets.push(b.build()?);
                section = Section::Preamble;
                continue;
            }
            _ => {}
        }

        match section {
            Section::NameMap => {
                // "*<idx> <name>"
                let idx_str = keyword
                    .strip_prefix('*')
                    .ok_or_else(|| err(line_no, "name-map entry must start with `*`"))?;
                let idx: u64 = idx_str
                    .parse()
                    .map_err(|_| err(line_no, format!("bad name-map index `{keyword}`")))?;
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "name-map entry missing name"))?;
                name_map.insert(idx, (*name).to_string());
            }
            Section::NetConn => {
                // "*I <pin> <dir>" or "*P <port> <dir>"
                if keyword != "*I" && keyword != "*P" {
                    return Err(err(line_no, format!("unexpected token `{keyword}` in *CONN")));
                }
                if tokens.len() < 3 {
                    return Err(err(line_no, "malformed connection entry"));
                }
                let pin = resolve(tokens[1], &name_map, header.delimiter, line_no)?;
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "connection outside *D_NET"))?;
                match tokens[2] {
                    // Direction is the pin's own direction: a cell output
                    // drives the net, a cell input loads it.
                    "O" => {
                        b.source(pin, Farads(0.0));
                    }
                    "I" => {
                        b.sink(pin, Farads(0.0));
                    }
                    "B" => {
                        // Bidirectional: treat as a sink for timing purposes.
                        b.sink(pin, Farads(0.0));
                    }
                    d => return Err(err(line_no, format!("unknown pin direction `{d}`"))),
                }
            }
            Section::NetCap => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "*CAP entry outside *D_NET"))?;
                match tokens.len() {
                    // "<id> <node> <cap>": ground capacitance
                    3 => {
                        let node = resolve(tokens[1], &name_map, header.delimiter, line_no)?;
                        let cap: f64 = tokens[2]
                            .parse()
                            .map_err(|_| err(line_no, format!("bad capacitance `{}`", tokens[2])))?;
                        let id = b
                            .node_by_name(&node)
                            .unwrap_or_else(|| b.internal(node, Farads(0.0)));
                        b.set_cap(id, Farads(cap * header.cap_scale));
                    }
                    // "<id> <node> <other_node> <cap>": coupling capacitance
                    4 => {
                        let node = resolve(tokens[1], &name_map, header.delimiter, line_no)?;
                        let other = resolve(tokens[2], &name_map, header.delimiter, line_no)?;
                        let cap: f64 = tokens[3]
                            .parse()
                            .map_err(|_| err(line_no, format!("bad capacitance `{}`", tokens[3])))?;
                        let id = b
                            .node_by_name(&node)
                            .unwrap_or_else(|| b.internal(node, Farads(0.0)));
                        b.coupling(id, other, Farads(cap * header.cap_scale));
                    }
                    _ => return Err(err(line_no, "malformed *CAP entry")),
                }
                cap_entries.inc();
            }
            Section::NetRes => {
                if tokens.len() != 4 {
                    return Err(err(line_no, "malformed *RES entry"));
                }
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "*RES entry outside *D_NET"))?;
                let n1 = resolve(tokens[1], &name_map, header.delimiter, line_no)?;
                let n2 = resolve(tokens[2], &name_map, header.delimiter, line_no)?;
                let res: f64 = tokens[3]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad resistance `{}`", tokens[3])))?;
                let a = b
                    .node_by_name(&n1)
                    .unwrap_or_else(|| b.internal(n1, Farads(0.0)));
                let bb = b
                    .node_by_name(&n2)
                    .unwrap_or_else(|| b.internal(n2, Farads(0.0)));
                b.resistor(a, bb, Ohms(res * header.res_scale));
                res_entries.inc();
            }
            Section::Preamble => {
                return Err(err(line_no, format!("unexpected token `{keyword}`")));
            }
        }
    }
    if builder.is_some() {
        return Err(err(text.lines().count(), "unterminated *D_NET (missing *END)"));
    }
    Ok(SpefDocument { header, nets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    const SIMPLE: &str = r#"
*SPEF "IEEE 1481-1998"
*DESIGN "demo"
*DATE "today"
*VENDOR "oss"
*PROGRAM "netgen"
*VERSION "1.0"
*DIVIDER /
*DELIMITER :
*T_UNIT 1 NS
*C_UNIT 1 FF
*R_UNIT 1 OHM

*NAME_MAP
*1 net42
*2 U7
*3 U9

*D_NET *1 3.0
*CONN
*I *2:Z O
*I *3:A I
*CAP
1 *1:1 1.5     // internal node cap
2 *3:A 1.5
3 *1:1 agg:4 0.25
*RES
1 *2:Z *1:1 12.0
2 *1:1 *3:A 8.0
*END
"#;

    #[test]
    fn parses_header_units() {
        let doc = parse(SIMPLE).unwrap();
        assert_eq!(doc.header.design, "demo");
        assert_eq!(doc.header.time_scale, 1e-9);
        assert_eq!(doc.header.cap_scale, 1e-15);
        assert_eq!(doc.header.res_scale, 1.0);
    }

    #[test]
    fn parses_net_structure() {
        let doc = parse(SIMPLE).unwrap();
        assert_eq!(doc.nets.len(), 1);
        let net = &doc.nets[0];
        assert_eq!(net.name(), "net42");
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.node(net.source()).name, "U7:Z");
        assert_eq!(net.node(net.source()).kind, NodeKind::Source);
        assert_eq!(net.sinks().len(), 1);
        assert_eq!(net.couplings().len(), 1);
        assert_eq!(net.couplings()[0].aggressor, "agg:4");
        assert!((net.couplings()[0].cap.femto_farads() - 0.25).abs() < 1e-9);
        let internal = net.node_by_name("net42:1").unwrap();
        assert!((net.node(internal).cap.femto_farads() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn name_map_is_optional() {
        let text = r#"
*SPEF "IEEE 1481-1998"
*DELIMITER :
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET plain 1.0
*CONN
*I d:Z O
*I l:A I
*CAP
1 l:A 1.0
*RES
1 d:Z l:A 5.0
*END
"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.nets[0].name(), "plain");
        assert_eq!(doc.nets[0].edge_count(), 1);
    }

    #[test]
    fn rejects_unknown_map_index() {
        let text = "*DELIMITER :\n*D_NET *9 1.0\n*END\n";
        let e = parse(text).unwrap_err();
        assert!(matches!(e, RcNetError::SpefParse { .. }));
    }

    #[test]
    fn rejects_unterminated_net() {
        let text = "*D_NET n 1.0\n*CONN\n*I a:Z O\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_bad_direction() {
        let text = "*D_NET n 1.0\n*CONN\n*I a:Z X\n*END\n";
        let e = parse(text).unwrap_err();
        match e {
            RcNetError::SpefParse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn net_without_driver_fails_validation() {
        let text = r#"
*D_NET n 1.0
*CONN
*I l:A I
*CAP
1 l:A 1.0
*RES
1 l:A n:1 5.0
*END
"#;
        // n:1 becomes an internal node; the net has no source.
        assert!(matches!(parse(text), Err(RcNetError::InvalidNet(_))));
    }

    #[test]
    fn kohm_and_pf_units_scale() {
        let text = r#"
*C_UNIT 1 PF
*R_UNIT 1 KOHM
*D_NET n 1.0
*CONN
*I d:Z O
*I l:A I
*CAP
1 l:A 0.001
*RES
1 d:Z l:A 0.01
*END
"#;
        let doc = parse(text).unwrap();
        let net = &doc.nets[0];
        assert!((net.total_cap().value() - 1e-15).abs() < 1e-27);
        assert!((net.total_res().value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_nets_parse_in_order() {
        let text = r#"
*D_NET a 1.0
*CONN
*I d1:Z O
*I l1:A I
*CAP
1 l1:A 1.0
*RES
1 d1:Z l1:A 5.0
*END
*D_NET b 1.0
*CONN
*I d2:Z O
*I l2:A I
*CAP
1 l2:A 1.0
*RES
1 d2:Z l2:A 5.0
*END
"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.nets.len(), 2);
        assert_eq!(doc.nets[0].name(), "a");
        assert_eq!(doc.nets[1].name(), "b");
    }
}
