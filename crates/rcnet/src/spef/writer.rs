//! SPEF subset writer (the inverse of [`super::parse`]).

use super::SpefHeader;
use crate::{NodeKind, RcNet};
use std::fmt::Write as _;

/// Serializes nets into a SPEF document using the given header.
///
/// Values are written in the header's units (`time_scale` is currently
/// unused because the subset carries no delays). The output round-trips
/// through [`super::parse`].
///
/// # Examples
///
/// ```
/// use rcnet::spef::{parse, write, SpefHeader};
/// # fn main() -> Result<(), rcnet::RcNetError> {
/// # let mut b = rcnet::RcNetBuilder::new("n");
/// # let s = b.source("d:Z", rcnet::Farads(1e-15));
/// # let k = b.sink("l:A", rcnet::Farads(1e-15));
/// # b.resistor(s, k, rcnet::Ohms(5.0));
/// # let net = b.build()?;
/// let text = write(&SpefHeader::default(), std::slice::from_ref(&net));
/// let doc = parse(&text)?;
/// assert_eq!(doc.nets[0].name(), net.name());
/// # Ok(())
/// # }
/// ```
pub fn write(header: &SpefHeader, nets: &[RcNet]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF \"IEEE 1481-1998\"");
    let _ = writeln!(out, "*DESIGN \"{}\"", header.design);
    let _ = writeln!(out, "*DATE \"\"");
    let _ = writeln!(out, "*VENDOR \"wire-timing\"");
    let _ = writeln!(out, "*PROGRAM \"rcnet\"");
    let _ = writeln!(out, "*VERSION \"1.0\"");
    let _ = writeln!(out, "*DESIGN_FLOW \"\"");
    let _ = writeln!(out, "*DIVIDER {}", header.divider);
    let _ = writeln!(out, "*DELIMITER {}", header.delimiter);
    let _ = writeln!(out, "*BUS_DELIMITER [ ]");
    let _ = writeln!(out, "*T_UNIT {} S", header.time_scale);
    let _ = writeln!(out, "*C_UNIT {} F", header.cap_scale);
    let _ = writeln!(out, "*R_UNIT {} OHM", header.res_scale);
    let _ = writeln!(out);

    for net in nets {
        let total_cap = net.total_cap().value() / header.cap_scale;
        let _ = writeln!(out, "*D_NET {} {:.6}", net.name(), total_cap);
        let _ = writeln!(out, "*CONN");
        for (_, node) in net.iter_nodes() {
            match node.kind {
                NodeKind::Source => {
                    let _ = writeln!(out, "*I {} O", node.name);
                }
                NodeKind::Sink => {
                    let _ = writeln!(out, "*I {} I", node.name);
                }
                NodeKind::Internal => {}
            }
        }
        let _ = writeln!(out, "*CAP");
        let mut cap_id = 1usize;
        for (_, node) in net.iter_nodes() {
            if node.cap.value() != 0.0 {
                let _ = writeln!(
                    out,
                    "{cap_id} {} {:.9}",
                    node.name,
                    node.cap.value() / header.cap_scale
                );
                cap_id += 1;
            }
        }
        for c in net.couplings() {
            let _ = writeln!(
                out,
                "{cap_id} {} {} {:.9}",
                net.node(c.node).name,
                c.aggressor,
                c.cap.value() / header.cap_scale
            );
            cap_id += 1;
        }
        let _ = writeln!(out, "*RES");
        for (i, (_, e)) in net.iter_edges().enumerate() {
            let _ = writeln!(
                out,
                "{} {} {} {:.9}",
                i + 1,
                net.node(e.a).name,
                net.node(e.b).name,
                e.res.value() / header.res_scale
            );
        }
        let _ = writeln!(out, "*END");
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;
    use crate::{Farads, Ohms, RcNetBuilder};

    fn build_net() -> RcNet {
        let mut b = RcNetBuilder::new("nx");
        let s = b.source("drv:Z", Farads(0.5e-15));
        let m = b.internal("nx:1", Farads(1.5e-15));
        let k1 = b.sink("l1:A", Farads(2e-15));
        let k2 = b.sink("l2:B", Farads(2.5e-15));
        b.resistor(s, m, Ohms(11.0));
        b.resistor(m, k1, Ohms(13.0));
        b.resistor(m, k2, Ohms(17.0));
        b.coupling(m, "victim2:7", Farads(0.3e-15));
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let net = build_net();
        let header = SpefHeader {
            design: "rt".into(),
            ..Default::default()
        };
        let text = write(&header, std::slice::from_ref(&net));
        let doc = parse(&text).unwrap();
        assert_eq!(doc.header.design, "rt");
        assert_eq!(doc.nets.len(), 1);
        let rt = &doc.nets[0];
        assert_eq!(rt.name(), net.name());
        assert_eq!(rt.node_count(), net.node_count());
        assert_eq!(rt.edge_count(), net.edge_count());
        assert_eq!(rt.sinks().len(), net.sinks().len());
        assert_eq!(rt.couplings().len(), 1);
        assert!((rt.total_cap().value() - net.total_cap().value()).abs() < 1e-24);
        assert!((rt.total_res().value() - net.total_res().value()).abs() < 1e-9);
    }

    #[test]
    fn round_trip_preserves_path_resistances() {
        let net = build_net();
        let text = write(&SpefHeader::default(), std::slice::from_ref(&net));
        let doc = parse(&text).unwrap();
        let rt = &doc.nets[0];
        let orig: Vec<f64> = net
            .paths()
            .iter()
            .map(|p| p.total_res(&net).value())
            .collect();
        let round: Vec<f64> = rt.paths().iter().map(|p| p.total_res(rt).value()).collect();
        assert_eq!(orig.len(), round.len());
        for (a, b) in orig.iter().zip(&round) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
