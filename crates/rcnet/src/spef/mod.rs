//! SPEF (IEEE 1481) subset parser and writer.
//!
//! Parasitic extraction tools (the paper uses Synopsys StarRC) emit SPEF;
//! this module ingests the subset needed for wire timing — header units,
//! `*NAME_MAP`, and `*D_NET` sections with `*CONN`, `*CAP` (ground and
//! coupling) and `*RES` — and can write it back out for round-tripping.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), rcnet::RcNetError> {
//! let text = r#"
//! *SPEF "IEEE 1481-1998"
//! *DESIGN "demo"
//! *DIVIDER /
//! *DELIMITER :
//! *T_UNIT 1 PS
//! *C_UNIT 1 FF
//! *R_UNIT 1 OHM
//!
//! *D_NET net1 3.0
//! *CONN
//! *I U1:Z O
//! *I U2:A I
//! *CAP
//! 1 net1:1 1.5
//! 2 U2:A 1.5
//! *RES
//! 1 U1:Z net1:1 12.0
//! 2 net1:1 U2:A 8.0
//! *END
//! "#;
//! let doc = rcnet::spef::parse(text)?;
//! assert_eq!(doc.nets.len(), 1);
//! assert_eq!(doc.nets[0].paths().len(), 1);
//! # Ok(())
//! # }
//! ```

mod parser;
mod writer;

pub use parser::{parse, SpefDocument, SpefHeader};
pub use writer::write;
