//! The DAC'20 baseline \[5\]: manual features + loop breaking + GBDT.
//!
//! Cheng, Jiang & Ou ("Fast and accurate wire timing estimation on tree
//! and non-tree net structures", DAC 2020) hand-pick RC-structure
//! features, convert non-tree nets to trees with a loop-breaking step,
//! and fit an XGBoost regressor. This module reproduces that recipe:
//! the loop-breaking is the shortest-path-tree projection (chords
//! dropped), the features below are the tree-structural quantities the
//! estimator sees, and the regressor is [`gnn::gbdt::Gbdt`]. Its
//! characteristic failure — accuracy collapse on non-tree nets, whose
//! loops the features cannot see — is exactly what TABLE III measures.

use crate::features::NetContext;
use crate::{CoreError, Dataset};
use elmore::{LoopBreaking, WireAnalysis};
use gnn::gbdt::{Gbdt, GbdtConfig};
use rcnet::{RcNet, Seconds};

/// Width of the manual feature vector.
pub const DAC20_DIM: usize = 14;

/// Extracts the manual feature rows of every path of a net.
///
/// Tree-structural quantities come from the *loop-broken* view (the
/// shortest-path tree inside [`WireAnalysis`]), which is the source of the
/// baseline's non-tree error.
pub fn feature_rows(net: &RcNet, wa: &WireAnalysis, ctx: &NetContext) -> Vec<Vec<f64>> {
    net.paths()
        .iter()
        .enumerate()
        .map(|(i, path)| {
            let load = &ctx.loads[i];
            // Path-structural quantities come from the loop-broken tree's
            // own root→sink path, not the electrical shortest path — the
            // baseline has no other view of the net.
            let (tree_nodes, tree_edges) = wa.orientation().path_to(path.sink);
            let tree_path_res: f64 = tree_edges
                .iter()
                .map(|&e| net.edge(e).res.value())
                .sum();
            vec![
                ctx.input_slew.pico_seconds(),
                ctx.drive_strength,
                ctx.drive_func,
                load.drive,
                load.func,
                load.ceff / 1e-15,
                tree_path_res / 1e3,
                tree_nodes.len() as f64,
                wa.downstream_cap(net.source()).value() / 1e-15,
                wa.downstream_cap(path.sink).value() / 1e-15,
                wa.tree_path_elmore(path).pico_seconds(),
                wa.tree_path_d2m(path).pico_seconds(),
                net.total_res().value() / 1e3,
                net.total_cap().value() / 1e-15,
            ]
        })
        .collect()
}

/// The trained DAC'20 estimator: one GBDT for slew, one for delay.
#[derive(Debug, Clone)]
pub struct Dac20Estimator {
    slew_model: Gbdt,
    delay_model: Gbdt,
}

impl Dac20Estimator {
    /// Fits both ensembles on a dataset's precomputed manual features.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] when the dataset has no paths.
    pub fn fit(data: &Dataset, cfg: &GbdtConfig) -> Result<Self, CoreError> {
        let mut rows = Vec::new();
        let mut slews = Vec::new();
        let mut delays = Vec::new();
        for s in &data.samples {
            for (i, row) in s.dac20_rows.iter().enumerate() {
                rows.push(row.clone());
                slews.push(s.targets_ps.get(i, 0) as f64);
                delays.push(s.targets_ps.get(i, 1) as f64);
            }
        }
        if rows.is_empty() {
            return Err(CoreError::BadInput("dataset has no paths".into()));
        }
        let slew_model = Gbdt::fit(&rows, &slews, cfg)?;
        let delay_model = Gbdt::fit(&rows, &delays, cfg)?;
        Ok(Dac20Estimator {
            slew_model,
            delay_model,
        })
    }

    /// Predicts `(slew, delay)` for every path of `net`.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn predict_net(
        &self,
        net: &RcNet,
        ctx: &NetContext,
    ) -> Result<Vec<(Seconds, Seconds)>, CoreError> {
        let wa = WireAnalysis::with_policy(net, LoopBreaking::DepthFirst)?;
        Ok(feature_rows(net, &wa, ctx)
            .iter()
            .map(|row| {
                (
                    Seconds::from_ps(self.slew_model.predict(row).max(0.0)),
                    Seconds::from_ps(self.delay_model.predict(row).max(0.0)),
                )
            })
            .collect())
    }

    /// Predicts from precomputed feature rows (used during evaluation to
    /// avoid re-extracting).
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<(f64, f64)> {
        rows.iter()
            .map(|r| {
                (
                    self.slew_model.predict(r).max(0.0),
                    self.delay_model.predict(r).max(0.0),
                )
            })
            .collect()
    }
}

impl sta::WireTimer for Dac20Estimator {
    fn path_timing(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), sta::StaError> {
        let mut ctx = NetContext::generic(net);
        ctx.input_slew = input_slew;
        self.timing_from_ctx(net, path_idx, &ctx)
    }

    fn path_timing_with_driver(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
        driver: Option<&sta::cells::Cell>,
    ) -> Result<(Seconds, Seconds), sta::StaError> {
        let ctx = match driver {
            Some(cell) => NetContext::for_driver(net, cell, input_slew),
            None => {
                let mut c = NetContext::generic(net);
                c.input_slew = input_slew;
                c
            }
        };
        self.timing_from_ctx(net, path_idx, &ctx)
    }
}

impl Dac20Estimator {
    fn timing_from_ctx(
        &self,
        net: &RcNet,
        path_idx: usize,
        ctx: &NetContext,
    ) -> Result<(Seconds, Seconds), sta::StaError> {
        let est = self
            .predict_net(net, ctx)
            .map_err(|e| sta::StaError::Wire(e.to_string()))?;
        let p = est
            .get(path_idx)
            .ok_or_else(|| sta::StaError::Wire(format!("path {path_idx} out of range")))?;
        Ok((p.1, p.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use netgen::nets::{NetConfig, NetGenerator};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let cfg = NetConfig {
            nodes_min: 4,
            nodes_max: 12,
            ..Default::default()
        };
        let mut g = NetGenerator::new(seed, cfg);
        let nets: Vec<RcNet> = (0..n).map(|i| g.net(format!("n{i}"), i % 2 == 0)).collect();
        DatasetBuilder::new(1).build(&nets).unwrap()
    }

    #[test]
    fn feature_rows_have_fixed_width() {
        let ds = dataset(3, 5);
        for s in &ds.samples {
            for r in &s.dac20_rows {
                assert_eq!(r.len(), DAC20_DIM);
            }
        }
    }

    #[test]
    fn fits_and_predicts_sensibly() {
        let ds = dataset(20, 7);
        let model = Dac20Estimator::fit(&ds, &GbdtConfig::default()).unwrap();
        // In-sample predictions should correlate strongly with the labels.
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for s in &ds.samples {
            for (i, (ps, pd)) in model.predict_rows(&s.dac20_rows).iter().enumerate() {
                truth.push(s.targets_ps.get(i, 1) as f64);
                pred.push(*pd);
                assert!(*ps >= 0.0 && *pd >= 0.0);
            }
        }
        let r2 = numeric::stats::r2_score(&truth, &pred).unwrap();
        assert!(r2 > 0.8, "in-sample delay r2 {r2}");
    }

    #[test]
    fn predict_net_matches_predict_rows() {
        let ds = dataset(10, 9);
        let model = Dac20Estimator::fit(&ds, &GbdtConfig::default()).unwrap();
        let s = &ds.samples[0];
        let from_net = model.predict_net(&s.net, &s.ctx).unwrap();
        let from_rows = model.predict_rows(&s.dac20_rows);
        assert_eq!(from_net.len(), from_rows.len());
        for (a, b) in from_net.iter().zip(&from_rows) {
            assert!((a.0.pico_seconds() - b.0).abs() < 1e-9);
            assert!((a.1.pico_seconds() - b.1).abs() < 1e-9);
        }
    }
}
