//! One-call SPEF-to-report flow: the deployment shape of the estimator.
//!
//! Parse extracted parasitics, optionally reduce them, run batch
//! inference, and emit a per-net worst-path report — what an incremental
//! optimization loop calls between engineering change orders.

use crate::estimator::WireTimingEstimator;
use crate::features::NetContext;
use crate::{CoreError, DatasetBuilder};
use rcnet::reduce::{merge_series, ReduceOptions};
use rcnet::{RcNet, Seconds};
use std::fmt::Write as _;

/// Options for [`time_spef`].
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Apply series-merge reduction before timing (faster feature
    /// extraction on over-segmented extraction output).
    pub reduce: bool,
    /// Context assignment seed (driver/load/slew selection per net when
    /// the caller has no netlist information).
    pub context_seed: u64,
    /// Report only nets whose worst path delay exceeds this bound.
    pub report_threshold: Seconds,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            reduce: false,
            context_seed: 0,
            report_threshold: Seconds(0.0),
        }
    }
}

/// Timing of one net within a [`FlowReport`].
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Net name.
    pub net: String,
    /// Number of wire paths.
    pub paths: usize,
    /// Worst path delay.
    pub worst_delay: Seconds,
    /// Sink name of the worst path.
    pub worst_sink: String,
    /// Slew at the worst sink.
    pub worst_slew: Seconds,
}

/// Result of [`time_spef`].
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Per-net rows, worst delay first, filtered by the report threshold.
    pub nets: Vec<NetReport>,
    /// Total nets timed (before threshold filtering).
    pub total_nets: usize,
    /// Total wire paths timed.
    pub total_paths: usize,
    /// Nodes eliminated by reduction (0 when disabled).
    pub reduced_nodes: usize,
    /// Wall time of each flow stage in execution order:
    /// `parse`, `reduce`, `features`, `inference`.
    pub stage_seconds: Vec<(String, f64)>,
}

impl FlowReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timed {} nets / {} wire paths ({} nodes reduced)",
            self.total_nets, self.total_paths, self.reduced_nodes
        );
        if !self.stage_seconds.is_empty() {
            let _ = write!(out, "stage times:");
            for (stage, secs) in &self.stage_seconds {
                let _ = write!(out, " {stage} {:.1}ms", secs * 1e3);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "{:<24} {:>6} {:>12} {:>12}  sink", "net", "paths", "delay(ps)", "slew(ps)");
        for r in &self.nets {
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>12.2} {:>12.2}  {}",
                r.net,
                r.paths,
                r.worst_delay.pico_seconds(),
                r.worst_slew.pico_seconds(),
                r.worst_sink
            );
        }
        out
    }
}

/// Times every net of a SPEF document with a trained estimator.
///
/// # Errors
///
/// Propagates SPEF parse failures, reduction failures and estimator
/// errors (including [`CoreError::NotTrained`]).
pub fn time_spef(
    spef_text: &str,
    estimator: &WireTimingEstimator,
    opts: &FlowOptions,
) -> Result<FlowReport, CoreError> {
    let _flow_span = obs::span("flow");
    let mut stage_start = std::time::Instant::now();
    let mut stage_seconds: Vec<(String, f64)> = Vec::with_capacity(4);
    let mut end_stage = |name: &str, start: &mut std::time::Instant| {
        stage_seconds.push((name.to_string(), start.elapsed().as_secs_f64()));
        *start = std::time::Instant::now();
    };

    let doc = obs::with_span("parse", || rcnet::spef::parse(spef_text))
        .map_err(|e| CoreError::BadInput(e.to_string()))?;
    end_stage("parse", &mut stage_start);
    let builder = DatasetBuilder::new(opts.context_seed);

    let mut reduced_nodes = 0usize;
    let nets: Vec<RcNet> = obs::with_span("reduce", || {
        doc.nets
            .into_iter()
            .map(|net| {
                if opts.reduce {
                    let r = merge_series(&net, ReduceOptions::default())
                        .map_err(|e| CoreError::BadInput(e.to_string()))?;
                    reduced_nodes += r.merged;
                    Ok(r.net)
                } else {
                    Ok(net)
                }
            })
            .collect::<Result<_, CoreError>>()
    })?;
    end_stage("reduce", &mut stage_start);

    let mut rows = Vec::new();
    let mut total_paths = 0usize;
    let mut feature_secs = 0.0f64;
    let mut inference_secs = 0.0f64;
    for net in &nets {
        let t = std::time::Instant::now();
        let ctx: NetContext = obs::with_span("features", || builder.context_for(net));
        feature_secs += t.elapsed().as_secs_f64();
        let t = std::time::Instant::now();
        let estimates = obs::with_span("inference", || estimator.predict_net(net, &ctx))?;
        inference_secs += t.elapsed().as_secs_f64();
        total_paths += estimates.len();
        let worst = estimates
            .iter()
            .max_by(|a, b| a.delay.value().total_cmp(&b.delay.value()))
            .ok_or_else(|| CoreError::BadInput(format!("net `{}` has no paths", net.name())))?;
        if worst.delay >= opts.report_threshold {
            rows.push(NetReport {
                net: net.name().to_string(),
                paths: estimates.len(),
                worst_delay: worst.delay,
                worst_sink: net.node(worst.sink).name.clone(),
                worst_slew: worst.slew,
            });
        }
    }
    rows.sort_by(|a, b| b.worst_delay.value().total_cmp(&a.worst_delay.value()));
    stage_seconds.push(("features".to_string(), feature_secs));
    stage_seconds.push(("inference".to_string(), inference_secs));
    obs::counter("gnntrans.flow.nets").add(nets.len() as u64);
    obs::counter("gnntrans.flow.paths").add(total_paths as u64);
    obs::event!(
        obs::Level::Info,
        "gnntrans.flow",
        "timed SPEF document",
        nets = nets.len(),
        paths = total_paths,
        reduced_nodes = reduced_nodes,
    );
    Ok(FlowReport {
        nets: rows,
        total_nets: nets.len(),
        total_paths,
        reduced_nodes,
        stage_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorConfig;
    use netgen::nets::{NetConfig, NetGenerator};
    use rcnet::spef::{write, SpefHeader};

    fn trained() -> (WireTimingEstimator, Vec<RcNet>) {
        let cfg = NetConfig {
            nodes_min: 5,
            nodes_max: 14,
            ..Default::default()
        };
        let mut g = NetGenerator::new(5, cfg);
        let nets: Vec<RcNet> = (0..25).map(|i| g.net(format!("f{i}"), i % 3 == 0)).collect();
        let mut b = DatasetBuilder::new(0);
        let data = b.build(&nets[..20]).unwrap();
        let mut ecfg = EstimatorConfig::plan_b_small();
        ecfg.hidden = 16;
        ecfg.epochs = 12;
        let mut est = WireTimingEstimator::new(&ecfg, 3);
        est.train(&data).unwrap();
        (est, nets)
    }

    #[test]
    fn spef_to_report_end_to_end() {
        let (est, nets) = trained();
        let text = write(&SpefHeader::default(), &nets[20..]);
        let report = time_spef(&text, &est, &FlowOptions::default()).unwrap();
        assert_eq!(report.total_nets, 5);
        assert_eq!(report.nets.len(), 5);
        assert!(report.total_paths >= 5);
        // Sorted worst first.
        for w in report.nets.windows(2) {
            assert!(w[0].worst_delay >= w[1].worst_delay);
        }
        let rendered = report.render();
        assert!(rendered.contains("timed 5 nets"));
        assert!(rendered.contains(&report.nets[0].net));
        // Stage wall times are reported in execution order.
        let stages: Vec<&str> = report.stage_seconds.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(stages, ["parse", "reduce", "features", "inference"]);
        assert!(report.stage_seconds.iter().all(|(_, s)| *s >= 0.0));
        assert!(rendered.contains("stage times:"));
    }

    #[test]
    fn reduction_and_threshold_options() {
        let (est, nets) = trained();
        let text = write(&SpefHeader::default(), &nets[20..]);
        let full = time_spef(&text, &est, &FlowOptions::default()).unwrap();
        let opts = FlowOptions {
            reduce: true,
            report_threshold: Seconds::from_ps(1e9), // filter everything
            ..Default::default()
        };
        let filtered = time_spef(&text, &est, &opts).unwrap();
        assert!(filtered.reduced_nodes > 0);
        assert_eq!(filtered.total_nets, full.total_nets);
        assert!(filtered.nets.is_empty());
    }

    #[test]
    fn untrained_estimator_is_rejected() {
        let est = WireTimingEstimator::new(&EstimatorConfig::plan_b_small(), 1);
        let (trained_est, nets) = trained();
        let _ = trained_est;
        let text = write(&SpefHeader::default(), &nets[..1]);
        assert!(matches!(
            time_spef(&text, &est, &FlowOptions::default()),
            Err(CoreError::NotTrained)
        ));
    }

    #[test]
    fn bad_spef_is_rejected() {
        let (est, _) = trained();
        assert!(time_spef("*D_NET oops", &est, &FlowOptions::default()).is_err());
    }
}
