//! The user-facing wire-timing estimator.

use crate::features::{NetContext, NODE_DIM, PATH_DIM};
use crate::scaler::Scaler;
use crate::{CoreError, Dataset};
use gnn::infer::{InferenceModel, PackedBatch};
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnn::train::{train, TrainBackend, TrainConfig, TrainReport};
use gnn::GraphBatch;
use rcnet::{NodeId, RcNet, Seconds};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;
use tensor::{Mat, ParamSet};

/// Node-row budget per packed chunk: large enough that the shared
/// projections run as GEMM-friendly tall matrices, small enough that a
/// chunk's attention score buffers stay cache-resident.
const PACK_MAX_NODES: usize = 2048;

/// Graph-count cap per packed chunk.
const PACK_MAX_GRAPHS: usize = 64;

thread_local! {
    /// Per-thread buffer arena for tape-free forwards. Thread-local so
    /// serve workers and `par` lanes each reuse their own warm pool
    /// without locking.
    static ARENA: RefCell<gnn::infer::Arena> = RefCell::new(gnn::infer::Arena::new());
}

/// Which forward implementation [`WireTimingEstimator`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardBackend {
    /// The compiled tape-free path (arena buffers, cross-net packing) —
    /// the default.
    TapeFree,
    /// The autograd-tape forward, kept as the correctness oracle.
    /// Selected by `GNNTRANS_TAPE_FORWARD=1` or
    /// [`WireTimingEstimator::set_forward_backend`].
    Tape,
}

impl ForwardBackend {
    /// Resolves the backend from the `GNNTRANS_TAPE_FORWARD`
    /// environment variable (`1`/`true` select the tape oracle).
    pub fn from_env() -> Self {
        let oracle = std::env::var("GNNTRANS_TAPE_FORWARD")
            .map(|v| {
                let t = v.trim();
                t == "1" || t.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false);
        if oracle {
            ForwardBackend::Tape
        } else {
            ForwardBackend::TapeFree
        }
    }
}

/// The paper's three depth configurations (TABLE V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// `L1 = 25, L2 = 5` — GNN-heavy, best on small designs.
    A,
    /// `L1 = 20, L2 = 10` — the default.
    B,
    /// `L1 = 15, L2 = 15` — transformer-heavy, best on large designs.
    C,
}

impl Plan {
    /// The `(L1, L2)` layer split at full paper depth.
    pub fn layer_split(self) -> (usize, usize) {
        match self {
            Plan::A => (25, 5),
            Plan::B => (20, 10),
            Plan::C => (15, 15),
        }
    }

    /// The same split scaled by `1/div` (for CPU-budget runs), each part
    /// at least 1.
    pub fn scaled_split(self, div: usize) -> (usize, usize) {
        let (l1, l2) = self.layer_split();
        ((l1 / div).max(1), (l2 / div).max(1))
    }
}

/// Estimator hyper-parameters (architecture + training).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// `L1` GNN layers.
    pub gnn_layers: usize,
    /// `L2` attention layers.
    pub attn_layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP head hidden width.
    pub mlp_hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl EstimatorConfig {
    fn with_split((gnn_layers, attn_layers): (usize, usize)) -> Self {
        EstimatorConfig {
            gnn_layers,
            attn_layers,
            hidden: 24,
            heads: 4,
            mlp_hidden: 32,
            epochs: 40,
            lr: 3e-3,
        }
    }

    /// PlanA at full paper depth.
    pub fn plan_a() -> Self {
        Self::with_split(Plan::A.layer_split())
    }

    /// PlanB at full paper depth.
    pub fn plan_b() -> Self {
        Self::with_split(Plan::B.layer_split())
    }

    /// PlanC at full paper depth.
    pub fn plan_c() -> Self {
        Self::with_split(Plan::C.layer_split())
    }

    /// PlanA scaled 1/5 for CPU runs (`L1=5, L2=1`).
    pub fn plan_a_small() -> Self {
        Self::with_split(Plan::A.scaled_split(5))
    }

    /// PlanB scaled 1/5 for CPU runs (`L1=4, L2=2`).
    pub fn plan_b_small() -> Self {
        Self::with_split(Plan::B.scaled_split(5))
    }

    /// PlanC scaled 1/5 for CPU runs (`L1=3, L2=3`).
    pub fn plan_c_small() -> Self {
        Self::with_split(Plan::C.scaled_split(5))
    }

    fn to_model_config(&self) -> GnnTransConfig {
        GnnTransConfig {
            node_dim: NODE_DIM,
            path_dim: PATH_DIM,
            hidden: self.hidden,
            gnn_layers: self.gnn_layers,
            attn_layers: self.attn_layers,
            heads: self.heads,
            mlp_hidden: self.mlp_hidden,
            path_features: true,
            weighted_aggregation: true,
            attn_norm: true,
        }
    }

    fn to_mat(&self) -> Mat {
        Mat::row_vector(vec![
            self.gnn_layers as f32,
            self.attn_layers as f32,
            self.hidden as f32,
            self.heads as f32,
            self.mlp_hidden as f32,
            self.epochs as f32,
            self.lr,
        ])
    }

    fn from_mat(m: &Mat) -> Result<Self, CoreError> {
        if m.shape() != (1, 7) {
            return Err(CoreError::Checkpoint(format!(
                "config matrix must be 1 x 7, got {} x {}",
                m.rows(),
                m.cols()
            )));
        }
        // Checkpoint data is untrusted: a corrupt config would otherwise
        // drive model construction into absurd allocations or panics.
        let dim = |col: usize, name: &str, lo: f32, hi: f32| -> Result<usize, CoreError> {
            let v = m.get(0, col);
            if !v.is_finite() || v < lo || v > hi || v.fract() != 0.0 {
                return Err(CoreError::Checkpoint(format!(
                    "config field `{name}` is {v}, expected an integer in [{lo}, {hi}]"
                )));
            }
            Ok(v as usize)
        };
        let lr = m.get(0, 6);
        if !lr.is_finite() || lr <= 0.0 || lr > 1.0 {
            return Err(CoreError::Checkpoint(format!(
                "config field `lr` is {lr}, expected in (0, 1]"
            )));
        }
        let cfg = EstimatorConfig {
            gnn_layers: dim(0, "gnn_layers", 0.0, 1024.0)?,
            attn_layers: dim(1, "attn_layers", 0.0, 1024.0)?,
            hidden: dim(2, "hidden", 1.0, 65536.0)?,
            heads: dim(3, "heads", 1.0, 1024.0)?,
            mlp_hidden: dim(4, "mlp_hidden", 1.0, 65536.0)?,
            epochs: dim(5, "epochs", 0.0, 1e9)?,
            lr,
        };
        // The attention layer asserts this; fail with a typed error first.
        if !cfg.hidden.is_multiple_of(cfg.heads) {
            return Err(CoreError::Checkpoint(format!(
                "config hidden ({}) is not divisible by heads ({})",
                cfg.hidden, cfg.heads
            )));
        }
        Ok(cfg)
    }
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self::plan_b_small()
    }
}

/// One predicted wire path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathEstimate {
    /// The path's sink node.
    pub sink: NodeId,
    /// Predicted sink slew.
    pub slew: Seconds,
    /// Predicted wire delay.
    pub delay: Seconds,
}

/// Per-net result of [`WireTimingEstimator::predict_spef`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetPrediction {
    /// Net name from the SPEF `*D_NET` section.
    pub net: String,
    /// Sink pin name per path, aligned with `estimates`.
    pub sinks: Vec<String>,
    /// Path estimates in [`RcNet::paths`] order.
    pub estimates: Vec<PathEstimate>,
}

/// The trained GNNTrans wire-timing estimator.
///
/// Implements [`sta::WireTimer`], so it plugs directly into
/// [`sta::TimingPath::arrival`] and [`sta::netlist::Netlist::propagate`].
#[derive(Debug, Clone)]
pub struct WireTimingEstimator {
    cfg: EstimatorConfig,
    model: GnnTrans,
    scalers: Option<Scalers>,
    /// Tape-free executable compiled from `model`, rebuilt whenever the
    /// weights change (train / fine-tune / load). Shared by clone —
    /// the compiled form is immutable.
    infer: Option<Arc<InferenceModel>>,
    backend: ForwardBackend,
}

#[derive(Debug, Clone)]
struct Scalers {
    node: Scaler,
    path: Scaler,
    target: Scaler,
}

impl WireTimingEstimator {
    /// Creates an untrained estimator.
    pub fn new(cfg: &EstimatorConfig, seed: u64) -> Self {
        WireTimingEstimator {
            cfg: cfg.clone(),
            model: GnnTrans::new(&cfg.to_model_config(), seed),
            scalers: None,
            infer: None,
            backend: ForwardBackend::from_env(),
        }
    }

    /// The active forward backend.
    pub fn forward_backend(&self) -> ForwardBackend {
        self.backend
    }

    /// Overrides the forward backend (tests and benchmarks comparing
    /// the tape oracle against the tape-free path in-process).
    pub fn set_forward_backend(&mut self, backend: ForwardBackend) {
        self.backend = backend;
    }

    /// Recompiles the tape-free executable from the current weights.
    /// Called after every weight change; until the first call the
    /// estimator falls back to the tape forward.
    fn rebuild_infer(&mut self) {
        self.infer = Some(Arc::new(InferenceModel::compile(&self.model)));
    }

    /// The configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Whether [`WireTimingEstimator::train`] has completed.
    pub fn is_trained(&self) -> bool {
        self.scalers.is_some()
    }

    /// Number of scalar weights.
    pub fn weight_count(&self) -> usize {
        self.model.param_set().scalar_count()
    }

    /// Trains end to end on a labelled dataset.
    ///
    /// # Errors
    ///
    /// Propagates batch packing and training failures.
    pub fn train(&mut self, data: &Dataset) -> Result<TrainReport, CoreError> {
        let batches = data.batches()?;
        let report = train(
            &mut self.model,
            &batches,
            &TrainConfig {
                epochs: self.cfg.epochs,
                lr: self.cfg.lr,
                seed: 1,
                grad_clip: Some(5.0),
                accum: 1,
                backend: TrainBackend::from_env(),
            },
        )?;
        self.scalers = Some(Scalers {
            node: data.node_scaler.clone(),
            path: data.path_scaler.clone(),
            target: data.target_scaler.clone(),
        });
        self.rebuild_infer();
        Ok(report)
    }

    /// Trains with a held-out validation split and early stopping: every
    /// `1/val_every`-th net is held out, training stops after `patience`
    /// epochs without validation improvement, and the best-epoch weights
    /// are restored. More robust than [`WireTimingEstimator::train`] when
    /// run-to-run variance matters (e.g. comparing PlanA/B/C).
    ///
    /// # Errors
    ///
    /// Propagates batch packing and training failures; returns
    /// [`CoreError::BadInput`] when the split leaves either side empty.
    pub fn train_validated(
        &mut self,
        data: &Dataset,
        val_every: usize,
        patience: usize,
    ) -> Result<gnn::train::ValidatedReport, CoreError> {
        let batches = data.batches()?;
        if val_every < 2 || batches.len() < val_every {
            return Err(CoreError::BadInput(format!(
                "cannot hold out every {val_every}-th of {} batches",
                batches.len()
            )));
        }
        let (mut train_b, mut val_b) = (Vec::new(), Vec::new());
        for (i, b) in batches.into_iter().enumerate() {
            if i % val_every == 0 {
                val_b.push(b);
            } else {
                train_b.push(b);
            }
        }
        let report = gnn::train::train_with_early_stopping(
            &mut self.model,
            &train_b,
            &val_b,
            &TrainConfig {
                epochs: self.cfg.epochs,
                lr: self.cfg.lr,
                seed: 1,
                grad_clip: Some(5.0),
                accum: 1,
                backend: TrainBackend::from_env(),
            },
            patience,
        )?;
        self.scalers = Some(Scalers {
            node: data.node_scaler.clone(),
            path: data.path_scaler.clone(),
            target: data.target_scaler.clone(),
        });
        self.rebuild_infer();
        Ok(report)
    }

    fn scalers(&self) -> Result<&Scalers, CoreError> {
        self.scalers.as_ref().ok_or(CoreError::NotTrained)
    }

    /// Continues training an already-trained estimator on new labelled
    /// samples (e.g. a freshly routed design), reusing the original
    /// feature/target scalers so representations stay consistent — the
    /// incremental-adaptation flow for the paper's "inductive model
    /// shared across designs".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotTrained`] before initial training and
    /// propagates training failures.
    pub fn fine_tune(
        &mut self,
        samples: &[crate::dataset::Sample],
        epochs: usize,
        lr: f32,
    ) -> Result<TrainReport, CoreError> {
        let sc = self.scalers()?.clone();
        let batches: Result<Vec<gnn::GraphBatch>, CoreError> = samples
            .iter()
            .map(|s| {
                let x = sc.node.transform(&s.node_feats);
                let pf = s
                    .path_feats
                    .iter()
                    .map(|f| sc.path.transform(f))
                    .collect();
                let t = sc.target.transform(&s.targets_ps);
                gnn::GraphBatch::build(&s.net, x, pf, Some(t)).map_err(CoreError::from)
            })
            .collect();
        let report = train(
            &mut self.model,
            &batches?,
            &TrainConfig {
                epochs,
                lr,
                seed: 2,
                grad_clip: Some(5.0),
                accum: 1,
                backend: TrainBackend::from_env(),
            },
        )?;
        self.rebuild_infer();
        Ok(report)
    }

    /// Predicts the slew and delay of every wire path of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotTrained`] before training; propagates
    /// feature-analysis failures.
    pub fn predict_net(
        &self,
        net: &RcNet,
        ctx: &NetContext,
    ) -> Result<Vec<PathEstimate>, CoreError> {
        let batch = self.prepare_batch(net, ctx)?;
        let pred = self.forward_single(&batch);
        self.estimates_from(net, pred)
    }

    /// Extracts, scales and clamps the features of one net into a
    /// model-ready batch.
    fn prepare_batch(&self, net: &RcNet, ctx: &NetContext) -> Result<GraphBatch, CoreError> {
        let sc = self.scalers()?;
        let wa = elmore::WireAnalysis::new(net)?;
        // Inference inputs far outside the training distribution are
        // clamped at ±8 sigma — a deep ReLU stack extrapolates
        // multiplicatively, so an unclamped outlier net would produce
        // absurd timing instead of a saturated estimate.
        let clamp = |mut m: Mat| {
            for v in m.as_mut_slice() {
                *v = v.clamp(-8.0, 8.0);
            }
            m
        };
        let x = clamp(sc.node.transform(&crate::features::node_features(net, &wa, ctx)));
        let pf = crate::features::all_path_features(net, &wa, ctx)
            .iter()
            .map(|f| clamp(sc.path.transform(f)))
            .collect();
        Ok(gnn::GraphBatch::build(net, x, pf, None)?)
    }

    /// Un-scales a raw `p x 2` prediction into per-path estimates.
    fn estimates_from(&self, net: &RcNet, pred: Mat) -> Result<Vec<PathEstimate>, CoreError> {
        let sc = self.scalers()?;
        // Predictions are clamped at ±10 sigma of the training targets
        // before un-scaling.
        let raw = sc.target.inverse(&clamp_pred(pred));
        Ok(net
            .paths()
            .iter()
            .enumerate()
            .map(|(i, p)| PathEstimate {
                sink: p.sink,
                slew: Seconds::from_ps(raw.get(i, 0).max(0.0) as f64),
                delay: Seconds::from_ps(raw.get(i, 1).max(0.0) as f64),
            })
            .collect())
    }

    /// Forwards one batch: tape-free when compiled and selected, with
    /// the tape forward as both oracle and fallback.
    fn forward_single(&self, batch: &GraphBatch) -> Mat {
        if let (ForwardBackend::TapeFree, Some(infer)) = (self.backend, &self.infer) {
            match ARENA.with(|a| infer.forward_one(batch, &mut a.borrow_mut())) {
                Ok(out) => return out,
                Err(e) => {
                    obs::counter("infer.fallbacks").inc();
                    obs::event!(
                        obs::Level::Warn,
                        "infer",
                        "tape-free forward failed; using tape fallback",
                        error = &e.to_string(),
                    );
                }
            }
        }
        self.tape_forward(batch)
    }

    /// The tape forward, timed into `infer.unpacked_seconds` so the
    /// packed/unpacked comparison is visible in run reports.
    fn tape_forward(&self, batch: &GraphBatch) -> Mat {
        let t0 = Instant::now();
        let out = self.model.predict(batch);
        obs::histogram("infer.unpacked_seconds").observe(t0.elapsed().as_secs_f64());
        out
    }

    /// Forwards many prepared batches, packing contiguous runs into
    /// cross-net chunks on the tape-free path. Infallible by design: a
    /// chunk whose pack or packed forward fails (e.g. one poisoned
    /// graph) degrades to per-graph tape forwards for that chunk only —
    /// sibling requests are never dropped.
    fn forward_many(&self, batches: &[GraphBatch]) -> Vec<Mat> {
        let compiled = match (self.backend, &self.infer) {
            (ForwardBackend::TapeFree, Some(infer)) => infer,
            _ => {
                return par::par_map("predict.tape", batches, |b| self.tape_forward(b));
            }
        };
        // Greedy contiguous chunking under node and graph budgets.
        let mut chunks: Vec<&[GraphBatch]> = Vec::new();
        let mut start = 0;
        let mut nodes = 0;
        for (i, b) in batches.iter().enumerate() {
            let n = b.node_count();
            if i > start && (nodes + n > PACK_MAX_NODES || i - start >= PACK_MAX_GRAPHS) {
                chunks.push(&batches[start..i]);
                start = i;
                nodes = 0;
            }
            nodes += n;
        }
        if start < batches.len() {
            chunks.push(&batches[start..]);
        }
        let per_chunk = par::par_map("predict.pack", &chunks, |chunk| {
            self.forward_chunk(compiled, chunk)
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Packs one chunk and runs the batched forward, splitting the
    /// packed output back into per-graph predictions; falls back to
    /// per-graph tape forwards on any failure.
    fn forward_chunk(&self, compiled: &InferenceModel, chunk: &[GraphBatch]) -> Vec<Mat> {
        let refs: Vec<&GraphBatch> = chunk.iter().collect();
        let packed_out = PackedBatch::pack(&refs).and_then(|packed| {
            let out = ARENA.with(|a| compiled.forward_packed(&packed, &mut a.borrow_mut()))?;
            Ok((0..packed.graph_count())
                .map(|s| {
                    let (p0, p1) = packed.path_range(s);
                    let mut m = Mat::zeros(p1 - p0, 2);
                    m.as_mut_slice()
                        .copy_from_slice(&out.as_slice()[p0 * 2..p1 * 2]);
                    m
                })
                .collect())
        });
        match packed_out {
            Ok(outs) => outs,
            Err(e) => {
                obs::counter("infer.fallbacks").inc();
                obs::event!(
                    obs::Level::Warn,
                    "infer",
                    "packed forward failed; chunk degrades to tape",
                    error = &e.to_string(),
                    graphs = &chunk.len().to_string(),
                );
                chunk.iter().map(|b| self.tape_forward(b)).collect()
            }
        }
    }

    /// Batch inference over many nets (the paper's 200 k-net use case).
    ///
    /// Feature extraction runs per net in parallel; on the tape-free
    /// backend the forwards then run as packed cross-net chunks, which
    /// is where the serve micro-batch and ECO dirty-cone throughput
    /// comes from. Results (and the first-failure error) are identical
    /// to calling [`WireTimingEstimator::predict_net`] in a loop.
    ///
    /// # Errors
    ///
    /// Fails on the first net whose features cannot be extracted.
    pub fn predict_many<'a, I>(&self, nets: I) -> Result<Vec<Vec<PathEstimate>>, CoreError>
    where
        I: IntoIterator<Item = (&'a RcNet, &'a NetContext)>,
    {
        // The in-order try_par_map keeps both the result order and the
        // first-failing-net error identical to the serial loop for any
        // `PAR_THREADS` setting.
        let pairs: Vec<(&RcNet, &NetContext)> = nets.into_iter().collect();
        let batches =
            par::try_par_map("predict.features", &pairs, |&(net, ctx)| {
                self.prepare_batch(net, ctx)
            })?;
        let preds = self.forward_many(&batches);
        pairs
            .iter()
            .zip(preds)
            .map(|(&(net, _), pred)| self.estimates_from(net, pred))
            .collect()
    }

    /// Parses a SPEF document and predicts every wire path of every net
    /// in one call, using a [`NetContext::generic`] driving context per
    /// net — the serving-layer convenience. Callers that know the real
    /// driver and loads should build a [`NetContext`] and use
    /// [`WireTimingEstimator::predict_net`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] on malformed SPEF,
    /// [`CoreError::NotTrained`] before training, and propagates
    /// feature-analysis failures.
    pub fn predict_spef(&self, spef_text: &str) -> Result<Vec<NetPrediction>, CoreError> {
        let doc =
            rcnet::spef::parse(spef_text).map_err(|e| CoreError::BadInput(e.to_string()))?;
        // One predict_many over the whole document so the nets share
        // packed forward chunks; the lowest-index-error contract keeps
        // failures identical to the per-net loop.
        let ctxs: Vec<NetContext> = doc.nets.iter().map(NetContext::generic).collect();
        let many = self.predict_many(doc.nets.iter().zip(ctxs.iter()))?;
        Ok(doc
            .nets
            .iter()
            .zip(many)
            .map(|(net, estimates)| NetPrediction {
                sinks: estimates
                    .iter()
                    .map(|p| net.node(p.sink).name.clone())
                    .collect(),
                net: net.name().to_string(),
                estimates,
            })
            .collect())
    }

    /// Saves weights, scalers and configuration to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotTrained`] before training and propagates
    /// I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CoreError> {
        let sc = self.scalers()?;
        let mut out = ParamSet::new();
        for (name, mat) in self.model.param_set().iter() {
            out.add(name, mat.clone());
        }
        out.add("__config", self.cfg.to_mat());
        out.add("__scaler_node", sc.node.to_mat());
        out.add("__scaler_path", sc.path.to_mat());
        out.add("__scaler_target", sc.target.to_mat());
        tensor::serialize::save_file(&out, path)?;
        Ok(())
    }

    /// Loads an estimator previously written by
    /// [`WireTimingEstimator::save`].
    ///
    /// Checkpoint files are treated as untrusted input (a serving layer
    /// hot-reloads them at runtime): every failure mode — unreadable or
    /// truncated file, wrong magic, corrupt configuration, scaler or
    /// parameter shape mismatch — is reported as
    /// [`CoreError::Checkpoint`]; this function never panics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] as described above.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CoreError> {
        let loaded = tensor::serialize::load_file(path)
            .map_err(|e| CoreError::Checkpoint(format!("unreadable checkpoint: {e}")))?;
        let find = |name: &str| -> Result<&Mat, CoreError> {
            loaded
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, m)| m)
                .ok_or_else(|| CoreError::Checkpoint(format!("missing entry `{name}`")))
        };
        let cfg = EstimatorConfig::from_mat(find("__config")?)?;
        let scaler = |name: &str| -> Result<Scaler, CoreError> {
            Scaler::try_from_mat(find(name)?)
                .map_err(|e| CoreError::Checkpoint(format!("entry `{name}`: {e}")))
        };
        let scalers = Scalers {
            node: scaler("__scaler_node")?,
            path: scaler("__scaler_path")?,
            target: scaler("__scaler_target")?,
        };
        if scalers.node.width() != NODE_DIM
            || scalers.path.width() != PATH_DIM
            || scalers.target.width() != 2
        {
            return Err(CoreError::Checkpoint(format!(
                "scaler widths {}/{}/{} do not match feature dims {NODE_DIM}/{PATH_DIM}/2",
                scalers.node.width(),
                scalers.path.width(),
                scalers.target.width()
            )));
        }
        let mut est = WireTimingEstimator::new(&cfg, 0);
        let n_model = est.model.param_set().len();
        if loaded.len() < n_model {
            return Err(CoreError::Checkpoint(format!(
                "file has {} parameters, model needs {n_model}",
                loaded.len()
            )));
        }
        for i in 0..n_model {
            let expect = est.model.param_set().name(i).to_string();
            if loaded.name(i) != expect {
                return Err(CoreError::Checkpoint(format!(
                    "parameter {i} is `{}`, expected `{expect}`",
                    loaded.name(i)
                )));
            }
            if loaded.get(i).shape() != est.model.param_set().get(i).shape() {
                return Err(CoreError::Checkpoint(format!(
                    "parameter `{expect}` has shape {:?}, expected {:?}",
                    loaded.get(i).shape(),
                    est.model.param_set().get(i).shape()
                )));
            }
            *est.model.param_set_mut().get_mut(i) = loaded.get(i).clone();
        }
        est.scalers = Some(scalers);
        est.rebuild_infer();
        Ok(est)
    }
}

fn clamp_pred(mut m: Mat) -> Mat {
    for v in m.as_mut_slice() {
        *v = v.clamp(-10.0, 10.0);
    }
    m
}

impl sta::WireTimer for WireTimingEstimator {
    fn path_timing(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), sta::StaError> {
        let mut ctx = NetContext::generic(net);
        ctx.input_slew = input_slew;
        self.timing_from_ctx(net, path_idx, &ctx)
    }

    fn path_timing_with_driver(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
        driver: Option<&sta::cells::Cell>,
    ) -> Result<(Seconds, Seconds), sta::StaError> {
        let ctx = match driver {
            Some(cell) => NetContext::for_driver(net, cell, input_slew),
            None => {
                let mut c = NetContext::generic(net);
                c.input_slew = input_slew;
                c
            }
        };
        self.timing_from_ctx(net, path_idx, &ctx)
    }
}

impl WireTimingEstimator {
    fn timing_from_ctx(
        &self,
        net: &RcNet,
        path_idx: usize,
        ctx: &NetContext,
    ) -> Result<(Seconds, Seconds), sta::StaError> {
        let est = self
            .predict_net(net, ctx)
            .map_err(|e| sta::StaError::Wire(e.to_string()))?;
        let p = est
            .get(path_idx)
            .ok_or_else(|| sta::StaError::Wire(format!("path {path_idx} out of range")))?;
        Ok((p.delay, p.slew))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use netgen::nets::{NetConfig, NetGenerator};

    fn nets(n: usize, seed: u64) -> Vec<RcNet> {
        let cfg = NetConfig {
            nodes_min: 4,
            nodes_max: 10,
            ..Default::default()
        };
        let mut g = NetGenerator::new(seed, cfg);
        (0..n).map(|i| g.net(format!("n{i}"), i % 2 == 0)).collect()
    }

    fn quick_cfg() -> EstimatorConfig {
        EstimatorConfig {
            gnn_layers: 2,
            attn_layers: 1,
            hidden: 8,
            heads: 2,
            mlp_hidden: 8,
            epochs: 15,
            lr: 5e-3,
        }
    }

    #[test]
    fn untrained_estimator_refuses_to_predict() {
        let est = WireTimingEstimator::new(&quick_cfg(), 1);
        assert!(!est.is_trained());
        let n = nets(1, 2);
        let ctx = NetContext::generic(&n[0]);
        assert!(matches!(
            est.predict_net(&n[0], &ctx),
            Err(CoreError::NotTrained)
        ));
        assert!(matches!(
            est.save("/tmp/never.bin"),
            Err(CoreError::NotTrained)
        ));
    }

    #[test]
    fn train_then_predict_in_physical_range() {
        let train_nets = nets(12, 3);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        let report = est.train(&ds).unwrap();
        assert!(report.final_loss().is_finite());
        assert!(est.is_trained());

        let probe = &nets(14, 3)[13];
        let ctx = b.context_for(probe);
        let pred = est.predict_net(probe, &ctx).unwrap();
        assert_eq!(pred.len(), probe.paths().len());
        for p in &pred {
            assert!(p.slew.value() >= 0.0 && p.slew.pico_seconds() < 1000.0);
            assert!(p.delay.value() >= 0.0 && p.delay.pico_seconds() < 1000.0);
        }
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let train_nets = nets(8, 5);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();

        let dir = std::env::temp_dir().join("gnntrans_test_model.bin");
        est.save(&dir).unwrap();
        let loaded = WireTimingEstimator::load(&dir).unwrap();
        let probe = &train_nets[0];
        let ctx = b.context_for(probe);
        let a = est.predict_net(probe, &ctx).unwrap();
        let c = loaded.predict_net(probe, &ctx).unwrap();
        assert_eq!(a, c);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn wire_timer_impl_works() {
        use sta::WireTimer;
        let train_nets = nets(8, 6);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();
        let (d, s) = est
            .path_timing(&train_nets[0], 0, Seconds::from_ps(20.0))
            .unwrap();
        assert!(d.value() >= 0.0);
        assert!(s.value() >= 0.0);
        assert!(est
            .path_timing(&train_nets[0], 999, Seconds::from_ps(20.0))
            .is_err());
    }

    #[test]
    fn validated_training_restores_best_epoch() {
        let train_nets = nets(14, 31);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        let report = est.train_validated(&ds, 4, 5).unwrap();
        assert!(est.is_trained());
        assert!(report.best_epoch < report.val_losses.len());
        // Rejects degenerate splits.
        let mut est2 = WireTimingEstimator::new(&quick_cfg(), 7);
        assert!(est2.train_validated(&ds, 1, 5).is_err());
        assert!(est2.train_validated(&ds, 100, 5).is_err());
    }

    #[test]
    fn fine_tune_improves_on_shifted_data() {
        // Train on small nets, fine-tune on a batch of larger nets;
        // the loss on the new distribution must drop.
        let small = nets(10, 21);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&small).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();

        let big_cfg = netgen::nets::NetConfig {
            nodes_min: 20,
            nodes_max: 30,
            ..Default::default()
        };
        let mut g = NetGenerator::new(77, big_cfg);
        let big: Vec<RcNet> = (0..8).map(|i| g.net(format!("big{i}"), i % 2 == 0)).collect();
        let big_samples: Vec<_> = big.iter().map(|n| b.sample_for(n).unwrap()).collect();

        let report = est.fine_tune(&big_samples, 10, 2e-3).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
        // Untrained estimators refuse to fine-tune.
        let mut fresh = WireTimingEstimator::new(&quick_cfg(), 7);
        assert!(matches!(
            fresh.fine_tune(&big_samples, 2, 1e-3),
            Err(CoreError::NotTrained)
        ));
    }

    #[test]
    fn predict_spef_parses_and_predicts_every_net() {
        let train_nets = nets(10, 9);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();

        let probe = nets(3, 41);
        let text = rcnet::spef::write(&rcnet::spef::SpefHeader::default(), &probe);
        let preds = est.predict_spef(&text).unwrap();
        assert_eq!(preds.len(), probe.len());
        // Sink names refer to the round-tripped document's nets (node
        // ordering is not preserved through SPEF), so compare there.
        let doc = rcnet::spef::parse(&text).unwrap();
        for (pred, net) in preds.iter().zip(&doc.nets) {
            assert_eq!(pred.net, net.name());
            assert_eq!(pred.estimates.len(), net.paths().len());
            assert_eq!(pred.sinks.len(), pred.estimates.len());
            for (sink, p) in pred.sinks.iter().zip(&pred.estimates) {
                assert_eq!(sink, &net.node(p.sink).name);
                assert!(p.slew.value().is_finite() && p.slew.value() >= 0.0);
                assert!(p.delay.value().is_finite() && p.delay.value() >= 0.0);
            }
        }
        // Malformed SPEF is a typed error, not a panic.
        assert!(matches!(
            est.predict_spef("*D_NET oops"),
            Err(CoreError::BadInput(_))
        ));
        // Untrained estimators still refuse.
        let fresh = WireTimingEstimator::new(&quick_cfg(), 7);
        assert!(matches!(
            fresh.predict_spef(&text),
            Err(CoreError::NotTrained)
        ));
    }

    /// A trained estimator saved to a temp file, for corruption tests.
    fn saved_checkpoint(tag: &str) -> std::path::PathBuf {
        let train_nets = nets(8, 5);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();
        let path = std::env::temp_dir().join(format!("gnntrans_corrupt_{tag}.bin"));
        est.save(&path).unwrap();
        path
    }

    #[test]
    fn load_rejects_truncated_checkpoint() {
        let path = saved_checkpoint("trunc");
        let bytes = std::fs::read(&path).unwrap();
        for keep in [0, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(
                    WireTimingEstimator::load(&path),
                    Err(CoreError::Checkpoint(_))
                ),
                "truncation at {keep} must be a Checkpoint error"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_rejects_bad_magic_and_missing_file() {
        let path = saved_checkpoint("magic");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..4].copy_from_slice(b"NOPE");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            WireTimingEstimator::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            WireTimingEstimator::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
    }

    #[test]
    fn load_rejects_shape_and_config_corruption() {
        use tensor::ParamSet;
        let path = saved_checkpoint("shape");
        let loaded = tensor::serialize::load_file(&path).unwrap();

        // Rewrite the checkpoint with one corruption at a time.
        let rewrite = |mutate: &dyn Fn(&str, &Mat) -> Mat| {
            let mut out = ParamSet::new();
            for (name, mat) in loaded.iter() {
                out.add(name, mutate(name, mat));
            }
            tensor::serialize::save_file(&out, &path).unwrap();
        };

        // A weight matrix with the wrong shape.
        rewrite(&|name, mat| {
            if name == "__config" || name.starts_with("__scaler") {
                mat.clone()
            } else {
                Mat::zeros(mat.rows() + 1, mat.cols())
            }
        });
        assert!(matches!(
            WireTimingEstimator::load(&path),
            Err(CoreError::Checkpoint(_))
        ));

        // A config whose dimensions are garbage.
        rewrite(&|name, mat| {
            if name == "__config" {
                Mat::row_vector(vec![f32::NAN, 1.0, 8.0, 2.0, 8.0, 15.0, 5e-3])
            } else {
                mat.clone()
            }
        });
        assert!(matches!(
            WireTimingEstimator::load(&path),
            Err(CoreError::Checkpoint(_))
        ));

        // heads not dividing hidden.
        rewrite(&|name, mat| {
            if name == "__config" {
                Mat::row_vector(vec![2.0, 1.0, 8.0, 3.0, 8.0, 15.0, 5e-3])
            } else {
                mat.clone()
            }
        });
        assert!(matches!(
            WireTimingEstimator::load(&path),
            Err(CoreError::Checkpoint(_))
        ));

        // A scaler with a zero std column.
        rewrite(&|name, mat| {
            if name == "__scaler_node" {
                let mut m = mat.clone();
                m.set(1, 0, 0.0);
                m
            } else {
                mat.clone()
            }
        });
        assert!(matches!(
            WireTimingEstimator::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tape_free_backend_matches_tape_oracle() {
        let train_nets = nets(10, 13);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();
        assert_eq!(est.forward_backend(), ForwardBackend::TapeFree);

        let probes = nets(6, 99);
        let ctxs: Vec<NetContext> = probes.iter().map(|n| b.context_for(n)).collect();
        let pairs: Vec<(&RcNet, &NetContext)> = probes.iter().zip(ctxs.iter()).collect();
        let fast = est.predict_many(pairs.iter().copied()).unwrap();

        // The oracle switch must reproduce the same estimates exactly:
        // the tape-free ops mirror the tape's accumulation order.
        let mut oracle = est.clone();
        oracle.set_forward_backend(ForwardBackend::Tape);
        let slow = oracle.predict_many(pairs.iter().copied()).unwrap();
        assert_eq!(fast, slow);

        // And packed predict_many equals the per-net loop.
        for ((net, ctx), packed) in pairs.iter().zip(&fast) {
            assert_eq!(&est.predict_net(net, ctx).unwrap(), packed);
        }
    }

    #[test]
    fn poisoned_compiled_model_falls_back_without_dropping_siblings() {
        let train_nets = nets(10, 17);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&train_nets).unwrap();
        let mut est = WireTimingEstimator::new(&quick_cfg(), 7);
        est.train(&ds).unwrap();

        let probes = nets(5, 55);
        let ctxs: Vec<NetContext> = probes.iter().map(|n| b.context_for(n)).collect();
        let pairs: Vec<(&RcNet, &NetContext)> = probes.iter().zip(ctxs.iter()).collect();
        let want = est.predict_many(pairs.iter().copied()).unwrap();

        // Poison the compiled model: a stack built for a different node
        // width makes every packed forward fail validation. The batch
        // must degrade to the tape path and still answer every net.
        let wrong = GnnTrans::new(
            &GnnTransConfig {
                node_dim: NODE_DIM + 1,
                path_dim: PATH_DIM,
                hidden: 8,
                gnn_layers: 1,
                attn_layers: 1,
                heads: 2,
                mlp_hidden: 8,
                ..GnnTransConfig::default()
            },
            1,
        );
        let mut poisoned = est.clone();
        poisoned.infer = Some(Arc::new(InferenceModel::compile(&wrong)));
        let before = obs::counter("infer.fallbacks").get();
        let got = poisoned.predict_many(pairs.iter().copied()).unwrap();
        assert_eq!(got, want, "fallback must reproduce the tape estimates");
        assert!(
            obs::counter("infer.fallbacks").get() > before,
            "fallback path must be observable"
        );
        // Single-net prediction degrades identically.
        let single = poisoned.predict_net(&probes[0], &ctxs[0]).unwrap();
        assert_eq!(single, want[0]);
    }

    #[test]
    fn plans_have_expected_depths() {
        assert_eq!(Plan::A.layer_split(), (25, 5));
        assert_eq!(Plan::B.layer_split(), (20, 10));
        assert_eq!(Plan::C.layer_split(), (15, 15));
        assert_eq!(Plan::B.scaled_split(5), (4, 2));
        let full = EstimatorConfig::plan_b();
        assert_eq!((full.gnn_layers, full.attn_layers), (20, 10));
        let small = EstimatorConfig::plan_c_small();
        assert_eq!((small.gnn_layers, small.attn_layers), (3, 3));
    }
}
