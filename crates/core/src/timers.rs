//! [`sta::WireTimer`] adapters for the golden simulator and the
//! analytical Elmore engine.
//!
//! Both cache per-net results (keyed by net name and input slew) because
//! arrival propagation queries one path at a time while the engines
//! naturally produce all paths of a net at once.

use elmore::WireAnalysis;
use rcnet::{RcNet, Seconds};
use rcsim::{GoldenTimer, PathTiming, SiMode};
use sta::{StaError, WireTimer};
use std::cell::RefCell;
use std::collections::HashMap;

/// Wire timer backed by the golden transient simulator (the "sign-off"
/// reference in arrival-time comparisons).
#[derive(Debug)]
pub struct GoldenWireTimer {
    timer: GoldenTimer,
    si: bool,
    cache: RefCell<HashMap<(String, u64), Vec<PathTiming>>>,
}

impl GoldenWireTimer {
    /// Creates the adapter; `si` enables worst-case aggressors on coupled
    /// nets.
    pub fn new(timer: GoldenTimer, si: bool) -> Self {
        GoldenWireTimer {
            timer,
            si,
            cache: RefCell::new(HashMap::new()),
        }
    }

    fn si_mode(&self, net: &RcNet, input_slew: Seconds) -> SiMode {
        if self.si && !net.couplings().is_empty() {
            SiMode::WorstCase {
                aggressor_ramp: input_slew,
            }
        } else {
            SiMode::Off
        }
    }
}

impl WireTimer for GoldenWireTimer {
    fn path_timing(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), StaError> {
        self.timing_with(net, path_idx, input_slew, self.timer.clone())
    }

    fn path_timing_with_driver(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
        driver: Option<&sta::cells::Cell>,
    ) -> Result<(Seconds, Seconds), StaError> {
        let timer = match driver {
            Some(cell) => self.timer.clone().with_drive(cell.drive_res()),
            None => self.timer.clone(),
        };
        self.timing_with(net, path_idx, input_slew, timer)
    }
}

impl GoldenWireTimer {
    fn timing_with(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
        timer: rcsim::GoldenTimer,
    ) -> Result<(Seconds, Seconds), StaError> {
        let key = (
            format!("{}@{}", net.name(), timer.r_drive().value()),
            input_slew.value().to_bits(),
        );
        if !self.cache.borrow().contains_key(&key) {
            let timing = timer
                .time_net(net, input_slew, self.si_mode(net, input_slew))
                .map_err(|e| StaError::Wire(e.to_string()))?;
            self.cache.borrow_mut().insert(key.clone(), timing);
        }
        let cache = self.cache.borrow();
        let timing = cache.get(&key).expect("inserted above");
        let p = timing
            .get(path_idx)
            .ok_or_else(|| StaError::Wire(format!("path {path_idx} out of range")))?;
        Ok((p.delay, p.slew))
    }
}

/// Wire timer backed by closed-form moment metrics: D2M for delay, PERI
/// slew for slew. The zero-training-cost analytical baseline.
#[derive(Debug, Default)]
pub struct ElmoreWireTimer {
    cache: RefCell<HashMap<String, WireAnalysis>>,
}

impl ElmoreWireTimer {
    /// Creates the adapter.
    pub fn new() -> Self {
        ElmoreWireTimer::default()
    }
}

impl WireTimer for ElmoreWireTimer {
    fn path_timing(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), StaError> {
        if !self.cache.borrow().contains_key(net.name()) {
            let wa = WireAnalysis::new(net).map_err(|e| StaError::Wire(e.to_string()))?;
            self.cache
                .borrow_mut()
                .insert(net.name().to_string(), wa);
        }
        let cache = self.cache.borrow();
        let wa = cache.get(net.name()).expect("inserted above");
        let path = net
            .paths()
            .get(path_idx)
            .ok_or_else(|| StaError::Wire(format!("path {path_idx} out of range")))?;
        Ok((wa.path_d2m(path), wa.path_slew(path, input_slew)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn net() -> RcNet {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads::from_ff(1.0));
        let k = b.sink("k", Farads::from_ff(10.0));
        b.resistor(s, k, Ohms(500.0));
        b.build().unwrap()
    }

    #[test]
    fn golden_timer_adapter_returns_positive_timing() {
        let t = GoldenWireTimer::new(GoldenTimer::default(), true);
        let (d, s) = t.path_timing(&net(), 0, Seconds::from_ps(20.0)).unwrap();
        assert!(d.value() > 0.0);
        assert!(s.value() > 0.0);
        // Second query hits the cache and agrees.
        let (d2, s2) = t.path_timing(&net(), 0, Seconds::from_ps(20.0)).unwrap();
        assert_eq!((d, s), (d2, s2));
    }

    #[test]
    fn elmore_adapter_tracks_golden_roughly() {
        let n = net();
        let golden = GoldenWireTimer::new(GoldenTimer::default(), false);
        let elm = ElmoreWireTimer::new();
        let slew = Seconds::from_ps(20.0);
        let (dg, _) = golden.path_timing(&n, 0, slew).unwrap();
        let (de, _) = elm.path_timing(&n, 0, slew).unwrap();
        let ratio = de.value() / dg.value();
        assert!(
            (0.2..5.0).contains(&ratio),
            "Elmore-based delay {de} vs golden {dg}"
        );
    }

    #[test]
    fn out_of_range_paths_rejected() {
        let n = net();
        let golden = GoldenWireTimer::new(GoldenTimer::default(), false);
        assert!(golden.path_timing(&n, 3, Seconds::from_ps(10.0)).is_err());
        let elm = ElmoreWireTimer::new();
        assert!(elm.path_timing(&n, 3, Seconds::from_ps(10.0)).is_err());
    }
}
