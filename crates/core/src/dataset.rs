//! Labelled dataset construction: contexts, golden labels, batches.
//!
//! For every net the builder (deterministically, from the net's name)
//! assigns a driving cell, load cells and an input slew, extracts the
//! TABLE I features, and runs the golden transient simulator — in SI mode
//! whenever the net has coupling capacitors — to obtain the slew/delay
//! labels. Scalers are fitted over the whole set and applied when the
//! packed [`GraphBatch`]es are produced.

use crate::features::{self, LoadInfo, NetContext, NODE_DIM, PATH_DIM};
use crate::scaler::Scaler;
use crate::CoreError;
use elmore::WireAnalysis;
use gnn::GraphBatch;
use rcnet::{RcNet, Seconds};
use rcsim::{GoldenTimer, SiMode, SolverKind};
use sta::cells::CellLibrary;
use tensor::init::InitRng;
use tensor::Mat;

/// One labelled net.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The parasitic network (owned; adjacency is rebuilt per batch).
    pub net: RcNet,
    /// The circuit context the labels were generated under.
    pub ctx: NetContext,
    /// Raw (unscaled) node features.
    pub node_feats: Mat,
    /// Raw path feature rows.
    pub path_feats: Vec<Mat>,
    /// Golden labels, `p x 2`, in picoseconds (slew, delay).
    pub targets_ps: Mat,
    /// Manual feature rows for the DAC'20 baseline, one per path.
    pub dac20_rows: Vec<Vec<f64>>,
}

impl Sample {
    /// Whether the underlying net is a tree.
    pub fn is_tree(&self) -> bool {
        self.net.is_tree()
    }
}

/// A labelled dataset with fitted scalers.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
    /// Node-feature scaler.
    pub node_scaler: Scaler,
    /// Path-feature scaler.
    pub path_scaler: Scaler,
    /// Target scaler (over the `p x 2` picosecond labels).
    pub target_scaler: Scaler,
}

impl Dataset {
    /// Fits scalers over `samples` and assembles the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] when `samples` is empty.
    pub fn from_samples(samples: Vec<Sample>) -> Result<Self, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::BadInput("no samples".into()));
        }
        let node_scaler = Scaler::fit(samples.iter().map(|s| &s.node_feats));
        let path_mats: Vec<&Mat> = samples.iter().flat_map(|s| s.path_feats.iter()).collect();
        let path_scaler = Scaler::fit(path_mats.iter().copied());
        let target_scaler = Scaler::fit(samples.iter().map(|s| &s.targets_ps));
        Ok(Dataset {
            samples,
            node_scaler,
            path_scaler,
            target_scaler,
        })
    }

    /// Packs every sample into a scaled, labelled [`GraphBatch`].
    ///
    /// # Errors
    ///
    /// Propagates batch-validation failures.
    pub fn batches(&self) -> Result<Vec<GraphBatch>, CoreError> {
        self.samples
            .iter()
            .map(|s| {
                let x = self.node_scaler.transform(&s.node_feats);
                let pf = s
                    .path_feats
                    .iter()
                    .map(|f| self.path_scaler.transform(f))
                    .collect();
                let t = self.target_scaler.transform(&s.targets_ps);
                GraphBatch::build(&s.net, x, pf, Some(t)).map_err(CoreError::from)
            })
            .collect()
    }

    /// Packs a single (possibly unseen) net into a scaled, unlabelled
    /// batch using this dataset's scalers.
    ///
    /// # Errors
    ///
    /// Propagates feature-analysis and batch-validation failures.
    pub fn batch_for(&self, net: &RcNet, ctx: &NetContext) -> Result<GraphBatch, CoreError> {
        let wa = WireAnalysis::new(net)?;
        let x = self.node_scaler.transform(&features::node_features(net, &wa, ctx));
        let pf = features::all_path_features(net, &wa, ctx)
            .iter()
            .map(|f| self.path_scaler.transform(f))
            .collect();
        GraphBatch::build(net, x, pf, None).map_err(CoreError::from)
    }
}

/// Builds labelled samples from raw nets.
#[derive(Debug)]
pub struct DatasetBuilder {
    seed: u64,
    lib: CellLibrary,
    vdd: f64,
    sim_steps: usize,
    solver: SolverKind,
}

impl DatasetBuilder {
    /// Creates a builder; `seed` controls the per-net context assignment.
    pub fn new(seed: u64) -> Self {
        DatasetBuilder {
            seed,
            lib: CellLibrary::builtin(),
            vdd: 0.8,
            sim_steps: 2500,
            solver: SolverKind::default(),
        }
    }

    /// Overrides the golden-simulation step count (accuracy vs speed).
    pub fn with_sim_steps(mut self, steps: usize) -> Self {
        self.sim_steps = steps;
        self
    }

    /// Selects the golden simulator's linear solver backend (sparse LDLᵀ
    /// by default; dense LU is the slow test oracle).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// The cell library used for context assignment.
    pub fn library(&self) -> &CellLibrary {
        &self.lib
    }

    fn rng_for(&self, name: &str) -> InitRng {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed.wrapping_mul(0x100000001b3);
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        InitRng::new(h)
    }

    /// The deterministic circuit context assigned to `net` (same result
    /// at dataset build time and at inference time).
    pub fn context_for(&self, net: &RcNet) -> NetContext {
        let mut rng = self.rng_for(net.name());
        let drivers = ["INV_X2", "INV_X4", "BUF_X2", "BUF_X4"];
        let drive = self
            .lib
            .cell(drivers[(rng.next_u64() % drivers.len() as u64) as usize])
            .expect("builtin cell");
        let input_slew = Seconds::from_ps(8.0 + 80.0 * (rng.uniform() * 0.5 + 0.5) as f64);
        let load_cells = ["INV_X1", "BUF_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"];
        let loads = net
            .sinks()
            .iter()
            .map(|_| {
                let cell = self
                    .lib
                    .cell(load_cells[(rng.next_u64() % load_cells.len() as u64) as usize])
                    .expect("builtin cell");
                LoadInfo {
                    drive: cell.drive(),
                    func: cell.func().encode(),
                    ceff: cell.pin_cap().value(),
                }
            })
            .collect();
        NetContext {
            input_slew,
            drive_strength: drive.drive(),
            drive_func: drive.func().encode(),
            drive_res: drive.drive_res(),
            loads,
        }
    }

    /// Builds one labelled sample (features + golden labels).
    ///
    /// # Errors
    ///
    /// Propagates golden-simulation and analysis failures.
    pub fn sample_for(&self, net: &RcNet) -> Result<Sample, CoreError> {
        let _span = obs::span("sample");
        let ctx = self.context_for(net);
        let (node_feats, path_feats) = {
            let _s = obs::span("features");
            let wa = WireAnalysis::new(net)?;
            let node_feats = features::node_features(net, &wa, &ctx);
            let path_feats = features::all_path_features(net, &wa, &ctx);
            (node_feats, path_feats)
        };
        debug_assert_eq!(node_feats.cols(), NODE_DIM);
        debug_assert!(path_feats.iter().all(|f| f.cols() == PATH_DIM));

        // Golden labels: SI mode when the net is coupled.
        let si = if net.couplings().is_empty() {
            SiMode::Off
        } else {
            SiMode::WorstCase {
                aggressor_ramp: ctx.input_slew,
            }
        };
        let timer = GoldenTimer::new(self.vdd, ctx.drive_res)
            .with_steps(self.sim_steps)
            .with_solver(self.solver);
        let timing = {
            let _s = obs::span("golden");
            timer.time_net(net, ctx.input_slew, si)?
        };
        obs::counter("gnntrans.dataset.samples").inc();
        let mut targets = Mat::zeros(timing.len(), 2);
        for (i, t) in timing.iter().enumerate() {
            targets.set(i, 0, t.slew.pico_seconds() as f32);
            targets.set(i, 1, t.delay.pico_seconds() as f32);
        }

        // The DAC'20 baseline sees the net through its own crude
        // (depth-first) loop-breaking, as the original recipe does.
        let wa_dac =
            elmore::WireAnalysis::with_policy(net, elmore::LoopBreaking::DepthFirst)?;
        let dac20_rows = crate::dac20::feature_rows(net, &wa_dac, &ctx);
        Ok(Sample {
            net: net.clone(),
            ctx,
            node_feats,
            path_feats,
            targets_ps: targets,
            dac20_rows,
        })
    }

    /// Builds a full dataset over `nets` and fits the scalers.
    ///
    /// # Errors
    ///
    /// Propagates per-net failures and empty-input rejection.
    pub fn build(&mut self, nets: &[RcNet]) -> Result<Dataset, CoreError> {
        let _span = obs::span("dataset_build");
        // Each net's golden simulation is independent; try_par_map
        // returns samples in input order (and the lowest-index error),
        // so the built dataset — scalers included — is byte-identical
        // to a serial build for any `PAR_THREADS` setting.
        let builder = &*self;
        let samples = par::try_par_map("dataset.sample", nets, |n| builder.sample_for(n))?;
        let ds = Dataset::from_samples(samples)?;
        obs::event!(
            obs::Level::Info,
            "gnntrans.dataset",
            "dataset built",
            nets = nets.len(),
            samples = ds.samples.len(),
        );
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgen::nets::{NetConfig, NetGenerator};

    fn small_nets(n: usize) -> Vec<RcNet> {
        let cfg = NetConfig {
            nodes_min: 4,
            nodes_max: 10,
            ..Default::default()
        };
        let mut g = NetGenerator::new(3, cfg);
        (0..n).map(|i| g.net(format!("n{i}"), i % 2 == 0)).collect()
    }

    #[test]
    fn builds_labelled_dataset() {
        let nets = small_nets(6);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&nets).unwrap();
        assert_eq!(ds.samples.len(), 6);
        for s in &ds.samples {
            assert_eq!(s.targets_ps.rows(), s.net.paths().len());
            assert_eq!(s.targets_ps.cols(), 2);
            // Labels are physically sensible: positive, sub-ns.
            for v in s.targets_ps.as_slice() {
                assert!(*v > 0.0 && *v < 1000.0, "label {v} ps out of range");
            }
            assert_eq!(s.dac20_rows.len(), s.net.paths().len());
        }
    }

    #[test]
    fn batches_are_scaled_and_labelled() {
        let nets = small_nets(5);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&nets).unwrap();
        let batches = ds.batches().unwrap();
        assert_eq!(batches.len(), 5);
        for batch in &batches {
            assert!(batch.targets.is_some());
            // Z-scored features should be O(1).
            assert!(batch.x.max_abs() < 20.0);
        }
    }

    #[test]
    fn context_is_deterministic_and_name_dependent() {
        let nets = small_nets(2);
        let b = DatasetBuilder::new(9);
        let c1 = b.context_for(&nets[0]);
        let c2 = b.context_for(&nets[0]);
        assert_eq!(c1, c2);
        let c3 = b.context_for(&nets[1]);
        assert!(c1 != c3 || nets[0].name() == nets[1].name());
    }

    #[test]
    fn batch_for_unseen_net_has_no_targets() {
        let nets = small_nets(4);
        let mut b = DatasetBuilder::new(1);
        let ds = b.build(&nets[..3]).unwrap();
        let ctx = b.context_for(&nets[3]);
        let batch = ds.batch_for(&nets[3], &ctx).unwrap();
        assert!(batch.targets.is_none());
        assert_eq!(batch.path_count(), nets[3].paths().len());
    }

    #[test]
    fn empty_dataset_rejected() {
        assert!(matches!(
            Dataset::from_samples(vec![]),
            Err(CoreError::BadInput(_))
        ));
    }

    #[test]
    fn farther_sinks_get_larger_delay_labels() {
        // Sanity: on a long chain, the label grows with distance.
        use rcnet::{Farads, Ohms, RcNetBuilder};
        let mut bld = RcNetBuilder::new("chain");
        let s = bld.source("s", Farads::from_ff(1.0));
        let near = bld.sink("near", Farads::from_ff(2.0));
        bld.resistor(s, near, Ohms(50.0));
        let mut prev = near;
        for i in 0..6 {
            let m = bld.internal(format!("m{i}"), Farads::from_ff(2.0));
            bld.resistor(prev, m, Ohms(100.0));
            prev = m;
        }
        let far = bld.sink("far", Farads::from_ff(2.0));
        bld.resistor(prev, far, Ohms(100.0));
        let net = bld.build().unwrap();

        let b = DatasetBuilder::new(1);
        let s = b.sample_for(&net).unwrap();
        // paths() order matches sinks() order: near first.
        assert!(s.targets_ps.get(1, 1) > s.targets_ps.get(0, 1));
    }
}
