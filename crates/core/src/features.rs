//! TABLE I feature extraction.
//!
//! Node features (one row per capacitance):
//!
//! | # | feature | source |
//! |---|---------|--------|
//! | 0 | capacitance value | net |
//! | 1 | num of input nodes | neighbors nearer the source |
//! | 2 | num of output nodes | neighbors farther from the source |
//! | 3 | tot input cap | sum over input neighbors |
//! | 4 | tot output cap | sum over output neighbors |
//! | 5 | num of connect. res | node degree |
//! | 6 | tot input res | resistance to input neighbors |
//! | 7 | tot output res | resistance to output neighbors |
//! | 8 | downstream cap | Elmore downstream capacitance |
//! | 9 | stage delay | Elmore stage delay |
//!
//! Two additional node features carry the design-constraint context on
//! the driver pin node only (zero elsewhere): the input slew and the
//! drive strength. Real pin nodes carry cell attributes the same way, and
//! without them no message-passing baseline could know how fast the net
//! is being switched.
//!
//! Path features (one row per wire path): input slew, drive-cell strength
//! and function, load-cell strength and function, load ceff, the wire
//! path's Elmore delay and its D2M delay.
//!
//! Raw units here are fF / kΩ / ps so magnitudes are O(1) before the
//! [`crate::scaler`] standardization.

use elmore::WireAnalysis;
use rcnet::topology::shortest_paths;
use rcnet::{RcNet, Seconds, WirePath};
use tensor::Mat;

/// Number of node features (`d_x`): the ten TABLE I features plus the
/// two driver-pin context features.
pub const NODE_DIM: usize = 12;
/// Number of path features (`d_h`).
pub const PATH_DIM: usize = 8;

/// Per-sink load-cell description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadInfo {
    /// Drive strength of the load cell.
    pub drive: f64,
    /// Function code of the load cell (see
    /// [`sta::cells::CellFunc::encode`]).
    pub func: f64,
    /// Effective (pin) capacitance of the load cell, farads.
    pub ceff: f64,
}

impl Default for LoadInfo {
    fn default() -> Self {
        LoadInfo {
            drive: 1.0,
            func: 1.0,
            ceff: 1e-15,
        }
    }
}

/// The circuit context a net is timed in: who drives it, what it drives,
/// and how fast the input switches. (TABLE I's design-constraint
/// features.)
#[derive(Debug, Clone, PartialEq)]
pub struct NetContext {
    /// 10–90 % input slew at the driver.
    pub input_slew: Seconds,
    /// Drive strength of the driving cell.
    pub drive_strength: f64,
    /// Function code of the driving cell.
    pub drive_func: f64,
    /// Thevenin drive resistance of the driving cell (for the golden
    /// simulator).
    pub drive_res: rcnet::Ohms,
    /// Load info per sink, aligned with `net.sinks()`.
    pub loads: Vec<LoadInfo>,
}

impl NetContext {
    /// A context derived from a known driving cell (arrival-time flows
    /// know the driver; see `sta::WireTimer::path_timing_with_driver`),
    /// with default loads.
    pub fn for_driver(net: &RcNet, cell: &sta::cells::Cell, input_slew: Seconds) -> Self {
        NetContext {
            input_slew,
            drive_strength: cell.drive(),
            drive_func: cell.func().encode(),
            drive_res: cell.drive_res(),
            loads: vec![LoadInfo::default(); net.sinks().len()],
        }
    }

    /// A generic context: 20 ps input slew, X2 buffer-class driver,
    /// default loads for every sink of `net`.
    pub fn generic(net: &RcNet) -> Self {
        NetContext {
            input_slew: Seconds::from_ps(20.0),
            drive_strength: 2.0,
            drive_func: 1.0,
            drive_res: rcnet::Ohms(120.0),
            loads: vec![LoadInfo::default(); net.sinks().len()],
        }
    }
}

/// Extracts the `n x NODE_DIM` node feature matrix.
pub fn node_features(net: &RcNet, analysis: &WireAnalysis, ctx: &NetContext) -> Mat {
    let n = net.node_count();
    let sp = shortest_paths(net);
    // "Capacitance value" is the lumped node capacitance: ground plus
    // coupling, as extraction reports it — this is the only channel
    // through which per-node crosstalk exposure reaches the models.
    let mut lumped = vec![0.0f64; n];
    for (id, node) in net.iter_nodes() {
        lumped[id.index()] = node.cap.value();
    }
    for c in net.couplings() {
        lumped[c.node.index()] += c.cap.value();
    }
    let mut x = Mat::zeros(n, NODE_DIM);
    for (id, _node) in net.iter_nodes() {
        let i = id.index();
        let my_dist = sp.dist[i].value();
        let mut n_in = 0.0f32;
        let mut n_out = 0.0f32;
        let mut cap_in = 0.0f64;
        let mut cap_out = 0.0f64;
        let mut res_in = 0.0f64;
        let mut res_out = 0.0f64;
        for &(nb, e) in net.neighbors(id) {
            let r = net.edge(e).res.value();
            let c = lumped[nb.index()];
            if sp.dist[nb.index()].value() <= my_dist {
                n_in += 1.0;
                cap_in += c;
                res_in += r;
            } else {
                n_out += 1.0;
                cap_out += c;
                res_out += r;
            }
        }
        x.set(i, 0, (lumped[i] / 1e-15) as f32);
        x.set(i, 1, n_in);
        x.set(i, 2, n_out);
        x.set(i, 3, (cap_in / 1e-15) as f32);
        x.set(i, 4, (cap_out / 1e-15) as f32);
        x.set(i, 5, net.degree(id) as f32);
        x.set(i, 6, (res_in / 1e3) as f32);
        x.set(i, 7, (res_out / 1e3) as f32);
        x.set(i, 8, (analysis.downstream_cap(id).value() / 1e-15) as f32);
        x.set(i, 9, (analysis.stage_delay(id).value() / 1e-12) as f32);
        if id == net.source() {
            x.set(i, 10, ctx.input_slew.pico_seconds() as f32);
            x.set(i, 11, ctx.drive_strength as f32);
        }
    }
    x
}

/// Extracts one `1 x PATH_DIM` path feature row.
///
/// # Panics
///
/// Panics when `sink_idx` is out of range of `ctx.loads`.
pub fn path_features(
    net: &RcNet,
    analysis: &WireAnalysis,
    path: &WirePath,
    sink_idx: usize,
    ctx: &NetContext,
) -> Mat {
    let load = &ctx.loads[sink_idx];
    let _ = net;
    Mat::row_vector(vec![
        ctx.input_slew.pico_seconds() as f32,
        ctx.drive_strength as f32,
        ctx.drive_func as f32,
        load.drive as f32,
        load.func as f32,
        (load.ceff / 1e-15) as f32,
        analysis.tree_path_elmore(path).pico_seconds() as f32,
        analysis.tree_path_d2m(path).pico_seconds() as f32,
    ])
}

/// Extracts all path feature rows of a net, in `net.paths()` order.
pub fn all_path_features(net: &RcNet, analysis: &WireAnalysis, ctx: &NetContext) -> Vec<Mat> {
    net.paths()
        .iter()
        .enumerate()
        .map(|(i, p)| path_features(net, analysis, p, i, ctx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn ladder() -> RcNet {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads::from_ff(1.0));
        let m = b.internal("m", Farads::from_ff(2.0));
        let k = b.sink("k", Farads::from_ff(3.0));
        b.resistor(s, m, Ohms(100.0));
        b.resistor(m, k, Ohms(200.0));
        b.build().unwrap()
    }

    #[test]
    fn node_feature_values_match_structure() {
        let net = ladder();
        let wa = WireAnalysis::new(&net).unwrap();
        let x = node_features(&net, &wa, &NetContext::generic(&net));
        assert_eq!(x.shape(), (3, NODE_DIM));
        let m = net.node_by_name("m").unwrap().index();
        // cap value 2 fF.
        assert!((x.get(m, 0) - 2.0).abs() < 1e-6);
        // one input (s), one output (k).
        assert_eq!(x.get(m, 1), 1.0);
        assert_eq!(x.get(m, 2), 1.0);
        // input cap 1 fF, output cap 3 fF.
        assert!((x.get(m, 3) - 1.0).abs() < 1e-6);
        assert!((x.get(m, 4) - 3.0).abs() < 1e-6);
        // degree 2; input res 0.1 kΩ, output res 0.2 kΩ.
        assert_eq!(x.get(m, 5), 2.0);
        assert!((x.get(m, 6) - 0.1).abs() < 1e-6);
        assert!((x.get(m, 7) - 0.2).abs() < 1e-6);
        // downstream cap at m = 2 + 3 = 5 fF.
        assert!((x.get(m, 8) - 5.0).abs() < 1e-6);
        // stage delay at m = 100 * 5fF = 0.5 ps.
        assert!((x.get(m, 9) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn source_has_no_inputs() {
        let net = ladder();
        let wa = WireAnalysis::new(&net).unwrap();
        let ctx = NetContext::generic(&net);
        let x = node_features(&net, &wa, &ctx);
        let s = net.source().index();
        assert_eq!(x.get(s, 1), 0.0);
        assert_eq!(x.get(s, 2), 1.0);
        // Downstream cap at source = total cap = 6 fF.
        assert!((x.get(s, 8) - 6.0).abs() < 1e-6);
        // Driver-pin context features live on the source node only.
        assert!((x.get(s, 10) - 20.0).abs() < 1e-6);
        assert_eq!(x.get(s, 11), 2.0);
        let m = net.node_by_name("m").unwrap().index();
        assert_eq!(x.get(m, 10), 0.0);
        assert_eq!(x.get(m, 11), 0.0);
    }

    #[test]
    fn path_features_have_right_width_and_content() {
        let net = ladder();
        let wa = WireAnalysis::new(&net).unwrap();
        let ctx = NetContext::generic(&net);
        let pf = all_path_features(&net, &wa, &ctx);
        assert_eq!(pf.len(), 1);
        assert_eq!(pf[0].shape(), (1, PATH_DIM));
        // input slew 20 ps.
        assert!((pf[0].get(0, 0) - 20.0).abs() < 1e-6);
        // Elmore delay positive and >= D2M.
        assert!(pf[0].get(0, 6) > 0.0);
        assert!(pf[0].get(0, 7) <= pf[0].get(0, 6) + 1e-6);
    }

    #[test]
    fn generic_context_covers_all_sinks() {
        let mut b = RcNetBuilder::new("multi");
        let s = b.source("s", Farads::from_ff(1.0));
        for i in 0..4 {
            let k = b.sink(format!("k{i}"), Farads::from_ff(1.0));
            b.resistor(s, k, Ohms(50.0));
        }
        let net = b.build().unwrap();
        let ctx = NetContext::generic(&net);
        assert_eq!(ctx.loads.len(), 4);
        let wa = WireAnalysis::new(&net).unwrap();
        assert_eq!(all_path_features(&net, &wa, &ctx).len(), 4);
    }
}
