//! Per-column standardization fitted on the training set.
//!
//! Features and targets are z-scored (`(x - mean) / std`) column by
//! column; constant columns get unit scale so they pass through centered.
//! The fitted scalers ride along with the saved model so inference applies
//! the identical transform.

use tensor::Mat;

/// A fitted per-column standardizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Scaler {
    /// Fits on a set of matrices with identical column counts, pooling
    /// all rows.
    ///
    /// # Panics
    ///
    /// Panics when `mats` is empty or the column counts differ.
    pub fn fit<'a, I>(mats: I) -> Self
    where
        I: IntoIterator<Item = &'a Mat> + Clone,
    {
        let cols = mats
            .clone()
            .into_iter()
            .next()
            .expect("scaler needs at least one matrix")
            .cols();
        let mut sum = vec![0.0f64; cols];
        let mut sum_sq = vec![0.0f64; cols];
        let mut count = 0usize;
        for m in mats {
            assert_eq!(m.cols(), cols, "ragged scaler input");
            for r in 0..m.rows() {
                for c in 0..cols {
                    let v = m.get(r, c) as f64;
                    sum[c] += v;
                    sum_sq[c] += v * v;
                }
                count += 1;
            }
        }
        let n = count.max(1) as f64;
        let mean: Vec<f32> = sum.iter().map(|s| (s / n) as f32).collect();
        let std: Vec<f32> = sum_sq
            .iter()
            .zip(&mean)
            .map(|(sq, m)| {
                let var = (sq / n - (*m as f64) * (*m as f64)).max(0.0);
                let s = var.sqrt() as f32;
                if s < 1e-8 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Scaler { mean, std }
    }

    /// Number of columns this scaler was fitted for.
    pub fn width(&self) -> usize {
        self.mean.len()
    }

    /// Applies the transform.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn transform(&self, m: &Mat) -> Mat {
        assert_eq!(m.cols(), self.width(), "scaler width mismatch");
        let mut out = m.clone();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                out.set(r, c, (m.get(r, c) - self.mean[c]) / self.std[c]);
            }
        }
        out
    }

    /// Inverts the transform (for reading predictions back in raw units).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn inverse(&self, m: &Mat) -> Mat {
        assert_eq!(m.cols(), self.width(), "scaler width mismatch");
        let mut out = m.clone();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                out.set(r, c, m.get(r, c) * self.std[c] + self.mean[c]);
            }
        }
        out
    }

    /// Packs `(mean; std)` into a `2 x width` matrix for serialization.
    pub fn to_mat(&self) -> Mat {
        let mut m = Mat::zeros(2, self.width());
        for c in 0..self.width() {
            m.set(0, c, self.mean[c]);
            m.set(1, c, self.std[c]);
        }
        m
    }

    /// Unpacks a matrix produced by [`Scaler::to_mat`].
    ///
    /// # Panics
    ///
    /// Panics when `m` does not have exactly two rows.
    pub fn from_mat(m: &Mat) -> Self {
        Self::try_from_mat(m).expect("scaler matrix must be 2 x width with finite mean, std > 0")
    }

    /// Fallible [`Scaler::from_mat`] for untrusted checkpoint data:
    /// rejects wrong shapes, non-finite entries and non-positive stds
    /// (which would turn inference into division by zero) instead of
    /// panicking.
    pub fn try_from_mat(m: &Mat) -> Result<Self, String> {
        if m.rows() != 2 || m.cols() == 0 {
            return Err(format!(
                "scaler matrix must be 2 x width, got {} x {}",
                m.rows(),
                m.cols()
            ));
        }
        let mean: Vec<f32> = (0..m.cols()).map(|c| m.get(0, c)).collect();
        let std: Vec<f32> = (0..m.cols()).map(|c| m.get(1, c)).collect();
        if mean.iter().any(|v| !v.is_finite()) {
            return Err("scaler mean contains a non-finite value".into());
        }
        if std.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return Err("scaler std contains a non-finite or non-positive value".into());
        }
        Ok(Scaler { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes() {
        let a = Mat::from_vec(2, 2, vec![0.0, 10.0, 2.0, 30.0]).unwrap();
        let b = Mat::from_vec(2, 2, vec![4.0, 50.0, 6.0, 70.0]).unwrap();
        let s = Scaler::fit([&a, &b]);
        let t = s.transform(&a);
        // Column 0: values 0,2,4,6 -> mean 3, std sqrt(5).
        assert!((t.get(0, 0) + 3.0 / 5.0f32.sqrt()).abs() < 1e-5);
        // Round trip.
        let back = s.inverse(&t);
        for i in 0..4 {
            assert!((back.as_slice()[i] - a.as_slice()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_column_passes_through_centered() {
        let a = Mat::from_vec(3, 1, vec![5.0, 5.0, 5.0]).unwrap();
        let s = Scaler::fit([&a]);
        let t = s.transform(&a);
        assert!(t.as_slice().iter().all(|&v| v.abs() < 1e-6));
        let back = s.inverse(&t);
        assert!(back.as_slice().iter().all(|&v| (v - 5.0).abs() < 1e-6));
    }

    #[test]
    fn serialization_round_trip() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = Scaler::fit([&a]);
        let s2 = Scaler::from_mat(&s.to_mat());
        assert_eq!(s, s2);
        assert_eq!(s.width(), 3);
    }

    #[test]
    fn try_from_mat_rejects_corrupt_shapes_and_values() {
        assert!(Scaler::try_from_mat(&Mat::zeros(3, 2)).is_err());
        assert!(Scaler::try_from_mat(&Mat::zeros(2, 0)).is_err());
        // std of zero would divide by zero at inference time.
        let mut zero_std = Mat::zeros(2, 1);
        zero_std.set(0, 0, 1.0);
        assert!(Scaler::try_from_mat(&zero_std).is_err());
        let mut nan_mean = Mat::from_vec(2, 1, vec![f32::NAN, 1.0]).unwrap();
        assert!(Scaler::try_from_mat(&nan_mean).is_err());
        nan_mean.set(0, 0, 0.5);
        assert!(Scaler::try_from_mat(&nan_mean).is_ok());
    }

    #[test]
    #[should_panic]
    fn transform_rejects_wrong_width() {
        let a = Mat::zeros(1, 2);
        let s = Scaler::fit([&a]);
        let _ = s.transform(&Mat::zeros(1, 3));
    }
}
