//! GNNTrans wire-timing estimator — the paper's contribution, end to end.
//!
//! Given a routed net's parasitic RC network, estimate the **wire slew**
//! and **wire delay** of every wire path (source → sink) without invoking
//! a sign-off timer. The estimator is a [`models`](gnn::models) GNNTrans
//! network trained against the golden transient simulator:
//!
//! * [`features`] — the TABLE I node and path features, extracted from
//!   the RC graph and its [`elmore`] analysis;
//! * [`scaler`] — per-column standardization fitted on the training set;
//! * [`dataset`] — labelled sample building: assign driver/load cells,
//!   run the golden timer, pack [`gnn::GraphBatch`]es;
//! * [`estimator`] — [`WireTimingEstimator`]: train / predict / save /
//!   load, plans A/B/C, and an [`sta::WireTimer`] implementation so the
//!   estimator drops into arrival-time computation;
//! * [`dac20`] — the DAC'20 baseline \[5\]: loop-breaking manual features
//!   plus gradient-boosted trees;
//! * [`timers`] — golden and Elmore [`sta::WireTimer`] adapters;
//! * [`metrics`] — R² / max-error evaluation over whole designs;
//! * [`flow`] — one-call SPEF → reduce → estimate → report pipeline.
//!
//! # Examples
//!
//! Train on a handful of nets and predict an unseen one:
//!
//! ```no_run
//! use gnntrans::{dataset::DatasetBuilder, estimator::{EstimatorConfig, WireTimingEstimator}};
//! use netgen::nets::{NetConfig, NetGenerator};
//!
//! # fn main() -> Result<(), gnntrans::CoreError> {
//! let mut g = NetGenerator::new(1, NetConfig::default());
//! let train: Vec<_> = (0..50).map(|i| g.net(format!("n{i}"), i % 3 == 0)).collect();
//! let mut builder = DatasetBuilder::new(7);
//! let data = builder.build(&train)?;
//! let mut est = WireTimingEstimator::new(&EstimatorConfig::plan_b_small(), 42);
//! est.train(&data)?;
//! let unseen = g.net("probe", true);
//! let pred = est.predict_net(&unseen, &builder.context_for(&unseen))?;
//! assert_eq!(pred.len(), unseen.paths().len());
//! # Ok(())
//! # }
//! ```

pub mod dac20;
pub mod dataset;
pub mod estimator;
pub mod features;
pub mod flow;
pub mod metrics;
pub mod scaler;
pub mod timers;

pub use dataset::{Dataset, DatasetBuilder, Sample};
pub use estimator::{
    EstimatorConfig, ForwardBackend, NetPrediction, PathEstimate, Plan, WireTimingEstimator,
};
pub use features::NetContext;

use std::error::Error;
use std::fmt;

/// Errors from the estimator pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Golden simulation failed for a net.
    Sim(rcsim::SimError),
    /// Analytical feature extraction failed.
    Elmore(elmore::ElmoreError),
    /// Model-side failure (bad batch, divergence).
    Gnn(gnn::GnnError),
    /// Serialization failure.
    Tensor(tensor::TensorError),
    /// The estimator was used before training.
    NotTrained,
    /// Inconsistent inputs (message explains).
    BadInput(String),
    /// A saved-estimator checkpoint is corrupt, truncated, or
    /// structurally inconsistent (message explains what was wrong).
    Checkpoint(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "golden simulation failed: {e}"),
            CoreError::Elmore(e) => write!(f, "feature analysis failed: {e}"),
            CoreError::Gnn(e) => write!(f, "model failure: {e}"),
            CoreError::Tensor(e) => write!(f, "serialization failure: {e}"),
            CoreError::NotTrained => write!(f, "estimator has not been trained"),
            CoreError::BadInput(m) => write!(f, "bad input: {m}"),
            CoreError::Checkpoint(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Elmore(e) => Some(e),
            CoreError::Gnn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rcsim::SimError> for CoreError {
    fn from(e: rcsim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<elmore::ElmoreError> for CoreError {
    fn from(e: elmore::ElmoreError) -> Self {
        CoreError::Elmore(e)
    }
}

impl From<gnn::GnnError> for CoreError {
    fn from(e: gnn::GnnError) -> Self {
        CoreError::Gnn(e)
    }
}

impl From<tensor::TensorError> for CoreError {
    fn from(e: tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
