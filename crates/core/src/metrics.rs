//! Evaluation over whole test sets: the R² / max-error numbers the
//! paper's TABLE III-V report.

use crate::dataset::Sample;
use crate::estimator::WireTimingEstimator;
use crate::CoreError;

/// Accuracy summary for one model on one test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// R² of wire slew.
    pub r2_slew: f64,
    /// R² of wire delay.
    pub r2_delay: f64,
    /// Mean absolute delay error, picoseconds.
    pub mae_delay_ps: f64,
    /// Maximum absolute delay error, picoseconds.
    pub max_err_delay_ps: f64,
    /// Maximum absolute slew error, picoseconds.
    pub max_err_slew_ps: f64,
    /// Number of wire paths evaluated.
    pub paths: usize,
}

/// Accumulates `(truth, prediction)` pairs and computes [`EvalResult`].
#[derive(Debug, Clone, Default)]
pub struct Evaluator {
    slew_truth: Vec<f64>,
    slew_pred: Vec<f64>,
    delay_truth: Vec<f64>,
    delay_pred: Vec<f64>,
}

impl Evaluator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Adds one path's picosecond truth/prediction pair.
    pub fn push(&mut self, truth_ps: (f64, f64), pred_ps: (f64, f64)) {
        self.slew_truth.push(truth_ps.0);
        self.slew_pred.push(pred_ps.0);
        self.delay_truth.push(truth_ps.1);
        self.delay_pred.push(pred_ps.1);
    }

    /// Number of accumulated paths.
    pub fn len(&self) -> usize {
        self.delay_truth.len()
    }

    /// Whether nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.delay_truth.is_empty()
    }

    /// Finalizes the metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] when no paths were accumulated or
    /// the truth is degenerate (constant).
    pub fn finish(&self) -> Result<EvalResult, CoreError> {
        let r2_slew = numeric::stats::r2_score(&self.slew_truth, &self.slew_pred)
            .ok_or_else(|| CoreError::BadInput("slew R² undefined".into()))?;
        let r2_delay = numeric::stats::r2_score(&self.delay_truth, &self.delay_pred)
            .ok_or_else(|| CoreError::BadInput("delay R² undefined".into()))?;
        let mae_delay_ps = numeric::stats::mean_abs_err(&self.delay_truth, &self.delay_pred)
            .expect("non-empty by r2 check");
        let max_err_delay_ps = numeric::stats::max_abs_err(&self.delay_truth, &self.delay_pred)
            .expect("non-empty by r2 check");
        let max_err_slew_ps = numeric::stats::max_abs_err(&self.slew_truth, &self.slew_pred)
            .expect("non-empty by r2 check");
        Ok(EvalResult {
            r2_slew,
            r2_delay,
            mae_delay_ps,
            max_err_delay_ps,
            max_err_slew_ps,
            paths: self.len(),
        })
    }
}

/// Evaluates a trained estimator against the golden labels of `samples`
/// (optionally restricted to non-tree nets, the TABLE III protocol).
///
/// # Errors
///
/// Propagates prediction failures and empty-selection rejection.
pub fn evaluate_estimator(
    est: &WireTimingEstimator,
    samples: &[Sample],
    nontree_only: bool,
) -> Result<EvalResult, CoreError> {
    let selected: Vec<&Sample> = samples
        .iter()
        .filter(|s| !(nontree_only && s.is_tree()))
        .collect();
    // One predict_many over the whole test set: on the tape-free
    // backend the nets share packed forward chunks, so evaluation cost
    // scales with total nodes rather than per-net dispatch.
    let preds = est.predict_many(selected.iter().map(|s| (&s.net, &s.ctx)))?;
    let mut ev = Evaluator::new();
    for (s, pred) in selected.iter().zip(&preds) {
        for (i, p) in pred.iter().enumerate() {
            ev.push(
                (
                    s.targets_ps.get(i, 0) as f64,
                    s.targets_ps.get(i, 1) as f64,
                ),
                (p.slew.pico_seconds(), p.delay.pico_seconds()),
            );
        }
    }
    ev.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let mut ev = Evaluator::new();
        for i in 0..10 {
            let v = i as f64;
            ev.push((v, 2.0 * v), (v, 2.0 * v));
        }
        let r = ev.finish().unwrap();
        assert_eq!(r.r2_slew, 1.0);
        assert_eq!(r.r2_delay, 1.0);
        assert_eq!(r.max_err_delay_ps, 0.0);
        assert_eq!(r.paths, 10);
    }

    #[test]
    fn errors_reflected_in_metrics() {
        let mut ev = Evaluator::new();
        ev.push((10.0, 20.0), (11.0, 25.0));
        ev.push((20.0, 40.0), (19.0, 38.0));
        ev.push((30.0, 60.0), (30.0, 61.0));
        let r = ev.finish().unwrap();
        assert!(r.r2_delay < 1.0);
        assert_eq!(r.max_err_delay_ps, 5.0);
        assert_eq!(r.max_err_slew_ps, 1.0);
        assert!((r.mae_delay_ps - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_evaluator_errors() {
        let ev = Evaluator::new();
        assert!(ev.is_empty());
        assert!(ev.finish().is_err());
    }
}
