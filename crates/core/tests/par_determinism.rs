//! The parallel-build determinism gate: a dataset built on the `par`
//! pool must be byte-identical to a serial build — same samples, same
//! fitted scalers, same packed batches — because `try_par_map` returns
//! results in input order regardless of scheduling.
//!
//! Everything runs inside one test function: `par::set_threads` is
//! process-global, so concurrent test functions flipping it would race.

use gnntrans::{Dataset, DatasetBuilder};
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::RcNet;

fn nets(n: usize) -> Vec<RcNet> {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 12,
        ..Default::default()
    };
    let mut g = NetGenerator::new(11, cfg);
    (0..n).map(|i| g.net(format!("d{i}"), i % 2 == 0)).collect()
}

fn bits(m: &tensor::Mat) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn dataset_fingerprint(ds: &Dataset) -> Vec<Vec<u32>> {
    let mut fp = Vec::new();
    for s in &ds.samples {
        fp.push(bits(&s.node_feats));
        fp.push(bits(&s.targets_ps));
        for p in &s.path_feats {
            fp.push(bits(p));
        }
    }
    fp.push(bits(&ds.node_scaler.to_mat()));
    fp.push(bits(&ds.path_scaler.to_mat()));
    fp.push(bits(&ds.target_scaler.to_mat()));
    fp
}

#[test]
fn parallel_dataset_build_is_bit_identical_to_serial() {
    let nets = nets(12);

    par::set_threads(1);
    let serial = DatasetBuilder::new(7)
        .with_sim_steps(400)
        .build(&nets)
        .unwrap();

    par::set_threads(4);
    let parallel = DatasetBuilder::new(7)
        .with_sim_steps(400)
        .build(&nets)
        .unwrap();
    par::set_threads(1);

    assert_eq!(serial.samples.len(), parallel.samples.len());
    assert_eq!(
        dataset_fingerprint(&serial),
        dataset_fingerprint(&parallel),
        "parallel dataset build diverged from serial"
    );

    // The packed training batches agree bit for bit too.
    let sb = serial.batches().unwrap();
    let pb = parallel.batches().unwrap();
    assert_eq!(sb.len(), pb.len());
    for (a, b) in sb.iter().zip(&pb) {
        assert_eq!(bits(&a.x), bits(&b.x));
        assert_eq!(
            bits(a.targets.as_ref().unwrap()),
            bits(b.targets.as_ref().unwrap())
        );
    }

    // Errors surface identically as well: the lowest-index failure.
    // (An empty net list is the simplest deterministic failure.)
    par::set_threads(4);
    let empty = DatasetBuilder::new(7).build(&[]);
    par::set_threads(1);
    assert!(empty.is_err());
}
