//! End-to-end tests over real sockets: every endpoint, the error
//! paths, backpressure, deadlines, hot-reload under load, and graceful
//! shutdown.

use serve::json::{self, Json};
use serve::{demo_model, Client, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn test_server(workers: usize) -> Server {
    test_server_with(|cfg| cfg.workers = workers)
}

fn test_server_with(tweak: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        batch_max: 4,
        deadline: Duration::from_secs(2),
        ..Default::default()
    };
    tweak(&mut cfg);
    Server::start(cfg, demo_model(5, 8, 6), "test").expect("server starts")
}

fn spef_body() -> String {
    let spef = r#"*SPEF "IEEE 1481-1998"
*DESIGN "t"
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET t0 3.0
*CONN
*I d:Z O
*I l:A I
*CAP
1 t0:1 1.0
2 l:A 2.0
*RES
1 d:Z t0:1 10.0
2 t0:1 l:A 30.0
*END
"#;
    let mut b = String::from("{\"spef\":");
    obs::json::push_string(&mut b, spef);
    b.push('}');
    b
}

fn assert_finite_paths(body: &str) -> usize {
    let v = json::parse(body).expect("response is JSON");
    let Some(Json::Arr(nets)) = v.get("nets").cloned() else {
        panic!("missing nets array in {body}");
    };
    let mut seen = 0;
    for net in &nets {
        let Some(Json::Arr(paths)) = net.get("paths").cloned() else {
            panic!("missing paths in {net:?}");
        };
        for p in &paths {
            let s = p.get("slew_ps").and_then(Json::as_f64).expect("slew_ps");
            let d = p.get("delay_ps").and_then(Json::as_f64).expect("delay_ps");
            assert!(s.is_finite() && d.is_finite(), "non-finite path {p:?}");
            seen += 1;
        }
    }
    seen
}

#[test]
fn predict_returns_finite_estimates_for_spef_and_netgen() {
    let server = test_server(2);
    let mut client = Client::new(server.local_addr());

    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body);
    assert!(assert_finite_paths(&r.body) > 0);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("model_generation").and_then(Json::as_u64), Some(1));

    let r = client
        .request(
            "POST",
            "/v1/predict",
            Some(r#"{"netgen":{"seed":3,"count":3},"input_slew_ps":35.0}"#),
        )
        .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body);
    assert!(assert_finite_paths(&r.body) >= 3);
    server.shutdown();
}

#[test]
fn predict_rejects_malformed_bodies_with_400() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    for bad in [
        "not json at all",
        "{\"spef\": 42}",
        "{\"spef\": \"*NOT A SPEF\"}",
        "{}",
        "{\"spef\":\"x\",\"netgen\":{}}",
        "{\"netgen\":{\"count\":0}}",
        "{\"netgen\":{\"count\":100000}}",
    ] {
        let r = client.request("POST", "/v1/predict", Some(bad)).unwrap();
        assert_eq!(r.status, 400, "`{bad}` should 400, got {}: {}", r.status, r.body);
        assert!(r.body.contains("\"error\""), "error body: {}", r.body);
    }
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods_are_404_405() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let r = client.request("GET", "/nope", None).unwrap();
    assert_eq!(r.status, 404);
    let r = client.request("DELETE", "/healthz", None).unwrap();
    assert_eq!(r.status, 405);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_413() {
    let server = test_server_with(|cfg| {
        cfg.workers = 1;
        cfg.max_body_bytes = 256;
    });
    let mut client = Client::new(server.local_addr());
    let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(1024));
    let r = client.request("POST", "/v1/predict", Some(&big)).unwrap();
    assert_eq!(r.status, 413);
    server.shutdown();
}

#[test]
fn healthz_reports_model_and_queue() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let r = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    let model = v.get("model").expect("model object");
    assert_eq!(model.get("generation").and_then(Json::as_u64), Some(1));
    assert_eq!(model.get("source").and_then(Json::as_str), Some("test"));
    assert!(v.get("queue_depth").and_then(Json::as_u64).is_some());
    server.shutdown();
}

#[test]
fn metrics_returns_obs_snapshot_with_serve_series() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    // Generate at least one predict so serve series exist.
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let r = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(
        v.get("schema").and_then(Json::as_str),
        Some("obs.run_report.v1")
    );
    for series in [
        "serve.http.requests",
        "serve.queue.depth",
        "serve.request.seconds",
        "serve.model.generation",
    ] {
        assert!(r.body.contains(series), "metrics missing {series}");
    }
    server.shutdown();
}

/// With zero workers nothing drains the queue, so capacity overflow
/// must surface as 503 + Retry-After and queued work must die with 504
/// at its deadline.
#[test]
fn backpressure_503_and_deadline_504_when_workers_stall() {
    let server = test_server_with(|cfg| {
        cfg.workers = 0;
        cfg.queue_capacity = 2;
        cfg.deadline = Duration::from_millis(300);
    });
    let addr = server.local_addr();

    // Fill the queue from background threads; their requests will 504.
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            let body = spef_body();
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                c.request("POST", "/v1/predict", Some(&body)).unwrap()
            })
        })
        .collect();
    // Give the fillers time to enqueue.
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::new(addr);
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 503, "expected queue-full, got: {}", r.body);
    assert_eq!(r.retry_after.as_deref(), Some("1"));

    for f in fillers {
        let r = f.join().unwrap();
        assert_eq!(r.status, 504, "queued work should expire: {}", r.body);
    }
    server.shutdown();
}

#[test]
fn hot_reload_swaps_generation_with_zero_failed_inflight_requests() {
    let server = test_server(2);
    let addr = server.local_addr();
    let ckpt = std::env::temp_dir().join(format!(
        "serve_integration_reload_{}.bin",
        std::process::id()
    ));
    demo_model(17, 8, 6).save(&ckpt).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let spam: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body = spef_body();
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                let mut ok = 0u32;
                let mut failed = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    match c.request("POST", "/v1/predict", Some(&body)) {
                        Ok(r) if r.status == 200 => ok += 1,
                        _ => failed += 1,
                    }
                }
                (ok, failed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let mut client = Client::new(addr);
    let reload_body = {
        let mut b = String::from("{\"path\":");
        obs::json::push_string(&mut b, &ckpt.to_string_lossy());
        b.push('}');
        b
    };
    let r = client
        .request("POST", "/v1/model/reload", Some(&reload_body))
        .unwrap();
    assert_eq!(r.status, 200, "reload failed: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("generation").and_then(Json::as_u64), Some(2));

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    let mut ok = 0;
    let mut failed = 0;
    for h in spam {
        let (o, f) = h.join().unwrap();
        ok += o;
        failed += f;
    }
    assert!(ok > 0, "no traffic flowed during the reload");
    assert_eq!(failed, 0, "hot-reload failed {failed} in-flight requests");

    // New predictions carry the new generation.
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("model_generation").and_then(Json::as_u64), Some(2));

    // A bad reload leaves generation 2 serving.
    let r = client
        .request("POST", "/v1/model/reload", Some("{\"path\":\"/nonexistent\"}"))
        .unwrap();
    assert_eq!(r.status, 400);
    let r = client.request("GET", "/healthz", None).unwrap();
    assert!(r.body.contains("\"generation\":2"), "body: {}", r.body);

    let _ = std::fs::remove_file(&ckpt);
    server.shutdown();
}

#[test]
fn admin_shutdown_flags_drain_and_server_stops_cleanly() {
    let server = test_server(1);
    let addr = server.local_addr();
    let mut client = Client::new(addr);
    // Work flows before the drain.
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let r = client.request("POST", "/admin/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    assert!(server.shutdown_requested());
    server.shutdown();
    // The listener is gone: a fresh connection must fail.
    std::thread::sleep(Duration::from_millis(50));
    let mut fresh = Client::new(addr);
    assert!(fresh.request("GET", "/healthz", None).is_err());
}

#[test]
fn trace_roundtrip_stage_sum_matches_wall_time() {
    let server = test_server(2);
    let mut client = Client::new(server.local_addr());
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let trace_id = r.header("x-trace-id").expect("x-trace-id echoed").to_string();
    assert_eq!(trace_id.len(), 32, "id: {trace_id}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

    let r = client.request("GET", "/v1/traces?n=64", None).unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert!(v.get("capacity").and_then(Json::as_u64).unwrap_or(0) >= 1);
    let Some(Json::Arr(traces)) = v.get("traces").cloned() else {
        panic!("missing traces array in {}", r.body);
    };
    let trace = traces
        .iter()
        .find(|t| t.get("trace_id").and_then(Json::as_str) == Some(&trace_id))
        .unwrap_or_else(|| panic!("trace {trace_id} not in /v1/traces: {}", r.body));

    assert_eq!(trace.get("status").and_then(Json::as_u64), Some(200));
    assert_eq!(trace.get("nets").and_then(Json::as_u64), Some(1));
    let total_ms = trace.get("total_ms").and_then(Json::as_f64).expect("total_ms");
    let stages = trace.get("stages").expect("stages object");
    let mut sum_ms = 0.0;
    for stage in ["accept", "parse", "queue_wait", "batch_wait", "inference", "respond"] {
        let v = stages
            .get(stage)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("stage `{stage}` missing in {trace:?}"));
        assert!(v >= 0.0, "negative {stage}: {v}");
        sum_ms += v;
    }
    // The acceptance bar is 5%; respond is computed as the remainder,
    // so the reconstruction should be near-exact (JSON round-off only).
    let tolerance = (total_ms * 0.05).max(0.5);
    assert!(
        (sum_ms - total_ms).abs() <= tolerance,
        "stage sum {sum_ms} ms vs wall {total_ms} ms"
    );
    server.shutdown();
}

#[test]
fn client_supplied_trace_id_is_honored_end_to_end() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let supplied = "c0ffee00c0ffee00c0ffee00c0ffee00";
    let r = client
        .request_with_headers(
            "POST",
            "/v1/predict",
            Some(&spef_body()),
            &[("x-trace-id", supplied)],
        )
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-trace-id"), Some(supplied));
    let r = client
        .request("GET", &format!("/v1/traces?n={}", 64), None)
        .unwrap();
    assert!(r.body.contains(supplied), "honored id not in ring: {}", r.body);

    // Unparseable ids are replaced, not propagated.
    let r = client
        .request_with_headers(
            "POST",
            "/v1/predict",
            Some(&spef_body()),
            &[("x-trace-id", "not hex at all!")],
        )
        .unwrap();
    let echoed = r.header("x-trace-id").expect("echoed");
    assert_ne!(echoed, "not hex at all!");
    assert_eq!(echoed.len(), 32);

    // Non-predict endpoints echo an id too.
    let r = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(r.header("x-trace-id").map(str::len), Some(32));
    server.shutdown();
}

#[test]
fn traces_endpoint_filters_and_limits() {
    let server = test_server(2);
    let mut client = Client::new(server.local_addr());
    for _ in 0..5 {
        let r = client
            .request("POST", "/v1/predict", Some(&spef_body()))
            .unwrap();
        assert_eq!(r.status, 200);
    }
    let r = client.request("GET", "/v1/traces?n=2", None).unwrap();
    let v = json::parse(&r.body).unwrap();
    let Some(Json::Arr(traces)) = v.get("traces").cloned() else {
        panic!("missing traces in {}", r.body);
    };
    assert_eq!(traces.len(), 2, "n=2 must cap the response");
    // An absurd min_ms filters everything out.
    let r = client
        .request("GET", "/v1/traces?min_ms=100000", None)
        .unwrap();
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("traces"), Some(&Json::Arr(vec![])));
    server.shutdown();
}

#[test]
fn prometheus_metrics_render_and_validate() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let r = client
        .request("GET", "/metrics?format=prometheus", None)
        .unwrap();
    assert_eq!(r.status, 200);
    obs::prometheus::validate(&r.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{}", r.body));
    assert!(r.body.contains("# TYPE serve_request_seconds histogram"), "{}", r.body);
    assert!(
        r.body.contains("serve_stage_seconds_bucket{stage=\"inference\""),
        "{}",
        r.body
    );
    assert!(r.body.contains("serve_http_requests_total{endpoint="), "{}", r.body);
    // JSON stays the default.
    let r = client.request("GET", "/metrics", None).unwrap();
    assert!(r.body.starts_with('{'), "default /metrics must stay JSON");
    // Unknown formats are a client error.
    let r = client.request("GET", "/metrics?format=xml", None).unwrap();
    assert_eq!(r.status, 400);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = test_server(2);
    let mut client = Client::new(server.local_addr());
    for _ in 0..20 {
        let r = client
            .request("POST", "/v1/predict", Some(&spef_body()))
            .unwrap();
        assert_eq!(r.status, 200);
    }
    server.shutdown();
}

/// Every non-2xx response — malformed method, path, body, or an
/// oversized payload — carries the same machine-readable envelope:
/// `{"error":{"code":N,"status":"...","message":"..."}}`.
#[test]
fn every_error_response_carries_the_structured_envelope() {
    let server = test_server_with(|cfg| {
        cfg.workers = 1;
        cfg.max_body_bytes = 512;
    });
    let mut client = Client::new(server.local_addr());
    let cases: Vec<(&str, &str, Option<String>, u16)> = vec![
        ("GET", "/no/such/path", None, 404),
        ("PATCH", "/healthz", None, 405),
        ("POST", "/v1/predict", Some("{not json".into()), 400),
        ("POST", "/v1/predict", Some("{}".into()), 400),
        ("POST", "/v1/predict", Some(format!("{{\"pad\":\"{}\"}}", "x".repeat(1024))), 413),
        ("GET", "/metrics?format=xml", None, 400),
        ("POST", "/v1/model/reload", Some("{}".into()), 400),
        ("GET", "/v1/session/ghost/timing", None, 404),
        ("POST", "/v1/session", Some("{}".into()), 400),
        ("POST", "/v1/session/ghost/eco", Some("{\"edits\":[]}".into()), 404),
        ("DELETE", "/v1/session/ghost", None, 404),
    ];
    for (method, path, body, want) in cases {
        let r = client.request(method, path, body.as_deref()).unwrap();
        assert_eq!(r.status, want, "{method} {path}: {}", r.body);
        let v = json::parse(&r.body)
            .unwrap_or_else(|e| panic!("{method} {path} body not JSON ({e}): {}", r.body));
        let err = v.get("error").expect("error object");
        assert_eq!(
            err.get("code").and_then(Json::as_u64),
            Some(want as u64),
            "{method} {path}: {}",
            r.body
        );
        assert!(err.get("status").and_then(Json::as_str).is_some());
        assert!(
            !err.get("message").and_then(Json::as_str).unwrap_or("").is_empty(),
            "{method} {path} has no message: {}",
            r.body
        );
    }
    server.shutdown();
}

/// Full session lifecycle: create → timing → incremental ECO →
/// per-net timing → rollback → delete.
#[test]
fn session_lifecycle_create_eco_rollback_delete() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());

    let create = r#"{"name":"opt1","netgen":{"design":"PCI_BRIDGE","scale":0.02,"seed":7},"input_slew_ps":20}"#;
    let r = client.request("POST", "/v1/session", Some(create)).unwrap();
    assert_eq!(r.status, 201, "create: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("session").and_then(Json::as_str), Some("opt1"));
    let timing = v.get("timing").expect("timing");
    assert_eq!(timing.get("epoch").and_then(Json::as_u64), Some(0));
    let critical = timing.get("critical").expect("critical");
    let crit_net = critical.get("net").and_then(Json::as_str).unwrap().to_string();
    let crit_sink = critical.get("sink").and_then(Json::as_str).unwrap().to_string();
    let arrival0 = critical.get("arrival_ps").and_then(Json::as_f64).unwrap();
    assert!(arrival0.is_finite() && arrival0 > 0.0);

    // The session shows up in the listing.
    let r = client.request("GET", "/v1/session", None).unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"opt1\""), "listing: {}", r.body);

    // An incremental edit batch: only part of the design re-times.
    let eco = format!(
        "{{\"edits\":[{{\"op\":\"set_sink_load\",\"net\":{n},\"sink\":{s},\"ceff_ff\":4.5}}]}}",
        n = {
            let mut b = String::new();
            obs::json::push_string(&mut b, &crit_net);
            b
        },
        s = {
            let mut b = String::new();
            obs::json::push_string(&mut b, &crit_sink);
            b
        },
    );
    let r = client
        .request("POST", "/v1/session/opt1/eco", Some(&eco))
        .unwrap();
    assert_eq!(r.status, 200, "eco: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    let report = v.get("report").expect("report");
    assert_eq!(report.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(report.get("full_retime").and_then(Json::as_bool), Some(false));
    let retimed = report.get("nets_retimed").and_then(Json::as_u64).unwrap();
    let total = v
        .get("timing")
        .and_then(|t| t.get("nets"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        retimed < total,
        "an incremental edit re-timed the whole design ({retimed}/{total})"
    );

    // Per-net timing rows for the edited net.
    let r = client
        .request("GET", &format!("/v1/session/opt1/timing?net={crit_net}"), None)
        .unwrap();
    assert_eq!(r.status, 200, "net timing: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    let Some(Json::Arr(sinks)) = v.get("sinks").cloned() else {
        panic!("no sinks array: {}", r.body)
    };
    assert!(!sinks.is_empty());

    // Unknown edits are machine-readable 400s that leave state intact.
    let r = client
        .request(
            "POST",
            "/v1/session/opt1/eco",
            Some("{\"edits\":[{\"op\":\"resize_driver\",\"net\":\"ghost\",\"cell\":\"BUF_X4\"}]}"),
        )
        .unwrap();
    assert_eq!(r.status, 400, "bad eco: {}", r.body);

    // Rollback to the pre-edit epoch restores the original arrival.
    let r = client
        .request("POST", "/v1/session/opt1/rollback", Some("{\"epoch\":0}"))
        .unwrap();
    assert_eq!(r.status, 200, "rollback: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    let timing = v.get("timing").expect("timing");
    assert_eq!(timing.get("epoch").and_then(Json::as_u64), Some(0));
    let back = timing
        .get("critical")
        .and_then(|c| c.get("arrival_ps"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!((back - arrival0).abs() < 1e-6, "rollback arrival {back} != {arrival0}");

    // Rolling back to a never-snapshotted epoch is a 409.
    let r = client
        .request("POST", "/v1/session/opt1/rollback", Some("{\"epoch\":42}"))
        .unwrap();
    assert_eq!(r.status, 409, "rollback conflict: {}", r.body);

    let r = client.request("DELETE", "/v1/session/opt1", None).unwrap();
    assert_eq!(r.status, 200);
    let r = client.request("GET", "/v1/session/opt1/timing", None).unwrap();
    assert_eq!(r.status, 404);
    server.shutdown();
}

/// A model hot-reload must never let a session serve predictions cached
/// from the previous weights: the same edit after the reload re-times
/// under the new generation (full re-time) and reports it.
#[test]
fn hot_reload_invalidates_session_prediction_cache() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let ckpt = std::env::temp_dir().join(format!(
        "serve_integration_eco_reload_{}.bin",
        std::process::id()
    ));
    // Different seed/shape → genuinely different weights.
    demo_model(23, 10, 8).save(&ckpt).unwrap();

    let create = r#"{"name":"eco","netgen":{"design":"DMA","scale":0.02,"seed":3}}"#;
    let r = client.request("POST", "/v1/session", Some(create)).unwrap();
    assert_eq!(r.status, 201, "create: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    let crit = v.get("timing").and_then(|t| t.get("critical")).expect("critical");
    let net = crit.get("net").and_then(Json::as_str).unwrap().to_string();
    let sink = crit.get("sink").and_then(Json::as_str).unwrap().to_string();

    let eco = format!(
        "{{\"edits\":[{{\"op\":\"set_sink_load\",\"net\":\"{net}\",\"sink\":\"{sink}\",\"ceff_ff\":3.0}}]}}"
    );
    let r = client.request("POST", "/v1/session/eco/eco", Some(&eco)).unwrap();
    assert_eq!(r.status, 200, "eco: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(
        v.get("report").and_then(|x| x.get("model_generation")).and_then(Json::as_u64),
        Some(1)
    );
    let arrival_gen1 = v
        .get("timing")
        .and_then(|t| t.get("critical"))
        .and_then(|c| c.get("arrival_ps"))
        .and_then(Json::as_f64)
        .unwrap();

    // Back to epoch 0, then swap the model.
    let r = client
        .request("POST", "/v1/session/eco/rollback", Some("{\"epoch\":0}"))
        .unwrap();
    assert_eq!(r.status, 200, "rollback: {}", r.body);
    let reload_body = {
        let mut b = String::from("{\"path\":");
        obs::json::push_string(&mut b, &ckpt.to_string_lossy());
        b.push('}');
        b
    };
    let r = client
        .request("POST", "/v1/model/reload", Some(&reload_body))
        .unwrap();
    assert_eq!(r.status, 200, "reload: {}", r.body);

    // The same edit again: the generation change escalates to a full
    // re-time under the new weights — and the number actually moves.
    let r = client.request("POST", "/v1/session/eco/eco", Some(&eco)).unwrap();
    assert_eq!(r.status, 200, "eco after reload: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    let report = v.get("report").expect("report");
    assert_eq!(report.get("model_generation").and_then(Json::as_u64), Some(2));
    assert_eq!(
        report.get("full_retime").and_then(Json::as_bool),
        Some(true),
        "generation change must escalate to a full re-time"
    );
    let arrival_gen2 = v
        .get("timing")
        .and_then(|t| t.get("critical"))
        .and_then(|c| c.get("arrival_ps"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        (arrival_gen2 - arrival_gen1).abs() > 1e-9,
        "timing identical across a weight swap — stale predictions served? \
         gen1={arrival_gen1} gen2={arrival_gen2}"
    );
    let _ = std::fs::remove_file(&ckpt);
    server.shutdown();
}
