//! End-to-end tests over real sockets: every endpoint, the error
//! paths, backpressure, deadlines, hot-reload under load, and graceful
//! shutdown.

use serve::json::{self, Json};
use serve::{demo_model, Client, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn test_server(workers: usize) -> Server {
    test_server_with(|cfg| cfg.workers = workers)
}

fn test_server_with(tweak: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        batch_max: 4,
        deadline: Duration::from_secs(2),
        ..Default::default()
    };
    tweak(&mut cfg);
    Server::start(cfg, demo_model(5, 8, 6), "test").expect("server starts")
}

fn spef_body() -> String {
    let spef = r#"*SPEF "IEEE 1481-1998"
*DESIGN "t"
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET t0 3.0
*CONN
*I d:Z O
*I l:A I
*CAP
1 t0:1 1.0
2 l:A 2.0
*RES
1 d:Z t0:1 10.0
2 t0:1 l:A 30.0
*END
"#;
    let mut b = String::from("{\"spef\":");
    obs::json::push_string(&mut b, spef);
    b.push('}');
    b
}

fn assert_finite_paths(body: &str) -> usize {
    let v = json::parse(body).expect("response is JSON");
    let Some(Json::Arr(nets)) = v.get("nets").cloned() else {
        panic!("missing nets array in {body}");
    };
    let mut seen = 0;
    for net in &nets {
        let Some(Json::Arr(paths)) = net.get("paths").cloned() else {
            panic!("missing paths in {net:?}");
        };
        for p in &paths {
            let s = p.get("slew_ps").and_then(Json::as_f64).expect("slew_ps");
            let d = p.get("delay_ps").and_then(Json::as_f64).expect("delay_ps");
            assert!(s.is_finite() && d.is_finite(), "non-finite path {p:?}");
            seen += 1;
        }
    }
    seen
}

#[test]
fn predict_returns_finite_estimates_for_spef_and_netgen() {
    let server = test_server(2);
    let mut client = Client::new(server.local_addr());

    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body);
    assert!(assert_finite_paths(&r.body) > 0);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("model_generation").and_then(Json::as_u64), Some(1));

    let r = client
        .request(
            "POST",
            "/v1/predict",
            Some(r#"{"netgen":{"seed":3,"count":3},"input_slew_ps":35.0}"#),
        )
        .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body);
    assert!(assert_finite_paths(&r.body) >= 3);
    server.shutdown();
}

#[test]
fn predict_rejects_malformed_bodies_with_400() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    for bad in [
        "not json at all",
        "{\"spef\": 42}",
        "{\"spef\": \"*NOT A SPEF\"}",
        "{}",
        "{\"spef\":\"x\",\"netgen\":{}}",
        "{\"netgen\":{\"count\":0}}",
        "{\"netgen\":{\"count\":100000}}",
    ] {
        let r = client.request("POST", "/v1/predict", Some(bad)).unwrap();
        assert_eq!(r.status, 400, "`{bad}` should 400, got {}: {}", r.status, r.body);
        assert!(r.body.contains("\"error\""), "error body: {}", r.body);
    }
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods_are_404_405() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let r = client.request("GET", "/nope", None).unwrap();
    assert_eq!(r.status, 404);
    let r = client.request("DELETE", "/healthz", None).unwrap();
    assert_eq!(r.status, 405);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_413() {
    let server = test_server_with(|cfg| {
        cfg.workers = 1;
        cfg.max_body_bytes = 256;
    });
    let mut client = Client::new(server.local_addr());
    let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(1024));
    let r = client.request("POST", "/v1/predict", Some(&big)).unwrap();
    assert_eq!(r.status, 413);
    server.shutdown();
}

#[test]
fn healthz_reports_model_and_queue() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    let r = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    let model = v.get("model").expect("model object");
    assert_eq!(model.get("generation").and_then(Json::as_u64), Some(1));
    assert_eq!(model.get("source").and_then(Json::as_str), Some("test"));
    assert!(v.get("queue_depth").and_then(Json::as_u64).is_some());
    server.shutdown();
}

#[test]
fn metrics_returns_obs_snapshot_with_serve_series() {
    let server = test_server(1);
    let mut client = Client::new(server.local_addr());
    // Generate at least one predict so serve series exist.
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let r = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(
        v.get("schema").and_then(Json::as_str),
        Some("obs.run_report.v1")
    );
    for series in [
        "serve.http.requests",
        "serve.queue.depth",
        "serve.request.seconds",
        "serve.model.generation",
    ] {
        assert!(r.body.contains(series), "metrics missing {series}");
    }
    server.shutdown();
}

/// With zero workers nothing drains the queue, so capacity overflow
/// must surface as 503 + Retry-After and queued work must die with 504
/// at its deadline.
#[test]
fn backpressure_503_and_deadline_504_when_workers_stall() {
    let server = test_server_with(|cfg| {
        cfg.workers = 0;
        cfg.queue_capacity = 2;
        cfg.deadline = Duration::from_millis(300);
    });
    let addr = server.local_addr();

    // Fill the queue from background threads; their requests will 504.
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            let body = spef_body();
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                c.request("POST", "/v1/predict", Some(&body)).unwrap()
            })
        })
        .collect();
    // Give the fillers time to enqueue.
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::new(addr);
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 503, "expected queue-full, got: {}", r.body);
    assert_eq!(r.retry_after.as_deref(), Some("1"));

    for f in fillers {
        let r = f.join().unwrap();
        assert_eq!(r.status, 504, "queued work should expire: {}", r.body);
    }
    server.shutdown();
}

#[test]
fn hot_reload_swaps_generation_with_zero_failed_inflight_requests() {
    let server = test_server(2);
    let addr = server.local_addr();
    let ckpt = std::env::temp_dir().join(format!(
        "serve_integration_reload_{}.bin",
        std::process::id()
    ));
    demo_model(17, 8, 6).save(&ckpt).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let spam: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body = spef_body();
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                let mut ok = 0u32;
                let mut failed = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    match c.request("POST", "/v1/predict", Some(&body)) {
                        Ok(r) if r.status == 200 => ok += 1,
                        _ => failed += 1,
                    }
                }
                (ok, failed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let mut client = Client::new(addr);
    let reload_body = {
        let mut b = String::from("{\"path\":");
        obs::json::push_string(&mut b, &ckpt.to_string_lossy());
        b.push('}');
        b
    };
    let r = client
        .request("POST", "/v1/model/reload", Some(&reload_body))
        .unwrap();
    assert_eq!(r.status, 200, "reload failed: {}", r.body);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("generation").and_then(Json::as_u64), Some(2));

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    let mut ok = 0;
    let mut failed = 0;
    for h in spam {
        let (o, f) = h.join().unwrap();
        ok += o;
        failed += f;
    }
    assert!(ok > 0, "no traffic flowed during the reload");
    assert_eq!(failed, 0, "hot-reload failed {failed} in-flight requests");

    // New predictions carry the new generation.
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("model_generation").and_then(Json::as_u64), Some(2));

    // A bad reload leaves generation 2 serving.
    let r = client
        .request("POST", "/v1/model/reload", Some("{\"path\":\"/nonexistent\"}"))
        .unwrap();
    assert_eq!(r.status, 400);
    let r = client.request("GET", "/healthz", None).unwrap();
    assert!(r.body.contains("\"generation\":2"), "body: {}", r.body);

    let _ = std::fs::remove_file(&ckpt);
    server.shutdown();
}

#[test]
fn admin_shutdown_flags_drain_and_server_stops_cleanly() {
    let server = test_server(1);
    let addr = server.local_addr();
    let mut client = Client::new(addr);
    // Work flows before the drain.
    let r = client
        .request("POST", "/v1/predict", Some(&spef_body()))
        .unwrap();
    assert_eq!(r.status, 200);
    let r = client.request("POST", "/admin/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    assert!(server.shutdown_requested());
    server.shutdown();
    // The listener is gone: a fresh connection must fail.
    std::thread::sleep(Duration::from_millis(50));
    let mut fresh = Client::new(addr);
    assert!(fresh.request("GET", "/healthz", None).is_err());
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = test_server(2);
    let mut client = Client::new(server.local_addr());
    for _ in 0..20 {
        let r = client
            .request("POST", "/v1/predict", Some(&spef_body()))
            .unwrap();
        assert_eq!(r.status, 200);
    }
    server.shutdown();
}
