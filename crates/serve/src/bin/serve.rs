//! The inference server binary.
//!
//! ```text
//! # serve a saved checkpoint
//! cargo run -p serve --release --bin serve -- --model model.bin --addr 127.0.0.1:8080
//!
//! # no checkpoint handy? train a tiny demo model in-process
//! cargo run -p serve --release --bin serve -- --train-demo
//!
//! # in-process smoke test (used by scripts/check.sh): ephemeral port,
//! # one predict + healthz + metrics + hot-reload, clean shutdown
//! cargo run -p serve --release --bin serve -- --smoke
//! ```
//!
//! Shuts down gracefully (drains the queue) on SIGTERM / ctrl-c or
//! `POST /admin/shutdown`.

use serve::json::Json;
use serve::{demo_model, Client, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; the main loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // std links libc on every unix target, so the raw symbol is
    // available without a libc crate dependency (offline build env).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    cfg: ServeConfig,
    model: Option<String>,
    train_demo: bool,
    smoke: bool,
    obs_json: Option<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        cfg: ServeConfig {
            addr: "127.0.0.1:8080".into(),
            ..Default::default()
        },
        model: None,
        train_demo: false,
        smoke: false,
        obs_json: None,
    };
    let need = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => args.cfg.addr = need(&mut argv, "--addr")?,
            "--workers" => {
                args.cfg.workers = need(&mut argv, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--queue-cap" => {
                args.cfg.queue_capacity = need(&mut argv, "--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer".to_string())?;
            }
            "--batch-max" => {
                args.cfg.batch_max = need(&mut argv, "--batch-max")?
                    .parse()
                    .map_err(|_| "--batch-max needs an integer".to_string())?;
            }
            "--deadline-ms" => {
                let ms: u64 = need(&mut argv, "--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms needs an integer".to_string())?;
                args.cfg.deadline = Duration::from_millis(ms.max(1));
            }
            "--slow-ms" => {
                let ms: u64 = need(&mut argv, "--slow-ms")?
                    .parse()
                    .map_err(|_| "--slow-ms needs an integer".to_string())?;
                args.cfg.slow_request = Duration::from_millis(ms);
            }
            "--model" => args.model = Some(need(&mut argv, "--model")?),
            "--train-demo" => args.train_demo = true,
            "--smoke" => args.smoke = true,
            "--obs-json" => args.obs_json = Some(need(&mut argv, "--obs-json")?),
            "--help" | "-h" => {
                println!(
                    "serve: wire-timing inference server\n\
                     \n  --addr HOST:PORT   bind address (default 127.0.0.1:8080; port 0 = ephemeral)\
                     \n  --workers N        worker threads (default: cpu count)\
                     \n  --queue-cap N      bounded queue capacity (default 256)\
                     \n  --batch-max N      micro-batch size cap (default 16)\
                     \n  --deadline-ms N    per-request deadline (default 5000)\
                     \n  --slow-ms N        slow-request event threshold (default 250)\
                     \n  --model PATH       checkpoint to serve (from WireTimingEstimator::save)\
                     \n  --train-demo       train a small synthetic model instead of loading one\
                     \n  --smoke            run the in-process smoke test and exit\
                     \n  --obs-json PATH    write the obs run report on exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.model.is_some() && args.train_demo {
        return Err("--model and --train-demo are mutually exclusive".into());
    }
    if args.model.is_none() && !args.train_demo && !args.smoke {
        return Err("supply --model PATH or --train-demo (see --help)".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(m) => {
            eprintln!("serve: {m}");
            std::process::exit(2);
        }
    };
    let code = if args.smoke { smoke(args) } else { run(args) };
    std::process::exit(code);
}

fn write_obs_report(path: Option<&str>) {
    if let Some(path) = path {
        match std::fs::write(path, obs::RunReport::capture().to_json()) {
            Ok(()) => eprintln!("serve: wrote obs report to {path}"),
            Err(e) => eprintln!("serve: failed to write obs report: {e}"),
        }
    }
}

fn run(args: Args) -> i32 {
    install_signal_handlers();
    let (estimator, source) = match &args.model {
        Some(path) => match gnntrans::WireTimingEstimator::load(path) {
            Ok(est) => (est, path.clone()),
            Err(e) => {
                eprintln!("serve: cannot load `{}`: {e}", path);
                return 1;
            }
        },
        None => {
            eprintln!("serve: training demo model (--train-demo)");
            (demo_model(7, 24, 30), "train-demo".to_string())
        }
    };
    let server = match Server::start(args.cfg, estimator, &source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start: {e}");
            return 1;
        }
    };
    eprintln!("serve: listening on {}", server.local_addr());
    while !SIGNALLED.load(Ordering::SeqCst) && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("serve: draining and shutting down");
    server.shutdown();
    write_obs_report(args.obs_json.as_deref());
    0
}

/// One SPEF net for the smoke predict.
const SMOKE_SPEF: &str = r#"*SPEF "IEEE 1481-1998"
*DESIGN "smoke"
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET smk 4.5
*CONN
*I u1:Z O
*I u2:A I
*CAP
1 smk:1 1.5
2 u2:A 3.0
*RES
1 u1:Z smk:1 25.0
2 smk:1 u2:A 40.0
*END
"#;

fn fail(why: &str) -> i32 {
    eprintln!("serve: SMOKE FAIL: {why}");
    1
}

/// End-to-end smoke test, fully in-process: ephemeral port, real
/// sockets, one predict, health + metrics, a hot-reload under
/// concurrent load, clean shutdown. Exit code 0 only if every check
/// passes — `scripts/check.sh` runs this.
fn smoke(args: Args) -> i32 {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: args.cfg.workers.clamp(2, 4),
        ..args.cfg
    };
    let server = match Server::start(cfg, demo_model(11, 12, 10), "smoke-demo") {
        Ok(s) => s,
        Err(e) => return fail(&format!("server failed to start: {e}")),
    };
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    // 1. Predict one SPEF net: 200 with finite slew/delay.
    let body = {
        let mut b = String::from("{\"spef\":");
        obs::json::push_string(&mut b, SMOKE_SPEF);
        b.push('}');
        b
    };
    let r = match client.request("POST", "/v1/predict", Some(&body)) {
        Ok(r) => r,
        Err(e) => return fail(&format!("predict request failed: {e}")),
    };
    if r.status != 200 {
        return fail(&format!("predict returned {}: {}", r.status, r.body));
    }
    let parsed = match serve::json::parse(&r.body) {
        Ok(v) => v,
        Err(e) => return fail(&format!("predict body is not JSON: {e}")),
    };
    let Some(Json::Arr(nets)) = parsed.get("nets").cloned() else {
        return fail("predict body missing `nets` array");
    };
    let mut paths_seen = 0usize;
    for net in &nets {
        let Some(Json::Arr(paths)) = net.get("paths").cloned() else {
            return fail("net entry missing `paths`");
        };
        for p in &paths {
            let slew = p.get("slew_ps").and_then(Json::as_f64);
            let delay = p.get("delay_ps").and_then(Json::as_f64);
            match (slew, delay) {
                (Some(s), Some(d)) if s.is_finite() && d.is_finite() => paths_seen += 1,
                _ => return fail(&format!("non-finite prediction in {p:?}")),
            }
        }
    }
    if paths_seen == 0 {
        return fail("predict returned no paths");
    }
    eprintln!("serve: smoke predict ok ({paths_seen} finite paths)");

    // 2. healthz.
    match client.request("GET", "/healthz", None) {
        Ok(r) if r.status == 200 && r.body.contains("\"status\":\"ok\"") => {}
        Ok(r) => return fail(&format!("healthz returned {}: {}", r.status, r.body)),
        Err(e) => return fail(&format!("healthz request failed: {e}")),
    }

    // 3. metrics: parses and contains the serve request counter.
    match client.request("GET", "/metrics", None) {
        Ok(r) if r.status == 200 => {
            if serve::json::parse(&r.body).is_err() {
                return fail("metrics body is not valid JSON");
            }
            if !r.body.contains("serve.http.requests") {
                return fail("metrics body missing serve.http.requests");
            }
        }
        Ok(r) => return fail(&format!("metrics returned {}", r.status)),
        Err(e) => return fail(&format!("metrics request failed: {e}")),
    }
    eprintln!("serve: smoke healthz + metrics ok");

    // 4. Tracing round-trip: the predict above must have carried a
    // non-empty x-trace-id, and that trace must be queryable from
    // /v1/traces with every pipeline stage recorded.
    let trace_id = match r.header("x-trace-id") {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => return fail("predict response missing x-trace-id header"),
    };
    match client.request("GET", "/v1/traces?n=64", None) {
        Ok(r) if r.status == 200 => {
            let parsed = match serve::json::parse(&r.body) {
                Ok(v) => v,
                Err(e) => return fail(&format!("traces body is not JSON: {e}")),
            };
            let Some(Json::Arr(traces)) = parsed.get("traces").cloned() else {
                return fail("traces body missing `traces` array");
            };
            let Some(t) = traces.iter().find(|t| {
                t.get("trace_id").and_then(Json::as_str) == Some(trace_id.as_str())
            }) else {
                return fail(&format!("trace {trace_id} not found in /v1/traces"));
            };
            for stage in obs::Stage::ALL {
                let v = t
                    .get("stages")
                    .and_then(|s| s.get(stage.name()))
                    .and_then(Json::as_f64);
                match v {
                    Some(ms) if ms >= 0.0 => {}
                    _ => return fail(&format!("trace missing stage `{}`", stage.name())),
                }
            }
        }
        Ok(r) => return fail(&format!("traces returned {}", r.status)),
        Err(e) => return fail(&format!("traces request failed: {e}")),
    }

    // 5. Prometheus exposition: must pass the structural validator.
    match client.request("GET", "/metrics?format=prometheus", None) {
        Ok(r) if r.status == 200 => {
            if let Err(e) = obs::prometheus::validate(&r.body) {
                return fail(&format!("prometheus exposition invalid: {e}"));
            }
            if !r.body.contains("serve_stage_seconds_bucket") {
                return fail("prometheus exposition missing serve_stage_seconds histogram");
            }
        }
        Ok(r) => return fail(&format!("prometheus metrics returned {}", r.status)),
        Err(e) => return fail(&format!("prometheus metrics request failed: {e}")),
    }
    eprintln!("serve: smoke trace round-trip + prometheus ok (trace {trace_id})");

    // 6. Hot-reload under concurrent predict load: zero failures.
    let ckpt = std::env::temp_dir().join(format!("serve_smoke_reload_{}.bin", std::process::id()));
    if let Err(e) = demo_model(23, 12, 10).save(&ckpt) {
        return fail(&format!("cannot save reload checkpoint: {e}"));
    }
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let spam: Vec<_> = (0..2)
        .map(|_| {
            let stop = std::sync::Arc::clone(&stop);
            let body = body.clone();
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                let mut ok = 0u32;
                let mut failed = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    match c.request("POST", "/v1/predict", Some(&body)) {
                        Ok(r) if r.status == 200 => ok += 1,
                        _ => failed += 1,
                    }
                }
                (ok, failed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    let reload_body = {
        let mut b = String::from("{\"path\":");
        obs::json::push_string(&mut b, &ckpt.to_string_lossy());
        b.push('}');
        b
    };
    let reload = client.request("POST", "/v1/model/reload", Some(&reload_body));
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    let mut ok_total = 0u32;
    let mut failed_total = 0u32;
    for h in spam {
        let (ok, failed) = h.join().expect("spam thread panicked");
        ok_total += ok;
        failed_total += failed;
    }
    let _ = std::fs::remove_file(&ckpt);
    match reload {
        Ok(r) if r.status == 200 && r.body.contains("\"generation\":2") => {}
        Ok(r) => return fail(&format!("reload returned {}: {}", r.status, r.body)),
        Err(e) => return fail(&format!("reload request failed: {e}")),
    }
    if failed_total > 0 || ok_total == 0 {
        return fail(&format!(
            "hot-reload disturbed traffic: {ok_total} ok, {failed_total} failed"
        ));
    }
    eprintln!("serve: smoke hot-reload ok ({ok_total} in-flight predicts, 0 failed)");

    // 7. Graceful shutdown via the admin endpoint.
    match client.request("POST", "/admin/shutdown", None) {
        Ok(r) if r.status == 200 => {}
        Ok(r) => return fail(&format!("shutdown returned {}", r.status)),
        Err(e) => return fail(&format!("shutdown request failed: {e}")),
    }
    server.shutdown();
    write_obs_report(args.obs_json.as_deref());
    eprintln!("serve: SMOKE PASS");
    0
}
