//! Load generator + benchmark driver for the inference server.
//!
//! ```text
//! # default: in-process worker sweep (1 vs 8 workers), writes BENCH_serve.json
//! cargo run -p serve --release --bin loadgen
//!
//! # fixed-rate mode against the in-process sweep
//! cargo run -p serve --release --bin loadgen -- --rate 200
//!
//! # closed-loop against an already-running server (single run)
//! cargo run -p serve --release --bin loadgen -- --url 127.0.0.1:8080
//!
//! # additionally measure the incremental ECO session path
//! cargo run -p serve --release --bin loadgen -- --eco
//! ```
//!
//! Closed-loop mode: each connection sends the next request the moment
//! the previous response arrives (measures capacity). Fixed-rate mode:
//! each connection paces requests at `rate / connections` per second
//! (measures latency under a target offered load). With `--eco` the
//! report additionally gains an incremental-traffic row: resident
//! design sessions driven closed-loop with single-edit ECO batches
//! (edit, re-time, read — the optimizer-in-the-loop shape).

use rcnet::spef::SpefHeader;
use serve::{Client, ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

struct Args {
    url: Option<String>,
    duration: Duration,
    connections: usize,
    rate: Option<f64>,
    sweep: Vec<usize>,
    nets_per_request: usize,
    out: String,
    traces_out: Option<String>,
    /// Additionally drive the incremental ECO session endpoints and
    /// add the `eco` row to the report.
    eco: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            url: None,
            duration: Duration::from_secs(5),
            connections: 16,
            rate: None,
            sweep: vec![1, 8],
            nets_per_request: 4,
            out: "BENCH_serve.json".into(),
            traces_out: None,
            eco: false,
        }
    }
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let need = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--url" => args.url = Some(need(&mut argv, "--url")?),
            "--duration-s" => {
                let s: f64 = need(&mut argv, "--duration-s")?
                    .parse()
                    .map_err(|_| "--duration-s needs a number".to_string())?;
                args.duration = Duration::from_secs_f64(s.max(0.1));
            }
            "--connections" => {
                args.connections = need(&mut argv, "--connections")?
                    .parse()
                    .map_err(|_| "--connections needs an integer".to_string())?;
                args.connections = args.connections.max(1);
            }
            "--rate" => {
                let r: f64 = need(&mut argv, "--rate")?
                    .parse()
                    .map_err(|_| "--rate needs a number".to_string())?;
                args.rate = Some(r.max(0.1));
            }
            "--workers-sweep" => {
                args.sweep = need(&mut argv, "--workers-sweep")?
                    .split(',')
                    .map(|w| w.trim().parse::<usize>().map(|w| w.max(1)))
                    .collect::<Result<_, _>>()
                    .map_err(|_| "--workers-sweep needs e.g. `1,8`".to_string())?;
                if args.sweep.is_empty() {
                    return Err("--workers-sweep needs at least one entry".into());
                }
            }
            "--nets-per-request" => {
                args.nets_per_request = need(&mut argv, "--nets-per-request")?
                    .parse::<usize>()
                    .map_err(|_| "--nets-per-request needs an integer".to_string())?
                    .max(1);
            }
            "--out" => args.out = need(&mut argv, "--out")?,
            "--traces-out" => args.traces_out = Some(need(&mut argv, "--traces-out")?),
            "--eco" => args.eco = true,
            "--help" | "-h" => {
                println!(
                    "loadgen: benchmark driver for the serve crate\n\
                     \n  --url HOST:PORT        target a running server (default: in-process sweep)\
                     \n  --duration-s S         measurement window per run (default 5)\
                     \n  --connections N        concurrent connections (default 16)\
                     \n  --rate RPS             fixed-rate mode at RPS total (default: closed-loop)\
                     \n  --workers-sweep A,B    in-process worker counts to sweep (default 1,8)\
                     \n  --nets-per-request N   nets per predict request (default 4)\
                     \n  --out PATH             result file (default BENCH_serve.json)\
                     \n  --traces-out PATH      dump sampled request traces as JSONL (for obs-trace)\
                     \n  --eco                  also drive incremental ECO sessions (adds an `eco` row)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Trains the benchmark model: paper-shaped (hidden 24, heads 4) so
/// per-net inference cost is representative and the worker sweep
/// measures inference scaling rather than HTTP overhead. Heavier than
/// [`demo_model`], which favours startup speed for tests.
fn bench_model() -> gnntrans::WireTimingEstimator {
    use gnntrans::{DatasetBuilder, EstimatorConfig};
    use netgen::nets::{NetConfig, NetGenerator};
    let mut g = NetGenerator::new(
        7,
        NetConfig {
            nodes_min: 4,
            nodes_max: 14,
            ..Default::default()
        },
    );
    let nets: Vec<_> = (0..24).map(|i| g.net(format!("bm{i}"), i % 3 == 0)).collect();
    let data = DatasetBuilder::new(8).build(&nets).expect("bench nets featurize");
    let mut est = gnntrans::WireTimingEstimator::new(
        &EstimatorConfig {
            gnn_layers: 3,
            attn_layers: 2,
            hidden: 24,
            heads: 4,
            mlp_hidden: 32,
            epochs: 12,
            lr: 3e-3,
        },
        7,
    );
    est.train(&data).expect("bench training converges");
    est
}

/// Pre-renders a pool of predict request bodies from generated nets so
/// the hot loop does no net generation or SPEF writing.
fn request_pool(nets_per_request: usize) -> Vec<String> {
    use netgen::nets::{NetConfig, NetGenerator};
    let mut g = NetGenerator::new(
        99,
        NetConfig {
            nodes_min: 4,
            nodes_max: 12,
            ..Default::default()
        },
    );
    let header = SpefHeader::default();
    (0..32)
        .map(|i| {
            let nets: Vec<_> = (0..nets_per_request)
                .map(|j| g.net(format!("lg{i}_{j}"), (i + j) % 3 == 0))
                .collect();
            let spef = rcnet::spef::write(&header, &nets);
            let mut body = String::from("{\"spef\":");
            obs::json::push_string(&mut body, &spef);
            body.push('}');
            body
        })
        .collect()
}

#[derive(Debug)]
struct RunResult {
    workers: Option<usize>,
    ok: u64,
    errors: u64,
    elapsed: Duration,
    /// Sorted latencies in seconds.
    latencies: Vec<f64>,
    /// Per-request stage traces sampled from `/v1/traces` after the
    /// run (empty when the server does not expose them).
    traces: Vec<obs::TraceRecord>,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((self.latencies.len() as f64 - 1.0) * p / 100.0).round() as usize;
        self.latencies[idx.min(self.latencies.len() - 1)]
    }

    /// Median milliseconds spent in `stage` across the sampled traces.
    fn stage_median_ms(&self, stage: obs::Stage) -> f64 {
        let mut v: Vec<f64> = self.traces.iter().map(|t| t.stage(stage) * 1e3).collect();
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite stage times"));
        v[v.len() / 2]
    }
}

/// Rebuilds an [`obs::TraceRecord`] from one `/v1/traces` entry.
fn trace_from_json(t: &serve::json::Json) -> Option<obs::TraceRecord> {
    let trace_id = obs::TraceId::parse(t.get("trace_id")?.as_str()?)?;
    let stages_obj = t.get("stages")?;
    let mut stages = [0.0f64; obs::trace::STAGE_COUNT];
    for stage in obs::Stage::ALL {
        stages[stage.index()] = stages_obj.get(stage.name())?.as_f64()? / 1e3;
    }
    Some(obs::TraceRecord {
        trace_id,
        started_unix_ms: t.get("started_unix_ms")?.as_u64()?,
        total_s: t.get("total_ms")?.as_f64()? / 1e3,
        status: t.get("status")?.as_u64()? as u16,
        nets: t.get("nets")?.as_u64()? as u32,
        stages,
    })
}

/// Samples recent request traces from the server after a run. Returns
/// an empty vec (with a note) when the endpoint is unavailable — e.g.
/// `--url` mode against an older server build.
fn fetch_traces(addr: SocketAddr) -> Vec<obs::TraceRecord> {
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    match client.request("GET", "/v1/traces?n=512", None) {
        Ok(r) if r.status == 200 => match serve::json::parse(&r.body) {
            Ok(parsed) => match parsed.get("traces") {
                Some(serve::json::Json::Arr(items)) => {
                    items.iter().filter_map(trace_from_json).collect()
                }
                _ => Vec::new(),
            },
            Err(e) => {
                eprintln!("loadgen: note: /v1/traces body unparseable ({e}); no stage breakdown");
                Vec::new()
            }
        },
        Ok(r) => {
            eprintln!("loadgen: note: /v1/traces returned {}; no stage breakdown", r.status);
            Vec::new()
        }
        Err(e) => {
            eprintln!("loadgen: note: /v1/traces unavailable ({e}); no stage breakdown");
            Vec::new()
        }
    }
}

/// One measurement run against `addr`.
fn drive(addr: SocketAddr, bodies: &[String], args: &Args, workers: Option<usize>) -> RunResult {
    let started = Instant::now();
    let deadline = started + args.duration;
    let per_conn_interval = args
        .rate
        .map(|r| Duration::from_secs_f64(args.connections as f64 / r));
    let handles: Vec<_> = (0..args.connections)
        .map(|c| {
            let bodies = bodies.to_vec();
            let rate_tick = per_conn_interval;
            std::thread::spawn(move || {
                let mut client = Client::new(addr).with_timeout(Duration::from_secs(30));
                let mut ok = 0u64;
                let mut errors = 0u64;
                let mut latencies = Vec::with_capacity(4096);
                let mut i = c; // offset so connections do not sync on one body
                let mut next_send = Instant::now();
                while Instant::now() < deadline {
                    if let Some(tick) = rate_tick {
                        let now = Instant::now();
                        if now < next_send {
                            std::thread::sleep(next_send - now);
                        }
                        next_send += tick;
                    }
                    let body = &bodies[i % bodies.len()];
                    i += 1;
                    let sent = Instant::now();
                    match client.request("POST", "/v1/predict", Some(body)) {
                        Ok(r) if r.status == 200 => {
                            ok += 1;
                            latencies.push(sent.elapsed().as_secs_f64());
                        }
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                (ok, errors, latencies)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::new();
    for h in handles {
        let (o, e, l) = h.join().expect("loadgen connection thread panicked");
        ok += o;
        errors += e;
        latencies.extend(l);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RunResult {
        workers,
        ok,
        errors,
        elapsed: started.elapsed(),
        latencies,
        traces: fetch_traces(addr),
    }
}

/// One incremental-traffic (ECO session) run.
struct EcoRun {
    ok: u64,
    errors: u64,
    elapsed: Duration,
    /// Sorted per-edit round-trip latencies, seconds.
    latencies: Vec<f64>,
    sessions: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

impl EcoRun {
    fn edits_per_s(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((self.latencies.len() as f64 - 1.0) * p / 100.0).round() as usize;
        self.latencies[idx.min(self.latencies.len() - 1)]
    }
}

/// Drives the session endpoints: each connection owns one resident
/// design session and streams single-edit ECO batches at it closed-loop
/// (the realistic optimizer-in-the-loop shape: edit, re-time, read).
fn drive_eco(addr: SocketAddr, args: &Args) -> EcoRun {
    use serve::json::Json;
    let conns = args.connections.clamp(1, 8);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(conns));
    let duration = args.duration;
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::new(addr).with_timeout(Duration::from_secs(30));
                let sid = format!("lg_eco_{c}");
                let create = format!(
                    "{{\"name\":\"{sid}\",\"netgen\":{{\"design\":\"PCI_BRIDGE\",\
                     \"scale\":0.02,\"seed\":{seed}}}}}",
                    seed = c + 1
                );
                let Ok(r) = client.request("POST", "/v1/session", Some(&create)) else {
                    barrier.wait();
                    return (0u64, 1u64, Vec::new());
                };
                if r.status != 201 {
                    eprintln!("loadgen: eco session create failed: {}", r.body);
                    barrier.wait();
                    return (0, 1, Vec::new());
                }
                let (net, sink) = match serve::json::parse(&r.body).ok().and_then(|v| {
                    let c = v.get("timing")?.get("critical")?.clone();
                    Some((
                        c.get("net")?.as_str()?.to_string(),
                        c.get("sink")?.as_str()?.to_string(),
                    ))
                }) {
                    Some(pair) => pair,
                    None => {
                        barrier.wait();
                        return (0, 1, Vec::new());
                    }
                };
                // A small cyclic pool of edit bodies: repeated contexts
                // let the prediction cache show its hit rate.
                let bodies: Vec<String> = (0..16)
                    .map(|i| {
                        let mut b = String::from("{\"edits\":[{\"op\":\"set_sink_load\",\"net\":");
                        obs::json::push_string(&mut b, &net);
                        b.push_str(",\"sink\":");
                        obs::json::push_string(&mut b, &sink);
                        b.push_str(&format!(",\"ceff_ff\":{}}}]}}", 1.0 + i as f64 * 0.25));
                        b
                    })
                    .collect();
                let path = format!("/v1/session/{sid}/eco");
                barrier.wait();
                let deadline = Instant::now() + duration;
                let mut ok = 0u64;
                let mut errors = 0u64;
                let mut latencies = Vec::with_capacity(4096);
                let mut i = c;
                while Instant::now() < deadline {
                    let body = &bodies[i % bodies.len()];
                    i += 1;
                    let sent = Instant::now();
                    match client.request("POST", &path, Some(body)) {
                        Ok(r) if r.status == 200 => {
                            ok += 1;
                            latencies.push(sent.elapsed().as_secs_f64());
                        }
                        Ok(r) => {
                            errors += 1;
                            if errors == 1 {
                                eprintln!("loadgen: eco edit failed ({}): {}", r.status, r.body);
                            }
                        }
                        Err(_) => errors += 1,
                    }
                    // Read back timing every few edits, as an optimizer would.
                    if i % 8 == 0 {
                        let _ = client.request("GET", &format!("/v1/session/{sid}/timing"), None);
                    }
                }
                (ok, errors, latencies)
            })
        })
        .collect();
    let started = Instant::now();
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::new();
    for h in handles {
        let (o, e, l) = h.join().expect("eco connection thread panicked");
        ok += o;
        errors += e;
        latencies.extend(l);
    }
    let elapsed = started.elapsed().min(duration.mul_f64(1.5)).max(duration);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    // Cache + session counters from the manager.
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let (sessions, cache_hits, cache_misses, cache_hit_rate) = client
        .request("GET", "/v1/session", None)
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| serve::json::parse(&r.body).ok())
        .map(|v| {
            let n = match v.get("sessions") {
                Some(Json::Arr(ids)) => ids.len(),
                _ => 0,
            };
            let cache = v.get("cache").cloned().unwrap_or(Json::Null);
            (
                n,
                cache.get("hits").and_then(Json::as_u64).unwrap_or(0),
                cache.get("misses").and_then(Json::as_u64).unwrap_or(0),
                cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(f64::NAN),
            )
        })
        .unwrap_or((0, 0, 0, f64::NAN));
    EcoRun {
        ok,
        errors,
        elapsed,
        latencies,
        sessions,
        cache_hits,
        cache_misses,
        cache_hit_rate,
    }
}

fn push_eco(out: &mut String, e: &EcoRun) {
    out.push_str("{\"edits_ok\":");
    out.push_str(&e.ok.to_string());
    out.push_str(",\"edits_err\":");
    out.push_str(&e.errors.to_string());
    out.push_str(",\"elapsed_s\":");
    obs::json::push_f64(out, e.elapsed.as_secs_f64());
    out.push_str(",\"edits_per_s\":");
    obs::json::push_f64(out, e.edits_per_s());
    out.push_str(",\"sessions\":");
    out.push_str(&e.sessions.to_string());
    out.push_str(",\"latency_ms\":{");
    for (i, (name, p)) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push_str("\":");
        obs::json::push_f64(out, e.percentile(*p) * 1e3);
    }
    out.push_str("},\"cache\":{\"hits\":");
    out.push_str(&e.cache_hits.to_string());
    out.push_str(",\"misses\":");
    out.push_str(&e.cache_misses.to_string());
    out.push_str(",\"hit_rate\":");
    obs::json::push_f64(out, e.cache_hit_rate);
    out.push_str("}}");
}

fn push_run(out: &mut String, r: &RunResult) {
    out.push('{');
    if let Some(w) = r.workers {
        out.push_str("\"workers\":");
        out.push_str(&w.to_string());
        out.push(',');
    }
    out.push_str("\"requests_ok\":");
    out.push_str(&r.ok.to_string());
    out.push_str(",\"requests_err\":");
    out.push_str(&r.errors.to_string());
    out.push_str(",\"elapsed_s\":");
    obs::json::push_f64(out, r.elapsed.as_secs_f64());
    out.push_str(",\"throughput_rps\":");
    obs::json::push_f64(out, r.throughput());
    out.push_str(",\"latency_ms\":{");
    for (i, (name, p)) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0), ("max", 100.0)]
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push_str("\":");
        obs::json::push_f64(out, r.percentile(*p) * 1e3);
    }
    out.push('}');
    if !r.traces.is_empty() {
        out.push_str(",\"traced_requests\":");
        out.push_str(&r.traces.len().to_string());
        out.push_str(",\"stage_ms_median\":{");
        for (i, stage) in [
            obs::Stage::QueueWait,
            obs::Stage::BatchWait,
            obs::Stage::Inference,
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(stage.name());
            out.push_str("\":");
            obs::json::push_f64(out, r.stage_median_ms(stage));
        }
        out.push('}');
    }
    out.push('}');
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn render_report(args: &Args, runs: &[RunResult], eco: Option<&EcoRun>) -> String {
    let mut out = String::from("{\"schema\":\"serve.loadgen.v1\",\"mode\":");
    obs::json::push_string(
        &mut out,
        if args.rate.is_some() { "fixed-rate" } else { "closed-loop" },
    );
    out.push_str(",\"host_cores\":");
    out.push_str(&host_cores().to_string());
    if let Some(r) = args.rate {
        out.push_str(",\"target_rps\":");
        obs::json::push_f64(&mut out, r);
    }
    out.push_str(",\"duration_s\":");
    obs::json::push_f64(&mut out, args.duration.as_secs_f64());
    out.push_str(",\"connections\":");
    out.push_str(&args.connections.to_string());
    out.push_str(",\"nets_per_request\":");
    out.push_str(&args.nets_per_request.to_string());
    out.push_str(",\"runs\":[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_run(&mut out, r);
    }
    out.push(']');
    if let Some(e) = eco {
        out.push_str(",\"eco\":");
        push_eco(&mut out, e);
    }
    if runs.len() >= 2 {
        let (first, last) = (&runs[0], &runs[runs.len() - 1]);
        if let (Some(a), Some(b)) = (first.workers, last.workers) {
            out.push_str(&format!(",\"speedup\":{{\"label\":\"{b}v{a}\",\"throughput\":"));
            obs::json::push_f64(&mut out, last.throughput() / first.throughput().max(1e-9));
            out.push_str("}}");
            return out;
        }
    }
    out.push('}');
    out
}

fn summarize(r: &RunResult) {
    let who = match r.workers {
        Some(w) => format!("{w} workers"),
        None => "remote target".to_string(),
    };
    eprintln!(
        "loadgen: {who}: {:.1} req/s ({} ok, {} err), latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        r.throughput(),
        r.ok,
        r.errors,
        r.percentile(50.0) * 1e3,
        r.percentile(95.0) * 1e3,
        r.percentile(99.0) * 1e3,
    );
    if !r.traces.is_empty() {
        eprintln!(
            "loadgen: {who}: stage medians over {} traces: queue_wait {:.2} ms, batch_wait {:.2} ms, inference {:.2} ms",
            r.traces.len(),
            r.stage_median_ms(obs::Stage::QueueWait),
            r.stage_median_ms(obs::Stage::BatchWait),
            r.stage_median_ms(obs::Stage::Inference),
        );
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(m) => {
            eprintln!("loadgen: {m}");
            std::process::exit(2);
        }
    };
    let bodies = request_pool(args.nets_per_request);
    let mut runs = Vec::new();
    let mut eco_run: Option<EcoRun> = None;

    // `--eco` is additive: the standard predict workload runs first
    // (remote drive or in-process sweep), then the incremental-traffic
    // row is measured, so one report carries both.
    let mut eco_addr: Option<SocketAddr> = None;
    let mut eco_server = None;

    if let Some(url) = &args.url {
        let addr: SocketAddr = match url.parse() {
            Ok(a) => a,
            Err(_) => {
                eprintln!("loadgen: --url must be HOST:PORT, got `{url}`");
                std::process::exit(2);
            }
        };
        eprintln!("loadgen: driving {addr} for {:?}", args.duration);
        let run = drive(addr, &bodies, &args, None);
        summarize(&run);
        runs.push(run);
        if args.eco {
            eco_addr = Some(addr);
        }
    } else {
        // In-process sweep: train once, save, and load the same
        // checkpoint into each server so every run serves identical
        // weights.
        eprintln!("loadgen: training benchmark model for the sweep");
        let ckpt =
            std::env::temp_dir().join(format!("serve_loadgen_model_{}.bin", std::process::id()));
        bench_model().save(&ckpt).expect("save bench model");
        for &workers in &args.sweep {
            let estimator =
                gnntrans::WireTimingEstimator::load(&ckpt).expect("reload demo model");
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                queue_capacity: 1024,
                ..Default::default()
            };
            let server = Server::start(cfg, estimator, "loadgen-demo").expect("start server");
            let addr = server.local_addr();
            // Short warmup so thread spawn + first-touch costs stay out
            // of the measured window.
            let warm = Args {
                duration: Duration::from_millis(300),
                rate: None,
                connections: args.connections,
                nets_per_request: args.nets_per_request,
                ..Default::default()
            };
            drive(addr, &bodies, &warm, None);
            // The trace ring is process-global here (server runs
            // in-process): clear it so the sampled stage breakdown
            // covers only this run's measured window.
            obs::trace::ring().clear();
            eprintln!("loadgen: measuring {workers} worker(s) for {:?}", args.duration);
            let run = drive(addr, &bodies, &args, Some(workers));
            summarize(&run);
            runs.push(run);
            server.shutdown();
        }
        if args.eco {
            // One more server from the same checkpoint hosts the
            // resident sessions, so the eco row is measured against
            // the exact weights the sweep served.
            let estimator =
                gnntrans::WireTimingEstimator::load(&ckpt).expect("reload demo model");
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_capacity: 1024,
                ..Default::default()
            };
            let server = Server::start(cfg, estimator, "loadgen-eco").expect("start server");
            eco_addr = Some(server.local_addr());
            eco_server = Some(server);
        }
        let _ = std::fs::remove_file(&ckpt);
    }

    if let Some(addr) = eco_addr {
        eprintln!("loadgen: driving eco sessions at {addr} for {:?}", args.duration);
        let run = drive_eco(addr, &args);
        eprintln!(
            "loadgen: eco: {:.1} edits/s ({} ok, {} err), p50 {:.2} ms, cache hit rate {:.1}%",
            run.edits_per_s(),
            run.ok,
            run.errors,
            run.percentile(50.0) * 1e3,
            run.cache_hit_rate * 100.0,
        );
        eco_run = Some(run);
    }
    if let Some(server) = eco_server {
        server.shutdown();
    }

    let report = render_report(&args, &runs, eco_run.as_ref());
    // Validate our own emission before writing.
    if let Err(e) = serve::json::parse(&report) {
        eprintln!("loadgen: BUG: report is not valid JSON: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("loadgen: wrote {}", args.out);
    if let Some(path) = &args.traces_out {
        let mut jsonl = String::new();
        for run in &runs {
            for t in &run.traces {
                t.push_json(&mut jsonl);
                jsonl.push('\n');
            }
        }
        match std::fs::write(path, &jsonl) {
            Ok(()) => eprintln!(
                "loadgen: wrote {} trace(s) to {path}",
                runs.iter().map(|r| r.traces.len()).sum::<usize>()
            ),
            Err(e) => {
                eprintln!("loadgen: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if runs.len() >= 2 {
        let speedup = runs[runs.len() - 1].throughput() / runs[0].throughput().max(1e-9);
        eprintln!(
            "loadgen: throughput speedup {} -> {} workers: {speedup:.2}x",
            runs[0].workers.unwrap_or(0),
            runs[runs.len() - 1].workers.unwrap_or(0),
        );
        let cores = host_cores();
        let top = runs.iter().filter_map(|r| r.workers).max().unwrap_or(1);
        if cores < top {
            eprintln!(
                "loadgen: note: host has {cores} core(s) — the worker pool is \
                 compute-bound, so parallel speedup requires >= {top} cores; \
                 this run validates correctness under concurrency, not scaling"
            );
        }
    }
    if let Some(e) = &eco_run {
        if e.ok == 0 {
            eprintln!("loadgen: FAIL: no successful eco edits (errors: {})", e.errors);
            std::process::exit(1);
        }
    }
    let total_errors: u64 = runs.iter().map(|r| r.errors).sum();
    if runs.iter().all(|r| r.ok == 0) {
        eprintln!("loadgen: FAIL: no successful requests (errors: {total_errors})");
        std::process::exit(1);
    }
}
