//! Per-request trace assembly for the serving pipeline.
//!
//! A [`RequestTrace`] is created when a request's HTTP head has been
//! read, travels with the job through the bounded queue and worker
//! pool (it is a cheap `Arc` clone), accumulates per-stage durations
//! from whichever thread is doing the work, and is finished on the
//! connection thread after the response bytes hit the socket. Finished
//! predict traces are frozen into [`obs::TraceRecord`]s, pushed into
//! the global trace ring (`GET /v1/traces`), and mirrored into the
//! `serve.stage_seconds{stage=...}` histograms with the trace id as a
//! tail exemplar.
//!
//! Stage semantics (see `obs::trace::Stage`):
//!
//! * `accept` — reading the HTTP head and body off the socket, from
//!   the moment the request line arrived (keep-alive idle time is
//!   excluded) until routing starts.
//! * `parse` — JSON body parse + SPEF parse / net generation.
//! * `queue_wait` — enqueue into the bounded queue until a worker pops
//!   the micro-batch.
//! * `batch_wait` — popped until the batch enters `predict_many`
//!   (dead-job partitioning, model acquisition, head-of-line
//!   neighbours on the fallback path).
//! * `inference` — inside `predict_many`. Co-batched jobs share one
//!   call; its full duration is attributed to every job in the batch,
//!   because each job's request did wall-clock wait that long.
//! * `respond` — everything after inference: rendering, the reply
//!   channel, the socket write, plus any unattributed scheduling gaps
//!   (computed as `total - other stages`, clamped at zero, so the
//!   stage sum always reconstructs the request wall time).
//!
//! All mutation is on relaxed atomics (nanosecond integers): the
//! connection thread and a worker can legitimately race — e.g. a
//! request that times out with 504 while its job is still queued — and
//! late writes after [`RequestTrace::finish`] are harmless.

use obs::trace::{Stage, STAGE_COUNT};
use obs::{TraceContext, TraceId, TraceRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

struct Inner {
    ctx: TraceContext,
    started: Instant,
    started_unix_ms: u64,
    /// Per-stage accumulated nanoseconds, indexed by `Stage::index`.
    stages: [AtomicU64; STAGE_COUNT],
    /// Offsets since `started` in nanoseconds; 0 = not reached yet
    /// (a real offset is never 0: marking takes nonzero time).
    enqueued_ns: AtomicU64,
    popped_ns: AtomicU64,
    inference_started: AtomicBool,
    nets: AtomicU64,
    /// Set for predict requests: only they are recorded into the ring
    /// and stage histograms; other endpoints still echo `x-trace-id`.
    pipeline: AtomicBool,
}

/// A shareable handle to one request's in-flight trace.
#[derive(Clone)]
pub struct RequestTrace {
    inner: Arc<Inner>,
}

impl RequestTrace {
    /// Starts a trace for a request whose first line arrived at
    /// `started`. A parseable `x-trace-id` header value is honored
    /// (so callers and upstream proxies can correlate); anything else
    /// gets a fresh random id.
    pub fn begin(header: Option<&str>, started: Instant) -> RequestTrace {
        let trace_id = header
            .and_then(TraceId::parse)
            .unwrap_or_else(TraceId::generate);
        RequestTrace {
            inner: Arc::new(Inner {
                ctx: TraceContext::new(trace_id),
                started,
                started_unix_ms: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
                stages: Default::default(),
                enqueued_ns: AtomicU64::new(0),
                popped_ns: AtomicU64::new(0),
                inference_started: AtomicBool::new(false),
                nets: AtomicU64::new(0),
                pipeline: AtomicBool::new(false),
            }),
        }
    }

    /// The context to install (`obs::trace::scope`) while working on
    /// this request.
    pub fn ctx(&self) -> TraceContext {
        self.inner.ctx
    }

    /// The trace id as 32 hex digits (the `x-trace-id` echo value).
    pub fn id_hex(&self) -> String {
        self.inner.ctx.trace_id.to_hex()
    }

    fn offset_ns(&self) -> u64 {
        (self.inner.started.elapsed().as_nanos() as u64).max(1)
    }

    /// Adds `d` to `stage`.
    pub fn record(&self, stage: Stage, d: Duration) {
        self.inner.stages[stage.index()].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Marks this as a predict-pipeline request (recorded on finish).
    pub fn mark_pipeline(&self) {
        self.inner.pipeline.store(true, Ordering::Relaxed);
    }

    /// Records how many nets the request carries.
    pub fn set_nets(&self, n: usize) {
        self.inner.nets.store(n as u64, Ordering::Relaxed);
    }

    /// The job is about to enter the bounded queue. Called *before*
    /// the push so a worker cannot pop the job first and compute
    /// `queue_wait` from an unset mark.
    pub fn mark_enqueued(&self) {
        self.inner.enqueued_ns.store(self.offset_ns(), Ordering::Relaxed);
    }

    /// A worker popped the job: closes `queue_wait`.
    pub fn mark_popped(&self) {
        let now = self.offset_ns();
        let enqueued = self.inner.enqueued_ns.load(Ordering::Relaxed);
        if enqueued != 0 {
            self.inner.stages[Stage::QueueWait.index()]
                .fetch_add(now.saturating_sub(enqueued), Ordering::Relaxed);
        }
        self.inner.popped_ns.store(now, Ordering::Relaxed);
    }

    /// The job's batch is entering `predict_many`: closes
    /// `batch_wait`. Idempotent — the fallback path re-enters
    /// inference per job, but only the first entry defines the wait.
    pub fn mark_inference_start(&self) {
        if self.inner.inference_started.swap(true, Ordering::Relaxed) {
            return;
        }
        let now = self.offset_ns();
        let popped = self.inner.popped_ns.load(Ordering::Relaxed);
        if popped != 0 {
            self.inner.stages[Stage::BatchWait.index()]
                .fetch_add(now.saturating_sub(popped), Ordering::Relaxed);
        }
    }

    /// Adds `d` of `predict_many` time (additive: the fallback path
    /// may run inference more than once for a job).
    pub fn record_inference(&self, d: Duration) {
        self.record(Stage::Inference, d);
    }

    /// Freezes the trace after the response was written. `respond` is
    /// computed as the unattributed remainder of the wall time, so the
    /// six stages always sum to the request's total. Predict traces
    /// are pushed to the global ring, observed into the per-stage
    /// histograms (trace id attached as a tail exemplar), and — above
    /// `slow` — reported via a structured warn event. Recording is
    /// skipped entirely when `OBS_TRACE` disables tracing.
    pub fn finish(&self, status: u16, slow: Duration) -> TraceRecord {
        let total_ns = self.offset_ns();
        let mut stages_ns = [0u64; STAGE_COUNT];
        for (slot, stage) in stages_ns.iter_mut().zip(&self.inner.stages) {
            *slot = stage.load(Ordering::Relaxed);
        }
        let attributed: u64 = stages_ns.iter().sum();
        stages_ns[Stage::Respond.index()] += total_ns.saturating_sub(attributed);
        let mut stages = [0f64; STAGE_COUNT];
        for (s, ns) in stages.iter_mut().zip(stages_ns) {
            *s = ns as f64 / 1e9;
        }
        let record = TraceRecord {
            trace_id: self.inner.ctx.trace_id,
            started_unix_ms: self.inner.started_unix_ms,
            total_s: total_ns as f64 / 1e9,
            status,
            nets: self.inner.nets.load(Ordering::Relaxed) as u32,
            stages,
        };
        let pipeline = self.inner.pipeline.load(Ordering::Relaxed);
        if pipeline && obs::trace::tracing_enabled() {
            obs::counter("serve.trace.requests").inc();
            for stage in Stage::ALL {
                obs::histogram_labeled("serve.stage_seconds", Some(stage.name()))
                    .observe_traced(record.stage(stage), Some(record.trace_id));
            }
            obs::trace::ring().push(record.clone());
            if record.total_s >= slow.as_secs_f64() {
                obs::counter("serve.trace.slow").inc();
                obs::event!(
                    obs::Level::Warn,
                    "serve.trace",
                    "slow request",
                    trace_id = record.trace_id.to_hex(),
                    status = u64::from(status),
                    nets = self.inner.nets.load(Ordering::Relaxed),
                    total_ms = record.total_s * 1e3,
                    queue_wait_ms = record.stage(Stage::QueueWait) * 1e3,
                    batch_wait_ms = record.stage(Stage::BatchWait) * 1e3,
                    inference_ms = record.stage(Stage::Inference) * 1e3,
                );
            }
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracing toggle and the ring are process-global; serialize
    // the tests that touch them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn honors_parseable_header_and_generates_otherwise() {
        let t = RequestTrace::begin(Some("deadbeef"), Instant::now());
        assert_eq!(t.id_hex(), format!("{:032x}", 0xdead_beefu64));
        let bad = RequestTrace::begin(Some("not hex!"), Instant::now());
        assert_ne!(bad.id_hex(), t.id_hex());
        assert_eq!(bad.id_hex().len(), 32);
        let none = RequestTrace::begin(None, Instant::now());
        assert_ne!(none.id_hex(), bad.id_hex());
    }

    #[test]
    fn stages_sum_to_total_and_queue_marks_work() {
        let _g = lock();
        obs::trace::set_tracing(true);
        let t = RequestTrace::begin(None, Instant::now());
        t.mark_pipeline();
        t.set_nets(3);
        t.record(Stage::Accept, Duration::from_millis(1));
        t.record(Stage::Parse, Duration::from_millis(2));
        t.mark_enqueued();
        std::thread::sleep(Duration::from_millis(5));
        t.mark_popped();
        std::thread::sleep(Duration::from_millis(2));
        t.mark_inference_start();
        // A second start must not extend batch_wait.
        t.mark_inference_start();
        t.record_inference(Duration::from_millis(4));
        let record = t.finish(200, Duration::from_secs(1));
        assert_eq!(record.status, 200);
        assert_eq!(record.nets, 3);
        assert!(record.stage(Stage::QueueWait) >= 0.004);
        assert!(record.stage(Stage::BatchWait) >= 0.001);
        assert!(record.stage(Stage::BatchWait) < 0.1);
        assert_eq!(record.stage(Stage::Inference), 0.004);
        // Respond absorbs the remainder, so the sum reconstructs the
        // total — except that this test *injects* 7 ms of synthetic
        // stage time that took no wall clock, which the respond clamp
        // cannot subtract back out. The sum may exceed the total by at
        // most that injected amount, and never undershoots.
        let sum = record.stage_sum();
        let injected = 0.001 + 0.002 + 0.004;
        assert!(sum + 1e-9 >= record.total_s, "sum {sum} < total {}", record.total_s);
        assert!(
            sum - record.total_s <= injected + 1e-9,
            "sum {sum} vs total {}",
            record.total_s
        );
    }

    #[test]
    fn stage_sum_is_exact_without_synthetic_time() {
        let _g = lock();
        obs::trace::set_tracing(true);
        let t = RequestTrace::begin(None, Instant::now());
        t.mark_pipeline();
        t.mark_enqueued();
        std::thread::sleep(Duration::from_millis(3));
        t.mark_popped();
        t.mark_inference_start();
        std::thread::sleep(Duration::from_millis(1));
        let record = t.finish(200, Duration::from_secs(1));
        let sum = record.stage_sum();
        assert!(
            (sum - record.total_s).abs() <= 1e-9,
            "sum {sum} vs total {}",
            record.total_s
        );
        assert!(record.stage(Stage::QueueWait) >= 0.002);
        assert!(record.stage(Stage::Respond) >= 0.0005);
    }

    #[test]
    fn non_pipeline_traces_stay_out_of_the_ring() {
        let _g = lock();
        obs::trace::set_tracing(true);
        let before = obs::trace::ring().recorded();
        let t = RequestTrace::begin(None, Instant::now());
        t.finish(200, Duration::from_secs(1));
        assert_eq!(obs::trace::ring().recorded(), before);
    }

    #[test]
    fn disabled_tracing_skips_recording() {
        let _g = lock();
        obs::trace::set_tracing(false);
        let before = obs::trace::ring().recorded();
        let t = RequestTrace::begin(None, Instant::now());
        t.mark_pipeline();
        t.finish(200, Duration::from_secs(1));
        assert_eq!(obs::trace::ring().recorded(), before);
        obs::trace::set_tracing(true);
    }
}
