//! Production inference service for the wire-timing estimator.
//!
//! A std-only HTTP/1.1 server (`std::net::TcpListener`, no external
//! dependencies — the build environment is offline) that loads a saved
//! [`gnntrans::WireTimingEstimator`] checkpoint and serves predictions:
//!
//! - `POST /v1/predict` — time nets supplied as an inline SPEF string
//!   (or a `netgen` spec for demos); requests are queued and
//!   micro-batched into single `predict_many` calls.
//! - `GET /healthz` — liveness + live model generation.
//! - `GET /metrics` — the obs registry snapshot as JSON;
//!   `?format=prometheus` renders text exposition instead.
//! - `GET /v1/traces` — recent per-request stage-breakdown traces
//!   (`?n=K&min_ms=X`). Every response carries an `x-trace-id` header
//!   (generated, or honored from the request).
//! - `POST /v1/session` — load a design into a resident ECO session;
//!   `POST /v1/session/{id}/eco` applies edit batches and re-times only
//!   the dirty cone; `GET /v1/session/{id}/timing`,
//!   `POST /v1/session/{id}/rollback` and `DELETE /v1/session/{id}`
//!   complete the lifecycle (see the `eco` crate).
//! - `POST /v1/model/reload` — atomic hot-swap to a new checkpoint,
//!   canary-validated first; in-flight requests finish on the old
//!   weights. A successful swap also invalidates the shared ECO
//!   prediction cache.
//! - `POST /admin/shutdown` — flag a graceful drain.
//!
//! Load-shedding is explicit: a bounded queue rejects overflow with
//! `503` + `Retry-After`, and per-request deadlines turn stale queued
//! work into `504` instead of wasted compute.

pub mod client;
pub mod http;
pub mod json;
pub mod model;
pub mod queue;
pub mod server;
pub(crate) mod session_api;
pub mod trace;

pub use client::{Client, ClientResponse};
pub use model::{demo_model, validate_canary, LoadedModel, ModelSlot, ReloadError};
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeConfig, Server};
pub use trace::RequestTrace;
