//! A small recursive-descent JSON parser for request bodies.
//!
//! The workspace is std-only (offline build environment); `obs::json`
//! already emits JSON, this module is its reading counterpart. It
//! accepts strict RFC 8259 JSON with a nesting-depth cap so hostile
//! bodies cannot blow the stack.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (one value, trailing whitespace only).
///
/// # Errors
///
/// Returns [`JsonError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32).wrapping_sub(0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one full UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        let n: f64 = s
            .parse()
            .map_err(|_| self.err(format!("bad number `{s}`")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(false));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[2].get("b").and_then(Json::as_str), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(parse(r#""\u00b5s""#).unwrap(), Json::Str("\u{b5}s".into()));
        assert_eq!(
            parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("\u{1d11e}".into())
        );
        assert!(parse(r#""\ud834""#).is_err());
        // Raw UTF-8 passes through.
        assert_eq!(parse("\"\u{65e5}\"").unwrap(), Json::Str("\u{65e5}".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "tru", "1 2", "\"\\x\"", "\"", "{\"a\" 1}", "01a",
            "nan", "--1", "1e999",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn round_trips_obs_emitted_json() {
        // The service's own /metrics output must be parseable.
        obs::counter("serve.json.test").inc();
        let report = obs::RunReport::capture().to_json();
        let v = parse(&report).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("obs.run_report.v1")
        );
    }
}
