//! Atomic model hot-reload.
//!
//! The live model is an `Arc<LoadedModel>` behind an `RwLock`. Workers
//! clone the `Arc` once per batch (a read lock held for nanoseconds),
//! so a concurrent swap never disturbs in-flight predictions: requests
//! already holding the old `Arc` finish on the old weights, requests
//! batched after the swap see the new ones. Candidate checkpoints are
//! validated on a canary SPEF net *before* the swap, so a corrupt or
//! degenerate checkpoint can never take over serving.

use gnntrans::WireTimingEstimator;
use std::sync::{Arc, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// A model generation currently (or formerly) live.
#[derive(Debug)]
pub struct LoadedModel {
    /// The estimator itself.
    pub estimator: WireTimingEstimator,
    /// Where it came from (checkpoint path or "in-process").
    pub source: String,
    /// Monotonic generation number, starting at 1.
    pub generation: u64,
    /// Milliseconds since the Unix epoch at activation.
    pub activated_unix_ms: u128,
}

/// Why a reload was refused; the previous model stays live in every case.
#[derive(Debug)]
pub enum ReloadError {
    /// The checkpoint failed to load (corrupt, truncated, missing).
    Load(gnntrans::CoreError),
    /// The checkpoint loaded but failed canary validation.
    Canary(String),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Load(e) => write!(f, "checkpoint rejected: {e}"),
            ReloadError::Canary(m) => write!(f, "canary validation failed: {m}"),
        }
    }
}

/// A tiny two-sink SPEF net every accepted model must time to finite,
/// non-negative values before it may serve traffic.
const CANARY_SPEF: &str = r#"*SPEF "IEEE 1481-1998"
*DESIGN "canary"
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET canary 6.0
*CONN
*I drv:Z O
*I lda:A I
*I ldb:A I
*CAP
1 canary:1 1.0
2 lda:A 2.0
3 ldb:A 1.5
*RES
1 drv:Z canary:1 20.0
2 canary:1 lda:A 35.0
3 canary:1 ldb:A 15.0
*END
"#;

/// Runs the canary prediction against `est`.
///
/// # Errors
///
/// Describes the first non-finite / non-physical output, or the
/// prediction failure itself.
pub fn validate_canary(est: &WireTimingEstimator) -> Result<(), String> {
    let preds = est
        .predict_spef(CANARY_SPEF)
        .map_err(|e| format!("canary prediction failed: {e}"))?;
    for p in &preds {
        for (sink, e) in p.sinks.iter().zip(&p.estimates) {
            let (s, d) = (e.slew.value(), e.delay.value());
            if !s.is_finite() || !d.is_finite() || s < 0.0 || d < 0.0 {
                return Err(format!(
                    "canary sink `{sink}` predicted slew {s}, delay {d}"
                ));
            }
        }
    }
    Ok(())
}

/// Trains a small demonstration estimator on synthetic nets — used by
/// `serve --train-demo`, the smoke test, and the loadgen driver when no
/// checkpoint is supplied. Deterministic in `seed`.
pub fn demo_model(seed: u64, nets: usize, epochs: usize) -> WireTimingEstimator {
    use gnntrans::{DatasetBuilder, EstimatorConfig};
    use netgen::nets::{NetConfig, NetGenerator};
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 12,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    let nets: Vec<_> = (0..nets.max(4))
        .map(|i| g.net(format!("demo{i}"), i % 3 == 0))
        .collect();
    let mut builder = DatasetBuilder::new(seed.wrapping_add(1));
    let data = builder.build(&nets).expect("demo nets must featurize");
    let mut est = WireTimingEstimator::new(
        &EstimatorConfig {
            gnn_layers: 2,
            attn_layers: 1,
            hidden: 8,
            heads: 2,
            mlp_hidden: 8,
            epochs: epochs.max(1),
            lr: 5e-3,
        },
        seed,
    );
    est.train(&data).expect("demo training must converge");
    est
}

/// The hot-swappable model slot.
pub struct ModelSlot {
    current: RwLock<Arc<LoadedModel>>,
    reloads: obs::Counter,
    reload_failures: obs::Counter,
    generation_gauge: obs::Gauge,
}

fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

impl ModelSlot {
    /// A slot initially serving `estimator` (generation 1). The initial
    /// model is canary-validated too: a server must never come up
    /// serving garbage.
    ///
    /// # Errors
    ///
    /// Returns [`ReloadError::Canary`] when the initial model fails
    /// validation.
    pub fn new(estimator: WireTimingEstimator, source: &str) -> Result<Self, ReloadError> {
        validate_canary(&estimator).map_err(ReloadError::Canary)?;
        let generation_gauge = obs::gauge("serve.model.generation");
        generation_gauge.set(1.0);
        Ok(ModelSlot {
            current: RwLock::new(Arc::new(LoadedModel {
                estimator,
                source: source.to_string(),
                generation: 1,
                activated_unix_ms: now_ms(),
            })),
            reloads: obs::counter("serve.model.reloads"),
            reload_failures: obs::counter("serve.model.reload_failures"),
            generation_gauge,
        })
    }

    /// The live model. Cheap: one read lock + `Arc` clone.
    pub fn current(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.current.read().expect("model slot poisoned"))
    }

    /// Loads `path`, canary-validates it, and atomically swaps it in.
    /// In-flight requests keep their `Arc` to the old generation and
    /// finish undisturbed.
    ///
    /// # Errors
    ///
    /// [`ReloadError`]; the previous model remains live.
    pub fn reload_from(&self, path: &str) -> Result<Arc<LoadedModel>, ReloadError> {
        let result = WireTimingEstimator::load(path)
            .map_err(ReloadError::Load)
            .and_then(|est| {
                validate_canary(&est).map_err(ReloadError::Canary)?;
                Ok(est)
            });
        let est = match result {
            Ok(est) => est,
            Err(e) => {
                self.reload_failures.inc();
                obs::event!(
                    obs::Level::Warn,
                    "serve.model",
                    "hot-reload rejected, keeping live model",
                    path = path,
                    error = e.to_string(),
                );
                return Err(e);
            }
        };
        let mut slot = self.current.write().expect("model slot poisoned");
        let next = Arc::new(LoadedModel {
            estimator: est,
            source: path.to_string(),
            generation: slot.generation + 1,
            activated_unix_ms: now_ms(),
        });
        *slot = Arc::clone(&next);
        drop(slot);
        self.reloads.inc();
        self.generation_gauge.set(next.generation as f64);
        obs::event!(
            obs::Level::Info,
            "serve.model",
            "hot-reloaded model",
            path = path,
            generation = next.generation,
        );
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnntrans::EstimatorConfig;

    pub(crate) fn tiny_trained(seed: u64) -> WireTimingEstimator {
        demo_model(seed, 10, 8)
    }

    #[test]
    fn reload_swaps_generation_and_keeps_old_arcs_alive() {
        let slot = ModelSlot::new(tiny_trained(3), "in-process").unwrap();
        let before = slot.current();
        assert_eq!(before.generation, 1);

        let path = std::env::temp_dir().join("serve_model_slot_test.bin");
        tiny_trained(9).save(&path).unwrap();
        let after = slot.reload_from(path.to_str().unwrap()).unwrap();
        assert_eq!(after.generation, 2);
        assert_eq!(slot.current().generation, 2);
        // The old Arc is still usable — in-flight requests finish.
        assert!(validate_canary(&before.estimator).is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reload_rejects_corrupt_checkpoint_and_keeps_serving() {
        let slot = ModelSlot::new(tiny_trained(4), "in-process").unwrap();
        let path = std::env::temp_dir().join("serve_model_slot_corrupt.bin");
        std::fs::write(&path, b"NOPE not a checkpoint").unwrap();
        assert!(matches!(
            slot.reload_from(path.to_str().unwrap()),
            Err(ReloadError::Load(_))
        ));
        assert_eq!(slot.current().generation, 1);
        assert!(matches!(
            slot.reload_from("/nonexistent/model.bin"),
            Err(ReloadError::Load(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn untrained_model_fails_canary() {
        let est = WireTimingEstimator::new(&EstimatorConfig::plan_b_small(), 1);
        assert!(matches!(
            ModelSlot::new(est, "in-process"),
            Err(ReloadError::Canary(_))
        ));
    }
}
