//! The inference server: accept loop, connection handling, request
//! routing, worker pool, and graceful shutdown.
//!
//! ```text
//! accept loop ──► connection threads ──► bounded queue ──► worker pool
//!                  (parse HTTP+JSON,      (backpressure:     (micro-batch
//!                   validate SPEF,         503 when full)     drain, one
//!                   wait for reply)                           predict_many
//!                                                             per batch)
//! ```
//!
//! Non-predict endpoints (`/healthz`, `/metrics`, `/v1/model/reload`)
//! are answered inline on the connection thread: they must stay
//! responsive even when the predict queue is saturated.

use crate::http::{read_request, HttpError, Request, Response};
use crate::json::{self, Json};
use crate::model::{LoadedModel, ModelSlot, ReloadError};
use crate::queue::{BoundedQueue, PushError};
use crate::trace::RequestTrace;
use gnntrans::{NetContext, PathEstimate};
use obs::trace::Stage;
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::{RcNet, Seconds};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads draining the predict queue. `0` is allowed (and
    /// only useful) in tests that exercise queue backpressure.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests get 503.
    pub queue_capacity: usize,
    /// Most jobs one worker drains per micro-batch.
    pub batch_max: usize,
    /// Default per-request deadline.
    pub deadline: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Most nets accepted in one predict request.
    pub max_nets_per_request: usize,
    /// Idle read timeout on keep-alive connections.
    pub idle_timeout: Duration,
    /// Requests slower than this emit a structured warn event with
    /// their stage breakdown (and count into `serve.trace.slow`).
    pub slow_request: Duration,
    /// Most nets accepted in one design session.
    pub max_session_nets: usize,
    /// Most edits accepted in one `POST /v1/session/{id}/eco` batch.
    pub max_edits_per_request: usize,
    /// Byte budget across resident design sessions (LRU-evicted past it).
    pub session_byte_budget: usize,
    /// Byte budget of the shared ECO prediction cache.
    pub session_cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            batch_max: 16,
            deadline: Duration::from_secs(5),
            max_body_bytes: 8 * 1024 * 1024,
            max_nets_per_request: 512,
            idle_timeout: Duration::from_secs(30),
            slow_request: Duration::from_millis(250),
            max_session_nets: 20_000,
            max_edits_per_request: 64,
            session_byte_budget: 256 << 20,
            session_cache_bytes: 64 << 20,
        }
    }
}

/// Why a queued job did not produce predictions.
enum JobError {
    /// The deadline passed before a worker got to it (504).
    Expired,
    /// Prediction failed (500; message included).
    Predict(String),
}

/// One queued predict request.
struct PredictJob {
    nets: Vec<RcNet>,
    ctxs: Vec<NetContext>,
    reply: mpsc::Sender<Result<String, JobError>>,
    deadline: Instant,
    /// The request's trace, carried across the queue handoff so the
    /// worker can close `queue_wait`/`batch_wait` and attribute
    /// inference time.
    trace: RequestTrace,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) slot: ModelSlot,
    /// Live ECO design sessions + their shared prediction cache.
    pub(crate) sessions: eco::SessionManager,
    queue: BoundedQueue<PredictJob>,
    shutdown: AtomicBool,
    started: Instant,
}

/// A running server. Dropping it without [`Server::shutdown`] leaves
/// threads running; call shutdown for a clean drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects models that fail canary
    /// validation (see [`ModelSlot::new`]) as `InvalidInput`.
    pub fn start(
        cfg: ServeConfig,
        estimator: gnntrans::WireTimingEstimator,
        source: &str,
    ) -> std::io::Result<Server> {
        let slot = ModelSlot::new(estimator, source).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
        })?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity, obs::gauge("serve.queue.depth")),
            sessions: eco::SessionManager::new(cfg.session_byte_budget, cfg.session_cache_bytes),
            cfg,
            slot,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });

        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };

        obs::event!(
            obs::Level::Info,
            "serve.server",
            "listening",
            addr = addr.to_string(),
            workers = shared.cfg.workers,
            queue_capacity = shared.cfg.queue_capacity,
            batch_max = shared.cfg.batch_max,
        );
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether `POST /admin/shutdown` (or a signal handler calling
    /// [`Server::request_shutdown`]) asked the server to stop.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Flags the server to stop; [`Server::shutdown`] performs the
    /// actual drain and join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, let workers drain every job
    /// already queued, then join all threads.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Closing after the acceptor stops means no request accepted
        // before the flag flipped is dropped: it either enqueued (and
        // will be drained) or gets a clean 503.
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        obs::event!(obs::Level::Info, "serve.server", "drained and stopped");
        // Flush event sinks after the drain: a JsonlSink must not lose
        // the tail of its buffer when the process exits right after.
        obs::flush();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs::counter("serve.http.connections").inc();
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection_loop(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed) => return,
            Err(HttpError::Bad(m)) => {
                let _ = Response::error(400, &m).write_to(&mut write_half, false);
                record_response(400);
                return;
            }
            Err(HttpError::BodyTooLarge(n)) => {
                let _ = Response::error(413, &format!("body of {n} bytes exceeds limit"))
                    .write_to(&mut write_half, false);
                record_response(413);
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let endpoint = format!("{} {}", request.method, request.path);
        obs::counter_labeled("serve.http.requests", Some(&endpoint)).inc();

        // The trace honors a parseable `x-trace-id` header and starts
        // at the request line; everything read so far is `accept`.
        let trace = RequestTrace::begin(request.header("x-trace-id"), request.read_started);
        trace.record(Stage::Accept, request.read_started.elapsed());
        // Ambient context for everything this thread does on behalf of
        // the request (events, nested par maps on inline endpoints).
        let scope = obs::trace::scope(trace.ctx());

        let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let response = route(&request, shared, &trace).with_header("x-trace-id", &trace.id_hex());
        record_response(response.status);
        obs::histogram("serve.request.seconds")
            .observe_traced(request.read_started.elapsed().as_secs_f64(), Some(trace.ctx().trace_id));
        let write_ok = response.write_to(&mut write_half, keep_alive).is_ok();
        trace.finish(response.status, shared.cfg.slow_request);
        drop(scope);
        if !write_ok || !keep_alive {
            return;
        }
    }
}

fn record_response(status: u16) {
    obs::counter_labeled("serve.http.responses", Some(&status.to_string())).inc();
}

fn route(request: &Request, shared: &Arc<Shared>, trace: &RequestTrace) -> Response {
    if let Some(response) = crate::session_api::route(request, shared, trace) {
        return response;
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(request),
        ("GET", "/v1/traces") => traces(request),
        ("POST", "/v1/predict") => predict(request, shared, trace),
        ("POST", "/v1/model/reload") => reload(request, shared),
        ("POST", "/admin/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"draining\":true}")
        }
        ("GET" | "POST", _) => Response::error(404, "unknown path"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// `GET /metrics`: the obs registry — JSON `RunReport` by default,
/// Prometheus text exposition with `?format=prometheus`.
fn metrics(request: &Request) -> Response {
    match request.query_param("format") {
        Some("prometheus") => Response::text(200, obs::prometheus::render_current()),
        Some(other) if other != "json" => {
            Response::error(400, &format!("unknown metrics format `{other}`"))
        }
        _ => Response::json(200, obs::RunReport::capture().to_json()),
    }
}

/// `GET /v1/traces?n=K&min_ms=X`: the most recent completed predict
/// traces, newest first.
fn traces(request: &Request) -> Response {
    let ring = obs::trace::ring();
    let n = request
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .min(ring.capacity());
    let min_ms = request
        .query_param("min_ms")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let rows = ring.snapshot();
    let mut body = String::with_capacity(256 * n.min(rows.len()) + 64);
    body.push_str("{\"capacity\":");
    body.push_str(&ring.capacity().to_string());
    body.push_str(",\"recorded\":");
    body.push_str(&ring.recorded().to_string());
    body.push_str(",\"traces\":[");
    // snapshot() is oldest-first; serve the newest n above the cutoff.
    for (i, rec) in rows
        .iter()
        .rev()
        .filter(|r| r.total_s * 1e3 >= min_ms)
        .take(n)
        .enumerate()
    {
        if i > 0 {
            body.push(',');
        }
        rec.push_json(&mut body);
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn healthz(shared: &Arc<Shared>) -> Response {
    let model = shared.slot.current();
    let mut body = String::with_capacity(256);
    body.push_str("{\"status\":\"ok\",\"model\":{\"generation\":");
    body.push_str(&model.generation.to_string());
    body.push_str(",\"source\":");
    obs::json::push_string(&mut body, &model.source);
    body.push_str(",\"weights\":");
    body.push_str(&model.estimator.weight_count().to_string());
    body.push_str(",\"activated_unix_ms\":");
    body.push_str(&model.activated_unix_ms.to_string());
    body.push_str("},\"queue_depth\":");
    body.push_str(&shared.queue.depth().to_string());
    body.push_str(",\"uptime_s\":");
    obs::json::push_f64(&mut body, shared.started.elapsed().as_secs_f64());
    body.push('}');
    Response::json(200, body)
}

fn reload(request: &Request, shared: &Arc<Shared>) -> Response {
    let body = match request.body_utf8() {
        Ok(b) => b,
        Err(_) => return Response::error(400, "body is not valid UTF-8"),
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let Some(path) = parsed.get("path").and_then(Json::as_str) else {
        return Response::error(400, "missing string field `path`");
    };
    match shared.slot.reload_from(path) {
        Ok(model) => {
            // New weights invalidate every cached ECO prediction. The
            // generation is part of the cache key, so this is about
            // reclaiming bytes dead to the old generation, not
            // correctness — but both properties are load-bearing.
            shared.sessions.invalidate_prediction_cache();
            let mut out = String::from("{\"reloaded\":true,\"generation\":");
            out.push_str(&model.generation.to_string());
            out.push_str(",\"source\":");
            obs::json::push_string(&mut out, &model.source);
            out.push('}');
            Response::json(200, out)
        }
        Err(e @ ReloadError::Load(_)) => Response::error(400, &e.to_string()),
        Err(e @ ReloadError::Canary(_)) => Response::error(400, &e.to_string()),
    }
}

/// Parses the predict request body into nets + contexts.
fn parse_predict_body(
    body: &Json,
    cfg: &ServeConfig,
) -> Result<(Vec<RcNet>, Vec<NetContext>), String> {
    let nets: Vec<RcNet> = match (body.get("spef"), body.get("netgen")) {
        (Some(spef), None) => {
            let text = spef.as_str().ok_or("field `spef` must be a string")?;
            let doc = rcnet::spef::parse(text).map_err(|e| e.to_string())?;
            if doc.nets.is_empty() {
                return Err("SPEF document contains no nets".into());
            }
            doc.nets
        }
        (None, Some(spec)) => {
            let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(1);
            let count = spec.get("count").and_then(Json::as_u64).unwrap_or(1) as usize;
            if count == 0 {
                return Err("netgen `count` must be at least 1".into());
            }
            let nontree = spec.get("nontree").and_then(Json::as_bool).unwrap_or(false);
            let mut net_cfg = NetConfig::default();
            if let Some(v) = spec.get("nodes_min").and_then(Json::as_u64) {
                net_cfg.nodes_min = (v as usize).max(2);
            }
            if let Some(v) = spec.get("nodes_max").and_then(Json::as_u64) {
                net_cfg.nodes_max = (v as usize).max(net_cfg.nodes_min);
            }
            if count > cfg.max_nets_per_request {
                return Err(format!(
                    "netgen `count` {count} exceeds per-request limit {}",
                    cfg.max_nets_per_request
                ));
            }
            let mut g = NetGenerator::new(seed, net_cfg);
            (0..count)
                .map(|i| g.net(format!("gen{seed}_{i}"), nontree))
                .collect()
        }
        (Some(_), Some(_)) => return Err("supply either `spef` or `netgen`, not both".into()),
        (None, None) => return Err("missing `spef` or `netgen` field".into()),
    };
    if nets.len() > cfg.max_nets_per_request {
        return Err(format!(
            "{} nets exceeds per-request limit {}",
            nets.len(),
            cfg.max_nets_per_request
        ));
    }
    let input_slew = body
        .get("input_slew_ps")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0 && *v < 1e6);
    let drive_strength = body
        .get("drive_strength")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0 && *v < 1e6);
    let ctxs = nets
        .iter()
        .map(|net| {
            let mut ctx = NetContext::generic(net);
            if let Some(s) = input_slew {
                ctx.input_slew = Seconds::from_ps(s);
            }
            if let Some(d) = drive_strength {
                ctx.drive_strength = d;
            }
            ctx
        })
        .collect();
    Ok((nets, ctxs))
}

fn predict(request: &Request, shared: &Arc<Shared>, trace: &RequestTrace) -> Response {
    let started = Instant::now();
    trace.mark_pipeline();
    let body = match request.body_utf8() {
        Ok(b) => b,
        Err(_) => return Response::error(400, "body is not valid UTF-8"),
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => {
            trace.record(Stage::Parse, started.elapsed());
            return Response::error(400, &e.to_string());
        }
    };
    let (nets, ctxs) = match parse_predict_body(&parsed, &shared.cfg) {
        Ok(v) => v,
        Err(m) => {
            trace.record(Stage::Parse, started.elapsed());
            return Response::error(400, &m);
        }
    };
    trace.record(Stage::Parse, started.elapsed());
    trace.set_nets(nets.len());
    // Per-request deadlines may only tighten the server default.
    let deadline_ms = parsed
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(|ms| Duration::from_millis(ms.max(1)))
        .filter(|d| *d < shared.cfg.deadline)
        .unwrap_or(shared.cfg.deadline);
    let deadline = started + deadline_ms;

    let (tx, rx) = mpsc::channel();
    let job = PredictJob {
        nets,
        ctxs,
        reply: tx,
        deadline,
        trace: trace.clone(),
    };
    // Marked before the push: a worker may pop (and close queue_wait)
    // before try_push even returns.
    trace.mark_enqueued();
    if let Err((why, _job)) = shared.queue.try_push(job) {
        return match why {
            PushError::Full => {
                obs::counter("serve.queue.rejected_full").inc();
                Response::error(503, "request queue is full")
                    .with_header("Retry-After", "1")
            }
            PushError::Closed => {
                Response::error(503, "server is draining").with_header("Retry-After", "5")
            }
        };
    }

    // Wait slightly past the deadline so the worker's own Expired
    // verdict (sent at pop time) wins the race when possible.
    let wait = deadline
        .saturating_duration_since(Instant::now())
        .saturating_add(Duration::from_millis(50));
    let outcome = rx.recv_timeout(wait);
    obs::histogram("serve.predict.seconds").observe(started.elapsed().as_secs_f64());
    match outcome {
        Ok(Ok(json_body)) => Response::json(200, json_body),
        Ok(Err(JobError::Expired)) => {
            Response::error(504, "deadline expired before a worker picked the request up")
        }
        Ok(Err(JobError::Predict(m))) => Response::error(500, &m),
        Err(_) => {
            obs::counter("serve.predict.deadline_expired").inc();
            Response::error(504, "deadline expired")
        }
    }
}

/// Renders one job's predictions as the response body.
fn render_predictions(
    model: &LoadedModel,
    nets: &[RcNet],
    per_net: &[Vec<PathEstimate>],
) -> String {
    let mut out = String::with_capacity(256 * nets.len());
    out.push_str("{\"model_generation\":");
    out.push_str(&model.generation.to_string());
    out.push_str(",\"nets\":[");
    for (i, (net, estimates)) in nets.iter().zip(per_net).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"net\":");
        obs::json::push_string(&mut out, net.name());
        out.push_str(",\"paths\":[");
        for (j, p) in estimates.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"sink\":");
            obs::json::push_string(&mut out, &net.node(p.sink).name);
            out.push_str(",\"slew_ps\":");
            obs::json::push_f64(&mut out, p.slew.pico_seconds());
            out.push_str(",\"delay_ps\":");
            obs::json::push_f64(&mut out, p.delay.pico_seconds());
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Predicts one job's nets, returning the rendered body.
fn predict_job(model: &LoadedModel, nets: &[RcNet], ctxs: &[NetContext]) -> Result<String, JobError> {
    let pairs = nets.iter().zip(ctxs.iter());
    match model.estimator.predict_many(pairs) {
        Ok(per_net) => Ok(render_predictions(model, nets, &per_net)),
        Err(e) => Err(JobError::Predict(e.to_string())),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let batch_jobs = obs::histogram_with("serve.predict.batch_jobs", None, || {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
    });
    let batch_nets = obs::histogram_with("serve.predict.batch_nets", None, || {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
    });
    let expired = obs::counter("serve.predict.deadline_expired");
    let nets_served = obs::counter("serve.predict.nets");
    let paths_served = obs::counter("serve.predict.paths");

    while let Some(batch) = shared.queue.pop_batch(shared.cfg.batch_max) {
        let _span = obs::span("serve_batch");
        // Every popped job — live or expired — closes its queue_wait.
        for job in &batch {
            job.trace.mark_popped();
        }
        // One Arc clone per batch: every job in it sees one model
        // generation, and a concurrent hot-reload cannot disturb it.
        let model = shared.slot.current();
        let now = Instant::now();
        let (live, dead): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|j| j.deadline > now);
        for job in dead {
            expired.inc();
            let _ = job.reply.send(Err(JobError::Expired));
        }
        if live.is_empty() {
            continue;
        }
        batch_jobs.observe(live.len() as f64);
        batch_nets.observe(live.iter().map(|j| j.nets.len()).sum::<usize>() as f64);

        // Coalesce every live job's nets into one predict_many call;
        // fall back to per-job prediction when the batch fails so one
        // poisoned net cannot fail its neighbours' requests.
        let pairs: Vec<(&RcNet, &NetContext)> = live
            .iter()
            .flat_map(|j| j.nets.iter().zip(j.ctxs.iter()))
            .collect();
        for job in &live {
            job.trace.mark_inference_start();
        }
        // The coalesced call runs under the head job's trace context,
        // so par lanes inside predict_many carry its id; the wall time
        // is attributed to every co-batched job (each waited that long).
        let coalesced = {
            let _ctx = obs::trace::scope(live[0].trace.ctx());
            let t0 = Instant::now();
            let outcome = model.estimator.predict_many(pairs);
            (outcome, t0.elapsed())
        };
        match coalesced {
            (Ok(all), spent) => {
                let mut offset = 0usize;
                for job in &live {
                    let _ctx = obs::trace::scope(job.trace.ctx());
                    job.trace.record_inference(spent);
                    let per_net = &all[offset..offset + job.nets.len()];
                    offset += job.nets.len();
                    nets_served.add(job.nets.len() as u64);
                    paths_served.add(per_net.iter().map(Vec::len).sum::<usize>() as u64);
                    let body = render_predictions(&model, &job.nets, per_net);
                    let _ = job.reply.send(Ok(body));
                }
            }
            (Err(_), _) => {
                // Re-predict each job separately so one poisoned net
                // cannot fail its neighbours' requests. The loop over
                // jobs stays serial so every reply goes out the moment
                // its own prediction finishes — one slow job must not
                // sit on its neighbours' responses (or push them past
                // their deadlines). Each job still fans out per net on
                // the par pool inside `predict_many`.
                for job in &live {
                    let _ctx = obs::trace::scope(job.trace.ctx());
                    let t0 = Instant::now();
                    let outcome = predict_job(&model, &job.nets, &job.ctxs);
                    job.trace.record_inference(t0.elapsed());
                    if outcome.is_ok() {
                        nets_served.add(job.nets.len() as u64);
                    }
                    let _ = job.reply.send(outcome);
                }
            }
        }
    }
}
