//! Bounded MPMC work queue with backpressure and micro-batch draining.
//!
//! Connection threads `try_push` (a full queue is an immediate
//! backpressure signal, never a block); worker threads `pop_batch`,
//! which waits for the first item then drains up to `max - 1` more
//! without waiting — the micro-batching collector that coalesces
//! queued requests into one `predict_many` call.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (maps to 503 + `Retry-After`).
    Full,
    /// The queue was closed for shutdown (maps to 503).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
    depth_gauge: obs::Gauge,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items; `depth_gauge` tracks
    /// the live depth.
    pub fn new(capacity: usize, depth_gauge: obs::Gauge) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        depth_gauge.set(0.0);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            depth_gauge,
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]. The item is returned alongside so the
    /// caller can fail the request it belongs to.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        if st.closed {
            return Err((PushError::Closed, item));
        }
        if st.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        st.items.push_back(item);
        self.depth_gauge.set(st.items.len() as f64);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max` items. Returns `None` once the queue is closed *and*
    /// empty — the worker-thread exit signal. Draining never waits for
    /// more items beyond the first: a lone request is served
    /// immediately, a burst is coalesced.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max.max(1));
                let batch: Vec<T> = st.items.drain(..n).collect();
                self.depth_gauge.set(st.items.len() as f64);
                // Leftovers mean another worker can run right away.
                if !st.items.is_empty() {
                    self.not_empty.notify_one();
                }
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: further pushes fail, workers drain what is
    /// left and then see `None` — the graceful-shutdown path.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock poisoned");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
    }

    /// Current depth (for tests and health output).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn q(cap: usize) -> BoundedQueue<u32> {
        BoundedQueue::new(cap, obs::gauge("serve.test.queue_depth"))
    }

    #[test]
    fn backpressure_at_capacity() {
        let queue = q(2);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.try_push(3), Err((PushError::Full, 3)));
        assert_eq!(queue.depth(), 2);
        let batch = queue.pop_batch(10).unwrap();
        assert_eq!(batch, vec![1, 2]);
        queue.try_push(4).unwrap();
        assert_eq!(queue.pop_batch(10).unwrap(), vec![4]);
    }

    #[test]
    fn pop_batch_caps_at_max() {
        let queue = q(8);
        for i in 0..6 {
            queue.try_push(i).unwrap();
        }
        assert_eq!(queue.pop_batch(4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(queue.pop_batch(4).unwrap(), vec![4, 5]);
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = q(4);
        queue.try_push(7).unwrap();
        queue.close();
        assert_eq!(queue.try_push(8), Err((PushError::Closed, 8)));
        assert_eq!(queue.pop_batch(2).unwrap(), vec![7]);
        assert!(queue.pop_batch(2).is_none());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue = Arc::new(q(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || queue.pop_batch(4))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        queue.close();
        for h in handles {
            assert!(h.join().unwrap().is_none());
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let queue = Arc::new(q(16));
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut sent = 0u32;
                    for i in 0..500 {
                        if queue.try_push(t * 1000 + i).is_ok() {
                            sent += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    sent
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Some(batch) = queue.pop_batch(8) {
                        got += batch.len() as u32;
                    }
                    got
                })
            })
            .collect();
        let sent: u32 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        queue.close();
        let got: u32 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sent, got);
    }
}
