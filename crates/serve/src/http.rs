//! Minimal HTTP/1.1 over `std::net`: request parsing and response
//! writing for the inference service. Std-only by design (the build
//! environment is offline); supports exactly what the service needs —
//! request line, headers, `Content-Length` bodies, keep-alive.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Hard cap on a single header line (anti-abuse).
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard cap on the number of headers per request.
const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a request line arrived
    /// (normal end of a keep-alive session).
    ConnectionClosed,
    /// Malformed request (maps to 400).
    Bad(String),
    /// The declared body exceeds the configured limit (maps to 413).
    BodyTooLarge(usize),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Lower-cased header names with raw values.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// When the request line arrived — the start of the request's
    /// wall clock (keep-alive idle time before it is excluded).
    pub read_started: Instant,
}

impl Request {
    /// First value of the (lower-cased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name` (`?name=value&...`). No
    /// percent-decoding — the service's parameters are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// The body as UTF-8, or an error suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Bad("body is not valid UTF-8".into()))
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    // take() bounds the read so a header line cannot grow unboundedly.
    let n = reader
        .by_ref()
        .take(MAX_HEADER_LINE as u64 + 1)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_HEADER_LINE {
        return Err(HttpError::Bad("header line too long".into()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads one request from `reader`, enforcing `max_body` on the body.
///
/// # Errors
///
/// [`HttpError::ConnectionClosed`] at clean EOF before a request line;
/// [`HttpError::Bad`] / [`HttpError::BodyTooLarge`] on malformed input;
/// [`HttpError::Io`] on socket failures (including read timeouts).
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?.ok_or(HttpError::ConnectionClosed)?;
    let read_started = Instant::now();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Bad("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or(HttpError::ConnectionClosed)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Bad("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Bad(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let keep_alive = match headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) => v != "close",
        // HTTP/1.1 defaults to keep-alive, 1.0 to close.
        None => version != "HTTP/1.0",
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
        read_started,
    })
}

/// Reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A response ready to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A plain-text response (Prometheus exposition format version).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![(
                "Content-Type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: body.into(),
        }
    }

    /// A JSON error response. Every non-2xx body the service emits has
    /// the same envelope, so clients can always machine-read failures:
    ///
    /// ```json
    /// {"error":{"code":404,"status":"Not Found","message":"..."}}
    /// ```
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":{\"code\":");
        body.push_str(&status.to_string());
        body.push_str(",\"status\":");
        obs::json::push_string(&mut body, reason(status));
        body.push_str(",\"message\":");
        obs::json::push_string(&mut body, message);
        body.push_str("}}");
        Response::json(status, body)
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Writes the response to `stream`. `keep_alive` controls the
    /// `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}
