//! A minimal blocking HTTP/1.1 client with keep-alive, used by the
//! smoke test, the loadgen driver, and integration tests. Std-only,
//! like the rest of the crate.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client holding one keep-alive connection to the server.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

/// A parsed response: status code, headers, body text.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body as text (the server always sends JSON).
    pub body: String,
    /// `Retry-After` header value, when present.
    pub retry_after: Option<String>,
    /// All response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
}

impl ClientResponse {
    /// First value of the (lower-cased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    /// A client for `addr`; connects lazily on the first request.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            conn: None,
        }
    }

    /// Overrides the per-socket read timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Issues one request, reconnecting once if the pooled keep-alive
    /// connection turns out to be dead.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// Like [`Client::request`], with extra request headers (e.g. an
    /// `x-trace-id` the caller wants the server to honor).
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed responses.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        match self.request_once(method, path, body, headers) {
            Ok(r) => Ok(r),
            Err(_) => {
                // The server may have closed an idle keep-alive
                // connection; retry exactly once on a fresh one.
                self.conn = None;
                self.request_once(method, path, body, headers)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let conn = self.connect()?;
        let payload = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        match read_response(conn) {
            Ok((response, keep_open)) => {
                if !keep_open {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

fn bad(m: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string())
}

/// Reads one response; the second tuple element reports whether the
/// connection may be reused.
fn read_response(conn: &mut BufReader<TcpStream>) -> std::io::Result<(ClientResponse, bool)> {
    let mut status_line = String::new();
    if conn.read_line(&mut status_line)? == 0 {
        return Err(bad("connection closed before status line"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    let mut keep_open = true;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if conn.read_line(&mut line)? == 0 {
            return Err(bad("connection closed in headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                "retry-after" => retry_after = Some(value.to_string()),
                "connection" if value.eq_ignore_ascii_case("close") => keep_open = false,
                _ => {}
            }
            headers.push((name, value.to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok((
        ClientResponse {
            status,
            body,
            retry_after,
            headers,
        },
        keep_open,
    ))
}
