//! HTTP handlers for the incremental ECO session endpoints.
//!
//! - `POST /v1/session` — load a design (netgen spec or multi-net
//!   SPEF), time it once, and keep it resident.
//! - `GET /v1/session` — list live sessions + manager/cache counters.
//! - `POST /v1/session/{id}/eco` — apply an edit batch; only the dirty
//!   cone is re-timed. Stage timings land in the request trace as
//!   `dirty_set` / `cache_lookup` / `predict` / `propagate`.
//! - `POST /v1/session/{id}/rollback` — restore an earlier epoch.
//! - `GET /v1/session/{id}/timing` — current summary (`?net=` for one
//!   net's per-sink arrivals).
//! - `DELETE /v1/session/{id}` — unload.
//!
//! All handlers run inline on the connection thread: session work is
//! stateful and lock-serialized per session, so routing it through the
//! shared predict queue would only add latency and head-of-line risk.

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::server::Shared;
use crate::trace::RequestTrace;
use eco::session::TimingSummary;
use eco::{DesignSession, EcoEdit, EcoError, EcoReport};
use obs::trace::Stage;
use rcnet::Seconds;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maps engine errors onto HTTP statuses; the body keeps the message.
fn eco_error(e: &EcoError) -> Response {
    let status = match e {
        EcoError::UnknownSession(_) => 404,
        EcoError::UnknownEpoch(_) => 409,
        EcoError::BadDesign(_)
        | EcoError::UnknownNet(_)
        | EcoError::UnknownNode { .. }
        | EcoError::UnknownCell(_)
        | EcoError::BadEdit(_) => 400,
        _ => 500,
    };
    Response::error(status, &e.to_string())
}

fn push_summary(out: &mut String, s: &TimingSummary) {
    out.push_str("{\"nets\":");
    out.push_str(&s.nets.to_string());
    out.push_str(",\"gates\":");
    out.push_str(&s.gates.to_string());
    out.push_str(",\"epoch\":");
    out.push_str(&s.epoch.to_string());
    out.push_str(",\"model_generation\":");
    out.push_str(&s.model_generation.to_string());
    out.push_str(",\"critical\":");
    match &s.critical {
        None => out.push_str("null"),
        Some(c) => {
            out.push_str("{\"net\":");
            obs::json::push_string(out, &c.net);
            out.push_str(",\"sink\":");
            obs::json::push_string(out, &c.sink);
            out.push_str(",\"arrival_ps\":");
            obs::json::push_f64(out, c.arrival * 1e12);
            out.push_str(",\"slew_ps\":");
            obs::json::push_f64(out, c.slew * 1e12);
            out.push('}');
        }
    }
    out.push('}');
}

fn push_report(out: &mut String, r: &EcoReport) {
    out.push_str("{\"epoch\":");
    out.push_str(&r.epoch.to_string());
    out.push_str(",\"model_generation\":");
    out.push_str(&r.model_generation.to_string());
    out.push_str(",\"full_retime\":");
    out.push_str(if r.full_retime { "true" } else { "false" });
    out.push_str(",\"nets_retimed\":");
    out.push_str(&r.stats.nets_retimed.to_string());
    out.push_str(",\"cache_hits\":");
    out.push_str(&r.stats.cache_hits.to_string());
    out.push_str(",\"cache_misses\":");
    out.push_str(&r.stats.cache_misses.to_string());
    out.push_str(",\"dirty_nets\":[");
    for (i, n) in r.dirty_nets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        obs::json::push_string(out, n);
    }
    out.push_str("]}");
}

/// Copies a retime's effort breakdown into the request trace.
fn record_stages(trace: &RequestTrace, stats: &eco::RetimeStats) {
    trace.record(Stage::DirtySet, Duration::from_secs_f64(stats.dirty_set_s));
    trace.record(Stage::CacheLookup, Duration::from_secs_f64(stats.cache_lookup_s));
    trace.record(Stage::Predict, Duration::from_secs_f64(stats.predict_s));
    trace.record(Stage::Propagate, Duration::from_secs_f64(stats.propagate_s));
}

/// Routes `/v1/session*` paths. Returns `None` when the path does not
/// belong to the session API at all.
pub(crate) fn route(
    request: &Request,
    shared: &Arc<Shared>,
    trace: &RequestTrace,
) -> Option<Response> {
    let rest = request.path.strip_prefix("/v1/session")?;
    let segs: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    Some(match (method, segs.as_slice()) {
        ("POST", []) => create(request, shared, trace),
        ("GET", []) => list(shared),
        ("DELETE", [id]) => delete(shared, id),
        ("POST", [id, "eco"]) => apply_eco(request, shared, trace, id),
        ("POST", [id, "rollback"]) => rollback(request, shared, id),
        ("GET", [id, "timing"]) => timing(request, shared, id),
        ("GET" | "POST" | "DELETE", _) => Response::error(404, "unknown session path"),
        _ => Response::error(405, "method not allowed"),
    })
}

/// Builds the netlist a create request describes.
fn build_netlist(body: &Json, max_nets: usize) -> Result<sta::netlist::Netlist, Response> {
    let nl = match (body.get("netgen"), body.get("spef")) {
        (Some(spec), None) => {
            let Some(design) = spec.get("design").and_then(Json::as_str) else {
                return Err(Response::error(400, "netgen spec needs a string field `design`"));
            };
            let scale = spec.get("scale").and_then(Json::as_f64).unwrap_or(0.05);
            let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(1);
            eco::design::from_netgen(design, scale, seed).map_err(|e| eco_error(&e))?
        }
        (None, Some(spef)) => {
            let Some(text) = spef.as_str() else {
                return Err(Response::error(400, "field `spef` must be a string"));
            };
            eco::design::from_spef(text).map_err(|e| eco_error(&e))?
        }
        (Some(_), Some(_)) => {
            return Err(Response::error(400, "supply either `spef` or `netgen`, not both"))
        }
        (None, None) => return Err(Response::error(400, "missing `spef` or `netgen` field")),
    };
    if nl.nets().len() > max_nets {
        return Err(Response::error(
            400,
            &format!("{} nets exceeds per-session limit {max_nets}", nl.nets().len()),
        ));
    }
    Ok(nl)
}

fn create(request: &Request, shared: &Arc<Shared>, trace: &RequestTrace) -> Response {
    let started = Instant::now();
    trace.mark_pipeline();
    let parsed = match request.body_utf8().map_err(|e| e.to_string()).and_then(|b| {
        json::parse(b).map_err(|e| e.to_string())
    }) {
        Ok(v) => v,
        Err(m) => return Response::error(400, &m),
    };
    let name = match parsed.get("name").and_then(Json::as_str) {
        Some(n) if n.is_empty() || n.len() > 64 || n.contains('/') => {
            return Response::error(400, "session `name` must be 1-64 chars without `/`")
        }
        Some(n) => Some(n.to_string()),
        None => None,
    };
    let input_slew = parsed
        .get("input_slew_ps")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0 && *v < 1e6)
        .unwrap_or(20.0);
    let netlist = match build_netlist(&parsed, shared.cfg.max_session_nets) {
        Ok(n) => n,
        Err(resp) => {
            trace.record(Stage::Parse, started.elapsed());
            return resp;
        }
    };
    trace.record(Stage::Parse, started.elapsed());

    let mut session = DesignSession::new(
        name.clone().unwrap_or_else(|| "session".into()),
        netlist,
        Seconds::from_ps(input_slew),
    );
    let model = shared.slot.current();
    let stats = match session.full_retime(&model.estimator, model.generation, shared.sessions.cache())
    {
        Ok(s) => s,
        Err(e) => return eco_error(&e),
    };
    record_stages(trace, &stats);
    let summary = session.timing_summary();
    let id = shared.sessions.insert(name, session);
    obs::counter("eco.sessions.created").inc();

    let mut out = String::with_capacity(256);
    out.push_str("{\"session\":");
    obs::json::push_string(&mut out, &id);
    out.push_str(",\"timing\":");
    push_summary(&mut out, &summary);
    out.push('}');
    Response::json(201, out)
}

fn list(shared: &Arc<Shared>) -> Response {
    let stats = shared.sessions.stats();
    let mut ids = shared.sessions.ids();
    ids.sort();
    let mut out = String::with_capacity(128);
    out.push_str("{\"sessions\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        obs::json::push_string(&mut out, id);
    }
    out.push_str("],\"session_bytes\":");
    out.push_str(&stats.session_bytes.to_string());
    out.push_str(",\"evictions\":");
    out.push_str(&stats.evictions.to_string());
    out.push_str(",\"cache\":{\"hits\":");
    out.push_str(&stats.cache.hits.to_string());
    out.push_str(",\"misses\":");
    out.push_str(&stats.cache.misses.to_string());
    out.push_str(",\"entries\":");
    out.push_str(&stats.cache.entries.to_string());
    out.push_str(",\"bytes\":");
    out.push_str(&stats.cache.bytes.to_string());
    out.push_str(",\"hit_rate\":");
    obs::json::push_f64(&mut out, stats.cache.hit_rate());
    out.push_str("}}");
    Response::json(200, out)
}

fn delete(shared: &Arc<Shared>, id: &str) -> Response {
    match shared.sessions.delete(id) {
        Ok(()) => Response::json(200, "{\"deleted\":true}"),
        Err(e) => eco_error(&e),
    }
}

/// One edit object (`{"op":"resize_driver","net":...,...}`) → [`EcoEdit`].
fn parse_edit(v: &Json) -> Result<EcoEdit, String> {
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("edit needs a string field `op`")?;
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!("op `{op}` needs a string field `{key}`"))
    };
    let f = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("op `{op}` needs a number field `{key}`"))
    };
    Ok(match op {
        "resize_driver" => EcoEdit::ResizeDriver { net: s("net")?, cell: s("cell")? },
        "set_sink_load" => EcoEdit::SetSinkLoad {
            net: s("net")?,
            sink: s("sink")?,
            ceff_ff: f("ceff_ff")?,
        },
        "insert_buffer" => EcoEdit::InsertBuffer {
            net: s("net")?,
            sink: s("sink")?,
            cell: s("cell")?,
        },
        "set_resistance" => EcoEdit::SetResistance {
            net: s("net")?,
            a: s("a")?,
            b: s("b")?,
            ohms: f("ohms")?,
        },
        "set_cap" => EcoEdit::SetCap { net: s("net")?, node: s("node")?, ff: f("ff")? },
        "add_resistor" => EcoEdit::AddResistor {
            net: s("net")?,
            a: s("a")?,
            b: s("b")?,
            ohms: f("ohms")?,
        },
        other => return Err(format!("unknown edit op `{other}`")),
    })
}

fn apply_eco(request: &Request, shared: &Arc<Shared>, trace: &RequestTrace, id: &str) -> Response {
    let started = Instant::now();
    trace.mark_pipeline();
    let parsed = match request.body_utf8().map_err(|e| e.to_string()).and_then(|b| {
        json::parse(b).map_err(|e| e.to_string())
    }) {
        Ok(v) => v,
        Err(m) => return Response::error(400, &m),
    };
    let Some(Json::Arr(items)) = parsed.get("edits") else {
        return Response::error(400, "missing array field `edits`");
    };
    if items.len() > shared.cfg.max_edits_per_request {
        return Response::error(
            400,
            &format!(
                "{} edits exceeds per-request limit {}",
                items.len(),
                shared.cfg.max_edits_per_request
            ),
        );
    }
    let edits: Vec<EcoEdit> = match items.iter().map(parse_edit).collect() {
        Ok(e) => e,
        Err(m) => return Response::error(400, &m),
    };
    trace.record(Stage::Parse, started.elapsed());

    let session = match shared.sessions.get(id) {
        Ok(s) => s,
        Err(e) => return eco_error(&e),
    };
    let model = shared.slot.current();
    let mut session = session.lock().expect("session lock");
    let report = match session.apply(
        &edits,
        &model.estimator,
        model.generation,
        shared.sessions.cache(),
    ) {
        Ok(r) => r,
        Err(e) => return eco_error(&e),
    };
    record_stages(trace, &report.stats);
    trace.set_nets(report.stats.nets_retimed);
    obs::counter("eco.edits.applied").add(edits.len() as u64);
    obs::histogram("eco.retime.nets").observe(report.stats.nets_retimed as f64);
    let summary = session.timing_summary();
    drop(session);

    let mut out = String::with_capacity(512);
    out.push_str("{\"report\":");
    push_report(&mut out, &report);
    out.push_str(",\"timing\":");
    push_summary(&mut out, &summary);
    out.push('}');
    Response::json(200, out)
}

fn rollback(request: &Request, shared: &Arc<Shared>, id: &str) -> Response {
    let parsed = match request.body_utf8().map_err(|e| e.to_string()).and_then(|b| {
        json::parse(b).map_err(|e| e.to_string())
    }) {
        Ok(v) => v,
        Err(m) => return Response::error(400, &m),
    };
    let Some(epoch) = parsed.get("epoch").and_then(Json::as_u64) else {
        return Response::error(400, "missing integer field `epoch`");
    };
    let session = match shared.sessions.get(id) {
        Ok(s) => s,
        Err(e) => return eco_error(&e),
    };
    let mut session = session.lock().expect("session lock");
    if let Err(e) = session.rollback(epoch) {
        return eco_error(&e);
    }
    let summary = session.timing_summary();
    drop(session);
    let mut out = String::from("{\"rolled_back_to\":");
    out.push_str(&epoch.to_string());
    out.push_str(",\"timing\":");
    push_summary(&mut out, &summary);
    out.push('}');
    Response::json(200, out)
}

fn timing(request: &Request, shared: &Arc<Shared>, id: &str) -> Response {
    let session = match shared.sessions.get(id) {
        Ok(s) => s,
        Err(e) => return eco_error(&e),
    };
    let session = session.lock().expect("session lock");
    match request.query_param("net") {
        None => {
            let mut out = String::with_capacity(256);
            out.push_str("{\"timing\":");
            push_summary(&mut out, &session.timing_summary());
            out.push_str(",\"snapshot_epochs\":[");
            for (i, e) in session.snapshot_epochs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&e.to_string());
            }
            out.push_str("]}");
            Response::json(200, out)
        }
        Some(net) => match session.net_timing(net) {
            Err(e) => eco_error(&e),
            Ok(rows) => {
                let mut out = String::with_capacity(64 + 64 * rows.len());
                out.push_str("{\"net\":");
                obs::json::push_string(&mut out, net);
                out.push_str(",\"sinks\":[");
                for (i, (sink, at, slew)) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"sink\":");
                    obs::json::push_string(&mut out, sink);
                    out.push_str(",\"arrival_ps\":");
                    obs::json::push_f64(&mut out, at * 1e12);
                    out.push_str(",\"slew_ps\":");
                    obs::json::push_f64(&mut out, slew * 1e12);
                    out.push('}');
                }
                out.push_str("]}");
                Response::json(200, out)
            }
        },
    }
}
