//! Two-pole AWE (asymptotic waveform evaluation) from the first three
//! moments.
//!
//! One step up in fidelity from Elmore/D2M: match the transfer function
//! to a Padé [1/2] approximant
//!
//! ```text
//! H(s) ≈ (1 + a1 s) / (1 + b1 s + b2 s²)
//! ```
//!
//! whose step response has the closed form
//! `v(t) = 1 + k1 e^{p1 t} + k2 e^{p2 t}`. Threshold crossings are found
//! by bisection on that closed form, giving delay and slew estimates far
//! closer to the transient simulation than single-moment metrics — the
//! classic middle ground between Elmore and SPICE that delay calculators
//! shipped for years.

use crate::moments::Moments;
use rcnet::{NodeId, Seconds};

/// A stable two-pole reduced-order model of one node's step response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoleModel {
    /// Pole values (negative, `p1 <= p2 < 0`), 1/seconds.
    pub poles: (f64, f64),
    /// Residues of the step response (`v(t) = 1 + k1 e^{p1 t} + k2 e^{p2 t}`).
    pub residues: (f64, f64),
}

impl TwoPoleModel {
    /// Fits the model from a node's moments.
    ///
    /// Returns `None` when the Padé denominator has non-negative or
    /// complex roots (an unstable or oscillatory fit — the standard AWE
    /// failure), in which case callers fall back to a single-pole model;
    /// [`two_pole_or_single`] does exactly that.
    pub fn from_moments(m1: f64, m2: f64, m3: f64) -> Option<Self> {
        // Padé [1/2]: solve  [1  m1][b2]   = -[m2]
        //                    [m1 m2][b1]     -[m3]
        let det = m2 - m1 * m1;
        if det.abs() < 1e-60 {
            return None;
        }
        let b2 = (-m2 * m2 + m1 * m3) / det;
        let b1 = (m1 * m2 - m3) / det;
        let a1 = m1 + b1;

        // Poles: roots of b2 s^2 + b1 s + 1 = 0.
        if b2.abs() < 1e-60 {
            return None;
        }
        let disc = b1 * b1 - 4.0 * b2;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let p1 = (-b1 - sq) / (2.0 * b2);
        let p2 = (-b1 + sq) / (2.0 * b2);
        if p1 >= 0.0 || p2 >= 0.0 {
            return None;
        }
        // Step-response residues: k_i = -(1 + a1 p_i) / (p_i^2 b2 * d/ds ...)
        // Easiest via partial fractions of H(s)/s:
        //   H(s)/s = 1/s + k1/(s - p1) + k2/(s - p2)
        //   k_i = H(p_i ... ) limit: k_i = (1 + a1 p_i) / (p_i * b2 * (p_i - p_j))
        let k1 = (1.0 + a1 * p1) / (p1 * b2 * (p1 - p2));
        let k2 = (1.0 + a1 * p2) / (p2 * b2 * (p2 - p1));
        Some(TwoPoleModel {
            poles: (p1.min(p2), p1.max(p2)),
            residues: if p1 <= p2 { (k1, k2) } else { (k2, k1) },
        })
    }

    /// Step-response value at time `t` (normalized to a final value of 1).
    pub fn value(&self, t: f64) -> f64 {
        1.0 + self.residues.0 * (self.poles.0 * t).exp()
            + self.residues.1 * (self.poles.1 * t).exp()
    }

    /// First time the response reaches `threshold` (0..1), by bisection.
    ///
    /// Returns `None` for thresholds outside `(0, 1)`.
    pub fn crossing(&self, threshold: f64) -> Option<Seconds> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return None;
        }
        // Bracket: the slowest pole sets the settling scale.
        let tau = 1.0 / self.poles.1.abs().max(1e-30);
        let mut hi = tau;
        let mut guard = 0;
        while self.value(hi) < threshold && guard < 200 {
            hi *= 2.0;
            guard += 1;
        }
        if self.value(hi) < threshold {
            return None;
        }
        let mut lo = 0.0f64;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.value(mid) < threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Seconds(0.5 * (lo + hi)))
    }

    /// 50 % delay.
    pub fn delay50(&self) -> Option<Seconds> {
        self.crossing(0.5)
    }

    /// 10–90 % slew.
    pub fn slew_10_90(&self) -> Option<Seconds> {
        let t10 = self.crossing(0.1)?;
        let t90 = self.crossing(0.9)?;
        Some(Seconds((t90.value() - t10.value()).max(0.0)))
    }
}

/// Fits a two-pole model for `node`, falling back to the single-pole
/// (Elmore time-constant) model when the Padé fit is unstable.
pub fn two_pole_or_single(moments: &Moments, node: NodeId) -> TwoPoleModel {
    let i = node.index();
    TwoPoleModel::from_moments(moments.m1[i], moments.m2[i], moments.m3[i]).unwrap_or_else(|| {
        let tau = (-moments.m1[i]).max(1e-30);
        TwoPoleModel {
            poles: (-1.0 / tau, -1.0 / tau * (1.0 + 1e-9)),
            residues: (-1.0, 0.0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    #[test]
    fn single_pole_circuit_recovers_its_pole() {
        // R-C: tau = RC; moments m1 = -tau, m2 = tau^2, m3 = -tau^3.
        let tau = 10e-12;
        let m = TwoPoleModel::from_moments(-tau, tau * tau, -tau * tau * tau);
        // A pure single pole makes the Padé system singular or nearly so;
        // when a model is produced its dominant pole must be 1/tau.
        if let Some(m) = m {
            assert!((m.poles.1 + 1.0 / tau).abs() < 1e-3 / tau);
        }
    }

    #[test]
    fn two_pole_delay_beats_elmore_against_golden() {
        // Far sink of a 2-stage ladder: compare against the transient
        // simulator's measured 50% step delay.
        let mut b = RcNetBuilder::new("l");
        let s = b.source("s", Farads(0.0));
        let m = b.internal("m", Farads(8e-15));
        let k = b.sink("k", Farads(8e-15));
        b.resistor(s, m, Ohms(500.0));
        b.resistor(m, k, Ohms(500.0));
        let net = b.build().unwrap();
        let moments = crate::Moments::new(&net).unwrap();
        let model = two_pole_or_single(&moments, k);
        let awe_delay = model.delay50().expect("stable model").value();

        // Golden: near-step input through a tiny drive resistance.
        let timer = rcsim::GoldenTimer::new(1.0, Ohms(1.0)).with_steps(6000);
        let golden = timer
            .time_net(&net, rcnet::Seconds::from_ps(0.1), rcsim::SiMode::Off)
            .unwrap()[0]
            .delay
            .value();
        let elmore_delay = crate::metrics::LN2 * (-moments.m1[k.index()]);
        let awe_err = (awe_delay - golden).abs();
        let elmore_err = (elmore_delay - golden).abs();
        assert!(
            awe_err <= elmore_err * 1.05 + 1e-14,
            "AWE {awe_delay} vs Elmore {elmore_delay} vs golden {golden}"
        );
        assert!(awe_err < 0.15 * golden + 1e-13, "AWE within 15%");
    }

    #[test]
    fn response_is_monotone_like_and_settles() {
        let mut b = RcNetBuilder::new("l");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(5e-15));
        b.resistor(s, k, Ohms(300.0));
        let net = b.build().unwrap();
        let moments = crate::Moments::new(&net).unwrap();
        let model = two_pole_or_single(&moments, k);
        assert!(model.value(0.0) < 0.1);
        let tau = 1.0 / model.poles.1.abs();
        assert!(model.value(20.0 * tau) > 0.99);
        let t50 = model.delay50().unwrap();
        let slew = model.slew_10_90().unwrap();
        assert!(t50.value() > 0.0);
        assert!(slew.value() > 0.0);
        // t10 < t50 < t90 ordering.
        let t10 = model.crossing(0.1).unwrap();
        let t90 = model.crossing(0.9).unwrap();
        assert!(t10 < t50 && t50 < t90);
    }

    #[test]
    fn rejects_out_of_range_thresholds() {
        let model = TwoPoleModel {
            poles: (-2e11, -1e11),
            residues: (0.5, -1.5),
        };
        assert_eq!(model.crossing(0.0), None);
        assert_eq!(model.crossing(1.0), None);
        assert_eq!(model.crossing(-0.3), None);
    }

    #[test]
    fn fallback_is_single_pole_elmore() {
        // Degenerate moments force the fallback.
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(0.0));
        let k = b.sink("k", Farads(4e-15));
        b.resistor(s, k, Ohms(250.0));
        let net = b.build().unwrap();
        let moments = crate::Moments::new(&net).unwrap();
        let model = two_pole_or_single(&moments, k);
        let tau = 250.0 * 4e-15;
        let t50 = model.delay50().unwrap().value();
        assert!((t50 - crate::metrics::LN2 * tau).abs() < 0.05 * tau);
    }
}
