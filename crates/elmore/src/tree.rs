//! Downstream-capacitance and stage-delay recurrences over a source-rooted
//! tree orientation.
//!
//! On tree nets these are the textbook Elmore quantities. On non-tree nets
//! the recurrences run over the resistance-weighted shortest-path tree
//! (loop-closing chords are ignored), which is exactly the feature
//! semantics the paper inherits from the DAC'20 loop-breaking recipe — the
//! *exact* delays on loops come from [`crate::moments`] instead.

use rcnet::topology::Orientation;
use rcnet::{Farads, RcNet, Seconds};

/// Downstream capacitance per node: the total ground capacitance in the
/// node's subtree (the capacitance "reachable through resistance on the
/// path", paper TABLE I), computed over `orientation`.
///
/// Coupling capacitors are counted at their victim node (grounded-aggressor
/// assumption, the standard pessimistic lumping).
pub fn downstream_caps(net: &RcNet, orientation: &Orientation) -> Vec<Farads> {
    let mut down: Vec<Farads> = net.nodes().iter().map(|n| n.cap).collect();
    for c in net.couplings() {
        down[c.node.index()] += c.cap;
    }
    // Children accumulate into parents in reverse topological order.
    for &node in orientation.order.iter().rev() {
        if let Some((parent, _)) = orientation.parent[node.index()] {
            let d = down[node.index()];
            down[parent.index()] += d;
        }
    }
    down
}

/// Stage delay per node: `R(parent -> node) * downstream_cap(node)`
/// (the Elmore delay contribution of the stage feeding each node).
/// The source has stage delay zero.
pub fn stage_delays(net: &RcNet, orientation: &Orientation, downstream: &[Farads]) -> Vec<Seconds> {
    let mut stages = vec![Seconds(0.0); net.node_count()];
    for (i, p) in orientation.parent.iter().enumerate() {
        if let Some((_, e)) = p {
            stages[i] = net.edge(*e).res * downstream[i];
        }
    }
    stages
}

/// Tree-recurrence Elmore delay per node: the prefix sum of stage delays
/// from the source. Exact on trees; a shortest-path-tree approximation on
/// non-tree nets (see [`crate::moments`] for the exact version).
pub fn tree_elmore(net: &RcNet, orientation: &Orientation, stages: &[Seconds]) -> Vec<Seconds> {
    let mut delay = vec![Seconds(0.0); net.node_count()];
    for &node in &orientation.order {
        if let Some((parent, _)) = orientation.parent[node.index()] {
            delay[node.index()] = delay[parent.index()] + stages[node.index()];
        }
    }
    delay
}

/// Total capacitance seen looking *into* the net from the driver (the load
/// the driver cell must charge): ground plus coupling capacitance.
pub fn driver_load(net: &RcNet) -> Farads {
    net.total_cap() + net.total_coupling_cap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::topology::orient;
    use rcnet::{Ohms, RcNetBuilder};

    /// s --R1-- a --R2-- k1
    ///          \--R3-- k2
    fn branched() -> RcNet {
        let mut b = RcNetBuilder::new("t");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(2e-15));
        let k1 = b.sink("k1", Farads(3e-15));
        let k2 = b.sink("k2", Farads(4e-15));
        b.resistor(s, a, Ohms(10.0));
        b.resistor(a, k1, Ohms(20.0));
        b.resistor(a, k2, Ohms(30.0));
        b.build().unwrap()
    }

    #[test]
    fn downstream_caps_accumulate_subtrees() {
        let net = branched();
        let o = orient(&net);
        let d = downstream_caps(&net, &o);
        let get = |n: &str| d[net.node_by_name(n).unwrap().index()].femto_farads();
        assert!((get("k1") - 3.0).abs() < 1e-9);
        assert!((get("k2") - 4.0).abs() < 1e-9);
        assert!((get("a") - 9.0).abs() < 1e-9);
        assert!((get("s") - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stage_and_elmore_delays_match_hand_calc() {
        let net = branched();
        let o = orient(&net);
        let d = downstream_caps(&net, &o);
        let st = stage_delays(&net, &o, &d);
        let el = tree_elmore(&net, &o, &st);
        let a = net.node_by_name("a").unwrap();
        let k1 = net.node_by_name("k1").unwrap();
        // stage(a) = 10 * 9fF = 90e-15 s; stage(k1) = 20 * 3fF = 60e-15 s.
        assert!((st[a.index()].value() - 90e-15).abs() < 1e-24);
        assert!((st[k1.index()].value() - 60e-15).abs() < 1e-24);
        // elmore(k1) = 90 + 60 = 150e-15 s.
        assert!((el[k1.index()].value() - 150e-15).abs() < 1e-24);
        // source has zero stage delay and zero elmore delay.
        assert_eq!(st[net.source().index()], Seconds(0.0));
        assert_eq!(el[net.source().index()], Seconds(0.0));
    }

    #[test]
    fn coupling_counts_toward_downstream() {
        let mut b = RcNetBuilder::new("c");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(10.0));
        b.coupling(k, "agg:1", Farads(0.5e-15));
        let net = b.build().unwrap();
        let o = orient(&net);
        let d = downstream_caps(&net, &o);
        assert!((d[k.index()].femto_farads() - 1.5).abs() < 1e-9);
        assert!((driver_load(&net).femto_farads() - 2.5).abs() < 1e-9);
    }
}
