//! Analytical wire delay and slew metrics.
//!
//! These closed-form metrics serve two roles in the reproduction:
//!
//! 1. **Features** — the paper's TABLE I node features include the *Elmore
//!    downstream capacitance* and *Elmore stage delay*, and its path
//!    features include the *wire path Elmore delay* and *D2M delay*.
//! 2. **Baseline inputs** — the DAC'20 baseline \[5\] feeds manually selected
//!    analytical features into a tree ensemble.
//!
//! Two computation styles are provided:
//!
//! * [`tree`] — classic downstream-capacitance / stage-delay recurrences
//!   over a source-rooted tree orientation (the shortest-path tree on
//!   non-tree nets);
//! * [`moments`] — exact circuit moments `m1..m3` from the MNA system,
//!   valid on any topology including resistive loops, from which the
//!   Elmore delay (`-m1`), the two-moment [`metrics::d2m`] delay, and a
//!   moment-matched step slew are derived.
//!
//! [`WireAnalysis`] bundles everything computed once per net.
//!
//! # Examples
//!
//! ```
//! use rcnet::{Farads, Ohms, RcNetBuilder};
//! use elmore::WireAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = RcNetBuilder::new("n");
//! let s = b.source("d:Z", Farads(1e-15));
//! let k = b.sink("l:A", Farads(10e-15));
//! b.resistor(s, k, Ohms(100.0));
//! let net = b.build()?;
//! let wa = WireAnalysis::new(&net)?;
//! // Single RC stage: Elmore delay = R * C_sink.
//! let d = wa.elmore_delay(k);
//! assert!((d.value() - 100.0 * 10e-15).abs() < 1e-18);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod awe;
pub mod metrics;
pub mod moments;
pub mod tree;

pub use analysis::{LoopBreaking, WireAnalysis};
pub use awe::TwoPoleModel;
pub use moments::Moments;

use std::error::Error;
use std::fmt;

/// Errors from the analytical engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ElmoreError {
    /// The MNA conductance matrix could not be factorized (should not happen
    /// on a validated net; indicates degenerate resistances).
    Numeric(String),
    /// The underlying net was rejected.
    Net(String),
}

impl fmt::Display for ElmoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElmoreError::Numeric(m) => write!(f, "numeric failure: {m}"),
            ElmoreError::Net(m) => write!(f, "net error: {m}"),
        }
    }
}

impl Error for ElmoreError {}

impl From<numeric::NumericError> for ElmoreError {
    fn from(e: numeric::NumericError) -> Self {
        ElmoreError::Numeric(e.to_string())
    }
}

impl From<rcnet::RcNetError> for ElmoreError {
    fn from(e: rcnet::RcNetError) -> Self {
        ElmoreError::Net(e.to_string())
    }
}
