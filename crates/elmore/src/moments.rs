//! Exact circuit moments of the RC network driven by an ideal step source.
//!
//! With the source node held by an ideal voltage source and the remaining
//! nodes governed by `C dv/dt + G v = G_s * u(t)`, the node voltages expand
//! as `V_i(s) = 1/s * (1 + m1_i s + m2_i s^2 + ...)` and the moments obey
//! the recurrence
//!
//! ```text
//! G * w_k = -C * w_{k-1},   w_0 = 1 (DC solution)
//! ```
//!
//! where `G` is the reduced conductance matrix (source row/column folded
//! into the right-hand side). `-m1_i` is the Elmore delay of node `i`,
//! exact for *any* RC topology including resistive loops — this is how the
//! reproduction honours the paper's emphasis on non-tree nets.

use crate::ElmoreError;
use numeric::{LuFactor, Matrix, Vector};
use rcnet::{NodeId, RcNet, Seconds};

/// First three voltage moments per node, plus derived delay metrics.
#[derive(Debug, Clone)]
pub struct Moments {
    /// `m1` per node (seconds; negative of the Elmore delay). Source entry is 0.
    pub m1: Vec<f64>,
    /// `m2` per node (seconds²). Source entry is 0.
    pub m2: Vec<f64>,
    /// `m3` per node (seconds³). Source entry is 0.
    pub m3: Vec<f64>,
}

impl Moments {
    /// Computes the first three moments of every node of `net`.
    ///
    /// Coupling capacitors are lumped to ground at the victim node (the
    /// grounded-aggressor approximation used by every moment-based metric).
    ///
    /// # Errors
    ///
    /// Returns [`ElmoreError::Numeric`] when the reduced conductance matrix
    /// is singular, which a validated connected net cannot produce.
    pub fn new(net: &RcNet) -> Result<Self, ElmoreError> {
        let n = net.node_count();
        let src = net.source().index();

        // Map full node index -> reduced index (source removed).
        let mut reduced = vec![usize::MAX; n];
        let mut r = 0usize;
        for (i, slot) in reduced.iter_mut().enumerate() {
            if i != src {
                *slot = r;
                r += 1;
            }
        }
        let m = n - 1;
        if m == 0 {
            return Ok(Moments {
                m1: vec![0.0],
                m2: vec![0.0],
                m3: vec![0.0],
            });
        }

        // Reduced conductance matrix.
        let mut g = Matrix::zeros(m, m);
        for (_, e) in net.iter_edges() {
            let cond = 1.0 / e.res.value();
            let (a, b) = (e.a.index(), e.b.index());
            if a != src {
                let ra = reduced[a];
                g[(ra, ra)] += cond;
            }
            if b != src {
                let rb = reduced[b];
                g[(rb, rb)] += cond;
            }
            if a != src && b != src {
                let (ra, rb) = (reduced[a], reduced[b]);
                g[(ra, rb)] -= cond;
                g[(rb, ra)] -= cond;
            }
        }
        let lu = LuFactor::new(&g)?;

        // Node capacitances (ground + coupling lumped).
        let mut caps = vec![0.0; n];
        for (id, node) in net.iter_nodes() {
            caps[id.index()] = node.cap.value();
        }
        for c in net.couplings() {
            caps[c.node.index()] += c.cap.value();
        }

        // w0 = DC solution = all ones (every node settles at the source value).
        let mut w_prev = vec![1.0; m];
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(3);
        for _ in 0..3 {
            // rhs = -C * w_prev (reduced; the source row contributes nothing
            // because its voltage moment beyond order 0 is zero).
            let rhs: Vector = (0..n)
                .filter(|&i| i != src)
                .map(|i| -caps[i] * w_prev[reduced[i]])
                .collect();
            let w = lu.solve(&rhs)?;
            out.push(w.as_slice().to_vec());
            w_prev = w.into_inner();
        }

        let expand = |w: &[f64]| -> Vec<f64> {
            let mut full = vec![0.0; n];
            for i in 0..n {
                if i != src {
                    full[i] = w[reduced[i]];
                }
            }
            full
        };
        Ok(Moments {
            m1: expand(&out[0]),
            m2: expand(&out[1]),
            m3: expand(&out[2]),
        })
    }

    /// Elmore delay of `node` (`-m1`), exact for any topology.
    pub fn elmore_delay(&self, node: NodeId) -> Seconds {
        Seconds(-self.m1[node.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::topology::orient;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    #[test]
    fn single_stage_elmore_is_rc() {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(0.0));
        let k = b.sink("k", Farads(2e-15));
        b.resistor(s, k, Ohms(50.0));
        let net = b.build().unwrap();
        let mom = Moments::new(&net).unwrap();
        assert!((mom.elmore_delay(k).value() - 100e-15).abs() < 1e-24);
    }

    #[test]
    fn mna_matches_tree_recurrence_on_trees() {
        // Ladder: s - a - b - k.
        let mut bld = RcNetBuilder::new("ladder");
        let s = bld.source("s", Farads(1e-15));
        let a = bld.internal("a", Farads(2e-15));
        let b2 = bld.internal("b", Farads(3e-15));
        let k = bld.sink("k", Farads(4e-15));
        bld.resistor(s, a, Ohms(10.0));
        bld.resistor(a, b2, Ohms(20.0));
        bld.resistor(b2, k, Ohms(30.0));
        let net = bld.build().unwrap();

        let o = orient(&net);
        let down = crate::tree::downstream_caps(&net, &o);
        let st = crate::tree::stage_delays(&net, &o, &down);
        let el = crate::tree::tree_elmore(&net, &o, &st);
        let mom = Moments::new(&net).unwrap();
        for (id, _) in net.iter_nodes() {
            let tree_val = el[id.index()].value();
            let mna_val = mom.elmore_delay(id).value();
            assert!(
                (tree_val - mna_val).abs() < 1e-24 + 1e-9 * tree_val.abs(),
                "node {id}: tree {tree_val} vs MNA {mna_val}"
            );
        }
    }

    #[test]
    fn loop_reduces_delay_versus_broken_loop() {
        // Diamond where the loop gives a second parallel route: the exact
        // (MNA) Elmore delay at the sink must be smaller than the delay of
        // the same net with the chord removed.
        let build = |with_chord: bool| {
            let mut b = RcNetBuilder::new("d");
            let s = b.source("s", Farads(1e-15));
            let a = b.internal("a", Farads(5e-15));
            let c = b.internal("c", Farads(5e-15));
            let k = b.sink("k", Farads(5e-15));
            b.resistor(s, a, Ohms(100.0));
            b.resistor(a, k, Ohms(100.0));
            b.resistor(s, c, Ohms(100.0));
            if with_chord {
                b.resistor(c, k, Ohms(100.0));
            } else {
                // keep c connected with a stub so the net stays valid
                b.resistor(c, a, Ohms(100.0));
            }
            b.build().unwrap()
        };
        let looped = Moments::new(&build(true)).unwrap();
        let chained = Moments::new(&build(false)).unwrap();
        let k_l = build(true).node_by_name("k").unwrap();
        let k_c = build(false).node_by_name("k").unwrap();
        assert!(looped.elmore_delay(k_l) < chained.elmore_delay(k_c));
    }

    #[test]
    fn moments_alternate_in_sign() {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(2e-15));
        let k = b.sink("k", Farads(2e-15));
        b.resistor(s, m, Ohms(100.0));
        b.resistor(m, k, Ohms(100.0));
        let net = b.build().unwrap();
        let mom = Moments::new(&net).unwrap();
        // For an RC circuit m1 < 0, m2 > 0, m3 < 0 at every non-source node.
        assert!(mom.m1[k.index()] < 0.0);
        assert!(mom.m2[k.index()] > 0.0);
        assert!(mom.m3[k.index()] < 0.0);
    }

    #[test]
    fn degenerate_two_node_net() {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(0.0));
        let k = b.sink("k", Farads(0.0));
        b.resistor(s, k, Ohms(1.0));
        let net = b.build().unwrap();
        let mom = Moments::new(&net).unwrap();
        assert_eq!(mom.elmore_delay(k), Seconds(0.0));
        assert_eq!(mom.elmore_delay(net.source()), Seconds(0.0));
    }
}
