//! Closed-form delay/slew metrics derived from circuit moments.

use rcnet::Seconds;

/// Natural log of 9, the 10 %–90 % width of a single-pole exponential in
/// units of its time constant.
pub const LN9: f64 = 2.197_224_577_336_22;

/// Natural log of 2, the 50 % crossing of a single-pole exponential in
/// units of its time constant.
pub const LN2: f64 = std::f64::consts::LN_2;

/// Elmore 50 % delay estimate from the first moment: `ln 2 * (-m1)`.
///
/// The raw Elmore delay `-m1` is the mean of the impulse response and a
/// provable upper bound of the 50 % delay; scaling by `ln 2` matches a
/// single-pole response exactly.
pub fn elmore50(m1: f64) -> Seconds {
    Seconds(LN2 * (-m1).max(0.0))
}

/// D2M two-moment delay metric (Alpert–Devgan–Kashyap, ISPD 2000):
/// `D2M = ln 2 * m1^2 / sqrt(m2)`.
///
/// Far more accurate than Elmore on far-from-driver sinks. Falls back to
/// [`elmore50`] when `m2` is non-positive (degenerate, e.g. capacitance-free
/// nets).
pub fn d2m(m1: f64, m2: f64) -> Seconds {
    if m2 <= 0.0 {
        return elmore50(m1);
    }
    Seconds(LN2 * m1 * m1 / m2.sqrt())
}

/// Moment-matched step-input slew (10 %–90 %): `ln 9 * sigma`, where
/// `sigma^2 = 2 m2 - m1^2` is the variance of the impulse response.
///
/// Negative variance (numerically degenerate nets) clamps to zero.
pub fn step_slew(m1: f64, m2: f64) -> Seconds {
    let var = 2.0 * m2 - m1 * m1;
    if var <= 0.0 {
        return Seconds(0.0);
    }
    Seconds(LN9 * var.sqrt())
}

/// PERI slew combination: the output slew of a stage given the input slew
/// and the stage's step-input slew — `sqrt(s_in^2 + s_step^2)`.
///
/// Standard root-sum-square used by industrial delay calculators to merge
/// driver and wire contributions.
pub fn peri_slew(input_slew: Seconds, step: Seconds) -> Seconds {
    Seconds((input_slew.value().powi(2) + step.value().powi(2)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pole_identities() {
        // For a single pole with time constant tau: m1 = -tau, m2 = tau^2.
        let tau = 5e-12;
        let (m1, m2) = (-tau, tau * tau);
        assert!((elmore50(m1).value() - LN2 * tau).abs() < 1e-24);
        assert!((d2m(m1, m2).value() - LN2 * tau).abs() < 1e-24);
        // sigma = tau for a single pole => slew = ln9 * tau.
        assert!((step_slew(m1, m2).value() - LN9 * tau).abs() < 1e-24);
    }

    #[test]
    fn d2m_leq_elmore_for_multi_pole() {
        // Multi-pole responses have m2 > m1^2, making D2M < ln2*(-m1).
        let m1 = -10e-12;
        let m2 = 2.0 * m1 * m1;
        assert!(d2m(m1, m2).value() < elmore50(m1).value());
    }

    #[test]
    fn degenerate_moments_fall_back() {
        assert_eq!(d2m(-1e-12, 0.0), elmore50(-1e-12));
        assert_eq!(step_slew(0.0, 0.0), Seconds(0.0));
        assert_eq!(elmore50(1e-12).value(), 0.0); // positive m1 clamps
    }

    #[test]
    fn peri_combines_quadratically() {
        let s = peri_slew(Seconds(3e-12), Seconds(4e-12));
        assert!((s.value() - 5e-12).abs() < 1e-24);
        assert_eq!(peri_slew(Seconds(0.0), Seconds(2e-12)), Seconds(2e-12));
    }
}
