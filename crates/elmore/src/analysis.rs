//! One-stop per-net analytical bundle.

use crate::{metrics, moments::Moments, tree, ElmoreError};
use rcnet::topology::{orient, orient_dfs, Orientation};
use rcnet::{Farads, NodeId, RcNet, Seconds, WirePath};

/// How non-tree nets are projected onto a spanning tree for the
/// tree-recurrence quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopBreaking {
    /// Resistance-weighted shortest-path tree — the wire-path definition
    /// of the paper, and a near-optimal electrical surrogate.
    #[default]
    ShortestPath,
    /// Depth-first spanning tree — the crude "keep the first edge found"
    /// loop-breaking that naive non-tree-to-tree conversions (the DAC'20
    /// baseline recipe) apply.
    DepthFirst,
}

/// Everything the feature extractor and the DAC'20 baseline need, computed
/// once per net: the tree orientation, downstream capacitances, stage
/// delays, and exact moments.
///
/// # Examples
///
/// ```
/// use rcnet::{Farads, Ohms, RcNetBuilder};
/// use elmore::WireAnalysis;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RcNetBuilder::new("n");
/// let s = b.source("d:Z", Farads(1e-15));
/// let m = b.internal("m", Farads(2e-15));
/// let k = b.sink("l:A", Farads(3e-15));
/// b.resistor(s, m, Ohms(10.0));
/// b.resistor(m, k, Ohms(10.0));
/// let net = b.build()?;
/// let wa = WireAnalysis::new(&net)?;
/// let p = &net.paths()[0];
/// assert!(wa.path_elmore(p) > rcnet::Seconds(0.0));
/// assert!(wa.path_d2m(p) <= wa.path_elmore(p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WireAnalysis {
    orientation: Orientation,
    downstream: Vec<Farads>,
    stages: Vec<Seconds>,
    moments: Moments,
    tree_elmore: Vec<Seconds>,
    tree_m2: Vec<f64>,
}

impl WireAnalysis {
    /// Analyzes `net` with the default (shortest-path) loop breaking.
    ///
    /// # Errors
    ///
    /// Propagates [`ElmoreError::Numeric`] from the moment solver.
    pub fn new(net: &RcNet) -> Result<Self, ElmoreError> {
        Self::with_policy(net, LoopBreaking::ShortestPath)
    }

    /// Analyzes `net` with an explicit loop-breaking policy.
    ///
    /// # Errors
    ///
    /// Propagates [`ElmoreError::Numeric`] from the moment solver.
    pub fn with_policy(net: &RcNet, policy: LoopBreaking) -> Result<Self, ElmoreError> {
        let orientation = match policy {
            LoopBreaking::ShortestPath => orient(net),
            LoopBreaking::DepthFirst => orient_dfs(net),
        };
        let downstream = tree::downstream_caps(net, &orientation);
        let stages = tree::stage_delays(net, &orientation, &downstream);
        let moments = Moments::new(net)?;
        let tree_elmore = tree::tree_elmore(net, &orientation, &stages);

        // Tree second moment: m2(i) = sum_k R_shared(i,k) * C_k * m1(k),
        // computed like the Elmore pass but with capacitances weighted by
        // their own first moment. Exact on trees (single pole: m2 = tau²),
        // loop-broken approximation on non-tree nets — the fidelity level
        // the TABLE I features prescribe.
        let n = net.node_count();
        let mut weighted: Vec<f64> = (0..n)
            .map(|i| net.nodes()[i].cap.value() * tree_elmore[i].value())
            .collect();
        for c in net.couplings() {
            weighted[c.node.index()] += c.cap.value() * tree_elmore[c.node.index()].value();
        }
        for &node in orientation.order.iter().rev() {
            if let Some((parent, _)) = orientation.parent[node.index()] {
                let w = weighted[node.index()];
                weighted[parent.index()] += w;
            }
        }
        let mut tree_m2 = vec![0.0f64; n];
        for &node in &orientation.order {
            if let Some((parent, e)) = orientation.parent[node.index()] {
                tree_m2[node.index()] =
                    tree_m2[parent.index()] + net.edge(e).res.value() * weighted[node.index()];
            }
        }
        Ok(WireAnalysis {
            orientation,
            downstream,
            stages,
            moments,
            tree_elmore,
            tree_m2,
        })
    }

    /// The source-rooted (shortest-path) tree orientation used internally.
    pub fn orientation(&self) -> &Orientation {
        &self.orientation
    }

    /// Downstream capacitance of a node (TABLE I node feature).
    pub fn downstream_cap(&self, node: NodeId) -> Farads {
        self.downstream[node.index()]
    }

    /// Stage delay of a node (TABLE I node feature).
    pub fn stage_delay(&self, node: NodeId) -> Seconds {
        self.stages[node.index()]
    }

    /// Exact (MNA first-moment) Elmore delay of a node; handles loops.
    pub fn elmore_delay(&self, node: NodeId) -> Seconds {
        self.moments.elmore_delay(node)
    }

    /// The raw moments.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// Wire-path Elmore delay: the Elmore delay of the path's sink
    /// (TABLE I path feature).
    pub fn path_elmore(&self, path: &WirePath) -> Seconds {
        self.elmore_delay(path.sink)
    }

    /// Wire-path D2M delay (TABLE I path feature).
    pub fn path_d2m(&self, path: &WirePath) -> Seconds {
        let i = path.sink.index();
        metrics::d2m(self.moments.m1[i], self.moments.m2[i])
    }

    /// Moment-matched step slew at the path's sink.
    pub fn path_step_slew(&self, path: &WirePath) -> Seconds {
        let i = path.sink.index();
        metrics::step_slew(self.moments.m1[i], self.moments.m2[i])
    }

    /// Output slew estimate at the sink given the driver's input slew
    /// (PERI combination of driver slew and wire step slew).
    pub fn path_slew(&self, path: &WirePath, input_slew: Seconds) -> Seconds {
        metrics::peri_slew(input_slew, self.path_step_slew(path))
    }

    /// Loop-broken (tree-recurrence) Elmore delay of a node — the
    /// fidelity the TABLE I features prescribe ("calculated through the
    /// Elmore delay calculation"); exact on trees, blind to loop chords.
    pub fn tree_elmore_delay(&self, node: NodeId) -> Seconds {
        self.tree_elmore[node.index()]
    }

    /// Loop-broken wire-path Elmore delay (TABLE I path feature).
    pub fn tree_path_elmore(&self, path: &WirePath) -> Seconds {
        self.tree_elmore_delay(path.sink)
    }

    /// Loop-broken wire-path D2M delay (TABLE I path feature).
    pub fn tree_path_d2m(&self, path: &WirePath) -> Seconds {
        let i = path.sink.index();
        metrics::d2m(-self.tree_elmore[i].value(), self.tree_m2[i])
    }

    /// Loop-broken moment-matched step slew at the path's sink.
    pub fn tree_path_step_slew(&self, path: &WirePath) -> Seconds {
        let i = path.sink.index();
        metrics::step_slew(-self.tree_elmore[i].value(), self.tree_m2[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Ohms, RcNetBuilder};

    fn ladder(n_stages: usize, r: f64, c: f64) -> RcNet {
        let mut b = RcNetBuilder::new("ladder");
        let mut prev = b.source("s", Farads(0.0));
        for i in 0..n_stages {
            let node = if i + 1 == n_stages {
                b.sink("k", Farads(c))
            } else {
                b.internal(format!("m{i}"), Farads(c))
            };
            b.resistor(prev, node, Ohms(r));
            prev = node;
        }
        b.build().unwrap()
    }

    #[test]
    fn ladder_elmore_closed_form() {
        // Elmore of stage i in a uniform ladder: sum_{j<=i} R*j... the sink
        // of an n-stage ladder has delay R*C * n(n+1)/2.
        let n = 6;
        let net = ladder(n, 10.0, 1e-15);
        let wa = WireAnalysis::new(&net).unwrap();
        let k = net.node_by_name("k").unwrap();
        let expected = 10.0 * 1e-15 * (n * (n + 1) / 2) as f64;
        assert!((wa.elmore_delay(k).value() - expected).abs() < 1e-24);
    }

    #[test]
    fn path_metrics_consistent() {
        let net = ladder(5, 20.0, 2e-15);
        let wa = WireAnalysis::new(&net).unwrap();
        let p = &net.paths()[0];
        assert!(wa.path_d2m(p).value() > 0.0);
        // D2M never exceeds the mean-based bound ln2*(-m1) ... both scaled by
        // ln2, so compare directly against elmore via the metric ordering.
        assert!(wa.path_d2m(p).value() <= wa.path_elmore(p).value());
        assert!(wa.path_step_slew(p).value() > 0.0);
        let with_input = wa.path_slew(p, Seconds(10e-12));
        assert!(with_input >= wa.path_step_slew(p));
        assert!(with_input >= Seconds(10e-12));
    }

    #[test]
    fn tree_metrics_match_exact_on_trees() {
        let net = ladder(5, 20.0, 2e-15);
        let wa = WireAnalysis::new(&net).unwrap();
        let p = &net.paths()[0];
        // On a tree the loop-broken metrics equal the exact ones.
        assert!(
            (wa.tree_path_elmore(p).value() - wa.path_elmore(p).value()).abs()
                < 1e-12 * wa.path_elmore(p).value().abs() + 1e-27
        );
        assert!(
            (wa.tree_path_d2m(p).value() - wa.path_d2m(p).value()).abs()
                < 1e-9 * wa.path_d2m(p).value().abs() + 1e-24
        );
    }

    #[test]
    fn single_pole_tree_m2_is_tau_squared() {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(0.0));
        let k = b.sink("k", Farads(10e-15));
        b.resistor(s, k, Ohms(100.0));
        let net = b.build().unwrap();
        let wa = WireAnalysis::new(&net).unwrap();
        let p = &net.paths()[0];
        let tau = 100.0 * 10e-15;
        // For a single pole D2M = ln2 * tau, and both metrics agree.
        assert!((wa.tree_path_d2m(p).value() - crate::metrics::LN2 * tau).abs() < 1e-24);
    }

    #[test]
    fn loop_broken_elmore_overestimates_on_loops() {
        // Parallel routes reduce the true delay; the loop-broken view
        // cannot see that, so tree elmore >= exact elmore on the diamond.
        let mut b = RcNetBuilder::new("d");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(5e-15));
        let c = b.internal("c", Farads(5e-15));
        let k = b.sink("k", Farads(5e-15));
        b.resistor(s, a, Ohms(100.0));
        b.resistor(a, k, Ohms(100.0));
        b.resistor(s, c, Ohms(120.0));
        b.resistor(c, k, Ohms(120.0));
        let net = b.build().unwrap();
        let wa = WireAnalysis::new(&net).unwrap();
        let p = &net.paths()[0];
        assert!(wa.tree_path_elmore(p).value() > wa.path_elmore(p).value());
    }

    #[test]
    fn works_on_nontree() {
        let mut b = RcNetBuilder::new("d");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(2e-15));
        let c = b.internal("c", Farads(2e-15));
        let k = b.sink("k", Farads(3e-15));
        b.resistor(s, a, Ohms(10.0));
        b.resistor(a, k, Ohms(10.0));
        b.resistor(s, c, Ohms(10.0));
        b.resistor(c, k, Ohms(10.0));
        let net = b.build().unwrap();
        let wa = WireAnalysis::new(&net).unwrap();
        let p = &net.paths()[0];
        assert!(wa.path_elmore(p).value() > 0.0);
        assert!(wa.path_d2m(p).value() > 0.0);
        // Downstream caps on the shortest-path tree still cover all nodes from s.
        assert!(wa.downstream_cap(net.source()).value() >= net.total_cap().value() - 1e-27);
    }
}
