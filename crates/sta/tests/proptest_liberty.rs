//! Property tests for NLDM interpolation and the built-in library.

use proptest::prelude::*;
use rcnet::{Farads, Seconds};
use sta::cells::CellLibrary;
use sta::liberty::Nldm2d;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_of_monotone_table_is_bounded_inside_grid(
        slew in 5e-12f64..160e-12,
        load in 1e-15f64..64e-15,
    ) {
        // Sampled from the same monotone model as the builtin library.
        let t = Nldm2d::from_model(
            vec![5e-12, 20e-12, 80e-12, 160e-12],
            vec![1e-15, 8e-15, 64e-15],
            |s, l| 1e-12 + 0.2 * s + 800.0 * l,
        ).expect("table");
        let v = t.eval(Seconds(slew), Farads(load)).value();
        let lo = t.eval(Seconds(5e-12), Farads(1e-15)).value();
        let hi = t.eval(Seconds(160e-12), Farads(64e-15)).value();
        prop_assert!(v >= lo - 1e-18 && v <= hi + 1e-18, "{lo} <= {v} <= {hi}");
    }

    #[test]
    fn interpolation_of_linear_model_is_exact(
        slew in 0.0f64..200e-12,
        load in 0.0f64..80e-15,
    ) {
        // Bilinear interpolation reproduces a bilinear function exactly,
        // inside and outside the characterized grid.
        let f = |s: f64, l: f64| 2e-12 + 0.17 * s + 650.0 * l;
        let t = Nldm2d::from_model(
            vec![10e-12, 40e-12, 120e-12],
            vec![2e-15, 16e-15, 48e-15],
            f,
        ).expect("table");
        let v = t.eval(Seconds(slew), Farads(load)).value();
        let want = f(slew, load);
        prop_assert!((v - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    #[test]
    fn builtin_cells_are_monotone_in_slew_and_load(
        cell_idx in 0usize..11,
        s1 in 5e-12f64..150e-12,
        ds in 1e-12f64..50e-12,
        l1 in 1e-15f64..50e-15,
        dl in 1e-15f64..20e-15,
    ) {
        let lib = CellLibrary::builtin();
        let cell = &lib.cells()[cell_idx % lib.cells().len()];
        let base = cell.arc().eval(Seconds(s1), Farads(l1));
        let slower = cell.arc().eval(Seconds(s1 + ds), Farads(l1));
        let heavier = cell.arc().eval(Seconds(s1), Farads(l1 + dl));
        prop_assert!(slower.0 >= base.0, "delay monotone in slew");
        prop_assert!(heavier.0 >= base.0, "delay monotone in load");
        prop_assert!(slower.1 >= base.1, "out slew monotone in slew");
        prop_assert!(heavier.1 >= base.1, "out slew monotone in load");
    }
}
