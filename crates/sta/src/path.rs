//! Multi-stage timing paths and arrival-time computation.
//!
//! A circuit timing path alternates gates and wires:
//! `FF/input → cell → wire → cell → wire → … → FF/output`. The paper
//! obtains the path arrival time by "cumulative addition of our estimated
//! wire delay and cell delay from the timing library" (§III-A); this
//! module is that adder, generic over the [`WireTimer`] supplying wire
//! numbers.

use crate::cells::Cell;
use crate::wire::WireTimer;
use crate::StaError;
use rcnet::{Farads, RcNet, Seconds};

/// One stage of a timing path: a driving cell and the net it drives,
/// continued through one selected wire path (sink) of that net.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The driving cell.
    pub cell: Cell,
    /// The driven parasitic net.
    pub net: RcNet,
    /// Index into `net.paths()` selecting which sink the path continues
    /// through.
    pub sink_path: usize,
}

impl Stage {
    /// The capacitive load the driving cell sees: all ground capacitance
    /// of the net plus its coupling capacitance (grounded-aggressor
    /// lumping).
    pub fn load(&self) -> Farads {
        self.net.total_cap() + self.net.total_coupling_cap()
    }
}

/// Per-stage timing breakdown produced by [`TimingPath::arrival`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// NLDM gate delay of the stage's cell.
    pub gate_delay: Seconds,
    /// Wire delay of the selected wire path.
    pub wire_delay: Seconds,
    /// Slew at the wire path's sink (next stage's input slew).
    pub slew_out: Seconds,
}

/// The result of timing a path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathArrival {
    /// Total arrival time at the path end-point.
    pub arrival: Seconds,
    /// Sum of gate delays.
    pub gate_total: Seconds,
    /// Sum of wire delays.
    pub wire_total: Seconds,
    /// Per-stage breakdown.
    pub stages: Vec<StageTiming>,
}

/// A gate/wire timing path.
///
/// # Examples
///
/// See the crate-level integration tests; constructing a stage needs a
/// cell library and a parasitic net.
#[derive(Debug, Clone, Default)]
pub struct TimingPath {
    stages: Vec<Stage>,
}

impl TimingPath {
    /// Creates a path from its stages.
    pub fn new(stages: Vec<Stage>) -> Self {
        TimingPath { stages }
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the path has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Computes the arrival time at the path end-point starting from the
    /// given input slew, using `timer` for every wire.
    ///
    /// # Errors
    ///
    /// Propagates [`StaError::Wire`] from the wire timer and returns
    /// [`StaError::BadNetlist`] when a stage's `sink_path` is out of
    /// range.
    pub fn arrival<T: WireTimer>(
        &self,
        timer: &T,
        input_slew: Seconds,
    ) -> Result<PathArrival, StaError> {
        let mut slew = input_slew;
        let mut arrival = Seconds(0.0);
        let mut gate_total = Seconds(0.0);
        let mut wire_total = Seconds(0.0);
        let mut stages = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.sink_path >= stage.net.paths().len() {
                return Err(StaError::BadNetlist(format!(
                    "stage {i}: sink path {} out of range ({} paths)",
                    stage.sink_path,
                    stage.net.paths().len()
                )));
            }
            let (gate_delay, drv_slew) = stage.cell.arc().eval(slew, stage.load());
            let (wire_delay, sink_slew) = timer.path_timing_with_driver(
                &stage.net,
                stage.sink_path,
                drv_slew,
                Some(&stage.cell),
            )?;
            arrival += gate_delay + wire_delay;
            gate_total += gate_delay;
            wire_total += wire_delay;
            slew = sink_slew;
            stages.push(StageTiming {
                gate_delay,
                wire_delay,
                slew_out: sink_slew,
            });
        }
        Ok(PathArrival {
            arrival,
            gate_total,
            wire_total,
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::wire::IdealWire;
    use rcnet::{Ohms, RcNetBuilder};

    fn small_net(name: &str, r: f64, c_ff: f64) -> RcNet {
        let mut b = RcNetBuilder::new(name);
        let s = b.source(format!("{name}:drv"), Farads::from_ff(0.3));
        let k = b.sink(format!("{name}:load"), Farads::from_ff(c_ff));
        b.resistor(s, k, Ohms(r));
        b.build().unwrap()
    }

    fn two_stage_path() -> TimingPath {
        let lib = CellLibrary::builtin();
        TimingPath::new(vec![
            Stage {
                cell: lib.cell("BUF_X2").unwrap().clone(),
                net: small_net("n1", 80.0, 2.0),
                sink_path: 0,
            },
            Stage {
                cell: lib.cell("INV_X1").unwrap().clone(),
                net: small_net("n2", 120.0, 3.0),
                sink_path: 0,
            },
        ])
    }

    #[test]
    fn arrival_sums_gate_delays_with_ideal_wire() {
        let p = two_stage_path();
        let out = p.arrival(&IdealWire, Seconds::from_ps(15.0)).unwrap();
        assert_eq!(out.stages.len(), 2);
        assert_eq!(out.wire_total, Seconds(0.0));
        assert!(out.gate_total.value() > 0.0);
        let sum: f64 = out.stages.iter().map(|s| s.gate_delay.value()).sum();
        assert!((out.arrival.value() - sum).abs() < 1e-18);
    }

    #[test]
    fn slew_propagates_between_stages() {
        let p = two_stage_path();
        let fast = p.arrival(&IdealWire, Seconds::from_ps(5.0)).unwrap();
        let slow = p.arrival(&IdealWire, Seconds::from_ps(150.0)).unwrap();
        // A slower input slew slows the first gate, whose larger output
        // slew slows the second gate too.
        assert!(slow.arrival > fast.arrival);
        assert!(slow.stages[1].gate_delay > fast.stages[1].gate_delay);
    }

    #[test]
    fn rejects_out_of_range_sink() {
        let lib = CellLibrary::builtin();
        let p = TimingPath::new(vec![Stage {
            cell: lib.cell("BUF_X1").unwrap().clone(),
            net: small_net("n", 10.0, 1.0),
            sink_path: 5,
        }]);
        assert!(matches!(
            p.arrival(&IdealWire, Seconds::from_ps(10.0)),
            Err(StaError::BadNetlist(_))
        ));
    }

    #[test]
    fn empty_path_has_zero_arrival() {
        let p = TimingPath::default();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let out = p.arrival(&IdealWire, Seconds::from_ps(10.0)).unwrap();
        assert_eq!(out.arrival, Seconds(0.0));
    }

    #[test]
    fn stage_load_includes_coupling() {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads::from_ff(1.0));
        let k = b.sink("k", Farads::from_ff(1.0));
        b.resistor(s, k, Ohms(10.0));
        b.coupling(k, "agg", Farads::from_ff(2.0));
        let net = b.build().unwrap();
        let lib = CellLibrary::builtin();
        let stage = Stage {
            cell: lib.cell("BUF_X1").unwrap().clone(),
            net,
            sink_path: 0,
        };
        assert!((stage.load().femto_farads() - 4.0).abs() < 1e-9);
    }
}
