//! Combinational gate netlist with topological arrival-time propagation.
//!
//! Nets are logical here; each carries its parasitic [`RcNet`] whose sinks
//! align position-wise with the net's fanout pins. Arrival propagation
//! walks a Kahn topological order: a gate's output arrival is the max over
//! its input pins of `input arrival + NLDM gate delay`, and each fanout
//! pin adds its wire-path delay from the pluggable [`WireTimer`].

use crate::cells::Cell;
use crate::wire::WireTimer;
use crate::StaError;
use rcnet::{RcNet, Seconds};

/// Identifier of a logical net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetId(pub usize);

/// Identifier of a gate instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub usize);

/// A gate instance.
#[derive(Debug, Clone)]
pub struct GateInst {
    /// The library cell.
    pub cell: Cell,
    /// Input nets (the gate is a sink of each).
    pub inputs: Vec<NetId>,
    /// Output net (the gate drives it).
    pub output: NetId,
}

/// A logical net with its parasitics.
#[derive(Debug, Clone)]
pub struct NetInst {
    /// Parasitic network; `rc.sinks()[i]` is fanout pin `i`.
    pub rc: RcNet,
    /// Driving gate (`None` for primary inputs).
    pub driver: Option<GateId>,
    /// Fanout gates, aligned with `rc.sinks()` (missing entries are
    /// primary outputs).
    pub fanout: Vec<Option<GateId>>,
}

/// Per-net timing produced by [`Netlist::propagate`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetTiming {
    /// Arrival time and slew at the net's driver pin.
    pub at_driver: (Seconds, Seconds),
    /// Arrival time and slew at each sink, aligned with `rc.sinks()`.
    pub at_sinks: Vec<(Seconds, Seconds)>,
}

/// A combinational netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<GateInst>,
    nets: Vec<NetInst>,
    primary_inputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a primary-input net.
    pub fn add_primary_input(&mut self, rc: RcNet) -> NetId {
        let id = NetId(self.nets.len());
        let fanout = vec![None; rc.sinks().len()];
        self.nets.push(NetInst {
            rc,
            driver: None,
            fanout,
        });
        self.primary_inputs.push(id);
        id
    }

    /// Adds a gate driving a new net; `inputs` are `(net, sink position)`
    /// pairs wiring each input pin to one sink of an existing net.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] when a referenced net or sink
    /// position does not exist or the sink is already connected.
    pub fn add_gate(
        &mut self,
        cell: Cell,
        inputs: &[(NetId, usize)],
        output_rc: RcNet,
    ) -> Result<(GateId, NetId), StaError> {
        let gid = GateId(self.gates.len());
        for &(net, pos) in inputs {
            let ni = self
                .nets
                .get_mut(net.0)
                .ok_or_else(|| StaError::BadNetlist(format!("no net {net:?}")))?;
            let slot = ni.fanout.get_mut(pos).ok_or_else(|| {
                StaError::BadNetlist(format!("net {net:?} has no sink position {pos}"))
            })?;
            if slot.is_some() {
                return Err(StaError::BadNetlist(format!(
                    "net {net:?} sink {pos} already connected"
                )));
            }
            *slot = Some(gid);
        }
        let out_id = NetId(self.nets.len());
        let fanout = vec![None; output_rc.sinks().len()];
        self.nets.push(NetInst {
            rc: output_rc,
            driver: Some(gid),
            fanout,
        });
        self.gates.push(GateInst {
            cell,
            inputs: inputs.iter().map(|&(n, _)| n).collect(),
            output: out_id,
        });
        Ok((gid, out_id))
    }

    /// Gates in insertion order.
    pub fn gates(&self) -> &[GateInst] {
        &self.gates
    }

    /// Nets in insertion order.
    pub fn nets(&self) -> &[NetInst] {
        &self.nets
    }

    /// Primary-input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Kahn topological order over gates.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] when the netlist contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<GateId>, StaError> {
        let mut indegree: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|n| self.nets[n.0].driver.is_some())
                    .count()
            })
            .collect();
        let mut queue: std::collections::VecDeque<usize> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(g) = queue.pop_front() {
            order.push(GateId(g));
            let out = self.gates[g].output;
            for fo in self.nets[out.0].fanout.iter().flatten() {
                indegree[fo.0] -= 1;
                if indegree[fo.0] == 0 {
                    queue.push_back(fo.0);
                }
            }
        }
        if order.len() != self.gates.len() {
            return Err(StaError::BadNetlist("netlist contains a cycle".into()));
        }
        Ok(order)
    }

    /// Propagates arrival times from all primary inputs (arrival 0 with
    /// the given slew) to every net, using `timer` for wires.
    ///
    /// # Errors
    ///
    /// Propagates wire-timer failures and cycle detection.
    pub fn propagate<T: WireTimer>(
        &self,
        timer: &T,
        input_slew: Seconds,
    ) -> Result<Vec<NetTiming>, StaError> {
        let order = self.topo_order()?;
        let mut timing: Vec<Option<NetTiming>> = vec![None; self.nets.len()];

        let compute_net = |net: &NetInst,
                           at_driver: (Seconds, Seconds)|
         -> Result<NetTiming, StaError> {
            let driver_cell = net.driver.map(|g| &self.gates[g.0].cell);
            let mut at_sinks = Vec::with_capacity(net.rc.sinks().len());
            for (i, _) in net.rc.sinks().iter().enumerate() {
                let (d, s) =
                    timer.path_timing_with_driver(&net.rc, i, at_driver.1, driver_cell)?;
                at_sinks.push((at_driver.0 + d, s));
            }
            Ok(NetTiming {
                at_driver,
                at_sinks,
            })
        };

        for &pi in &self.primary_inputs {
            timing[pi.0] = Some(compute_net(&self.nets[pi.0], (Seconds(0.0), input_slew))?);
        }
        for gid in order {
            let gate = &self.gates[gid.0];
            let at_driver = self.gate_output_arrival(gid, |net| {
                timing[net.0].as_ref().map(|nt| nt.at_sinks.as_slice())
            })?;
            timing[gate.output.0] = Some(compute_net(&self.nets[gate.output.0], at_driver)?);
        }
        timing
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                t.ok_or_else(|| StaError::BadNetlist(format!("net {i} unreachable from inputs")))
            })
            .collect()
    }

    /// Arrival time and slew at `gate`'s output (driver) pin: the max
    /// over its connected input pins of `input arrival + NLDM delay`,
    /// where the gate's load is its output net's total ground + coupling
    /// capacitance. `sink_timing(net)` supplies each input net's
    /// per-sink `(arrival, slew)` pairs (aligned with `rc.sinks()`);
    /// returning `None` means that net is not timed yet.
    ///
    /// [`Netlist::propagate`] and the incremental ECO engine share this
    /// so a dirty-cone re-time is arithmetically identical to a full one.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] when an input net is untimed or
    /// the gate has no connected inputs.
    pub fn gate_output_arrival<'a, F>(
        &self,
        gid: GateId,
        sink_timing: F,
    ) -> Result<(Seconds, Seconds), StaError>
    where
        F: Fn(NetId) -> Option<&'a [(Seconds, Seconds)]>,
    {
        let gate = self
            .gates
            .get(gid.0)
            .ok_or_else(|| StaError::BadNetlist(format!("no gate {gid:?}")))?;
        let out_net = &self.nets[gate.output.0];
        let load = out_net.rc.total_cap() + out_net.rc.total_coupling_cap();
        let mut best: Option<(Seconds, Seconds)> = None;
        for &in_net in &gate.inputs {
            let at_sinks = sink_timing(in_net).ok_or_else(|| {
                StaError::BadNetlist(format!("net {in_net:?} timed before its driver"))
            })?;
            // Which sink of in_net feeds this gate?
            for (pos, fo) in self.nets[in_net.0].fanout.iter().enumerate() {
                if *fo == Some(gid) {
                    let (at, slew) = at_sinks[pos];
                    let (gd, out_slew) = gate.cell.arc().eval(slew, load);
                    let cand = (at + gd, out_slew);
                    if best.is_none_or(|b| cand.0 > b.0) {
                        best = Some(cand);
                    }
                }
            }
        }
        best.ok_or_else(|| StaError::BadNetlist(format!("gate {gid:?} has no connected inputs")))
    }

    /// Replaces a net's parasitic RC network in place, returning the old
    /// one (so an ECO can be rolled back). The replacement must preserve
    /// the sink count — fanout pins are positional.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] on an unknown net or a sink-count
    /// mismatch.
    pub fn replace_net_rc(&mut self, net: NetId, rc: RcNet) -> Result<RcNet, StaError> {
        let ni = self
            .nets
            .get_mut(net.0)
            .ok_or_else(|| StaError::BadNetlist(format!("no net {net:?}")))?;
        if rc.sinks().len() != ni.fanout.len() {
            return Err(StaError::BadNetlist(format!(
                "net {net:?} replacement has {} sinks, existing fanout expects {}",
                rc.sinks().len(),
                ni.fanout.len()
            )));
        }
        Ok(std::mem::replace(&mut ni.rc, rc))
    }

    /// Swaps a gate's library cell (driver resize ECO), returning the
    /// old cell.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] on an unknown gate.
    pub fn set_gate_cell(&mut self, gate: GateId, cell: Cell) -> Result<Cell, StaError> {
        let g = self
            .gates
            .get_mut(gate.0)
            .ok_or_else(|| StaError::BadNetlist(format!("no gate {gate:?}")))?;
        Ok(std::mem::replace(&mut g.cell, cell))
    }

    /// All nets whose timing can depend on `start`'s: `start` itself plus
    /// every net reachable downstream through fanout gates (the dirty
    /// cone of an edit on `start`). Returned in discovery (BFS) order.
    pub fn downstream_nets(&self, start: NetId) -> Vec<NetId> {
        let mut seen = vec![false; self.nets.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut cone = Vec::new();
        if start.0 >= self.nets.len() {
            return cone;
        }
        seen[start.0] = true;
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            cone.push(n);
            for fo in self.nets[n.0].fanout.iter().flatten() {
                let out = self.gates[fo.0].output;
                if !seen[out.0] {
                    seen[out.0] = true;
                    queue.push_back(out);
                }
            }
        }
        cone
    }

    /// All nets in dependency order: primary inputs first, then gate
    /// output nets following the gate topological order. Re-timing nets
    /// in this order guarantees every net's driver inputs are ready.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] on cycles.
    pub fn net_topo_order(&self) -> Result<Vec<NetId>, StaError> {
        let mut order = Vec::with_capacity(self.nets.len());
        order.extend_from_slice(&self.primary_inputs);
        for gid in self.topo_order()? {
            order.push(self.gates[gid.0].output);
        }
        Ok(order)
    }

    /// Inserts a buffer on one fanout pin of `net` (the buffer-insertion
    /// ECO): the pin at `sink_pos` is rewired to go through a new `cell`
    /// gate driving `stub_rc`, whose single sink takes over whatever the
    /// original pin fed (a gate, or a primary output). Returns the new
    /// gate and net ids.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] on an unknown net/pin or when
    /// `stub_rc` does not have exactly one sink.
    pub fn insert_buffer(
        &mut self,
        net: NetId,
        sink_pos: usize,
        cell: Cell,
        stub_rc: RcNet,
    ) -> Result<(GateId, NetId), StaError> {
        if stub_rc.sinks().len() != 1 {
            return Err(StaError::BadNetlist(format!(
                "buffer stub net must have exactly one sink, got {}",
                stub_rc.sinks().len()
            )));
        }
        let ni = self
            .nets
            .get_mut(net.0)
            .ok_or_else(|| StaError::BadNetlist(format!("no net {net:?}")))?;
        let slot = ni.fanout.get_mut(sink_pos).ok_or_else(|| {
            StaError::BadNetlist(format!("net {net:?} has no sink position {sink_pos}"))
        })?;
        let gid = GateId(self.gates.len());
        let downstream = slot.replace(gid);
        let out_id = NetId(self.nets.len());
        self.nets.push(NetInst {
            rc: stub_rc,
            driver: Some(gid),
            fanout: vec![downstream],
        });
        self.gates.push(GateInst {
            cell,
            inputs: vec![net],
            output: out_id,
        });
        if let Some(g) = downstream {
            // The downstream gate now listens to the stub net instead.
            // With multiple pins on `net` any one occurrence works: pin
            // matching during propagation goes through fanout positions.
            let inputs = &mut self.gates[g.0].inputs;
            let pin = inputs
                .iter()
                .position(|&n| n == net)
                .ok_or_else(|| StaError::BadNetlist(format!("gate {g:?} lost input {net:?}")))?;
            inputs[pin] = out_id;
        }
        Ok((gid, out_id))
    }

    /// Exact number of primary-input→primary-output paths (pin-to-pin,
    /// saturating at `u128::MAX`) — the Fig. 1(a) statistic.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadNetlist`] on cycles.
    pub fn count_paths(&self) -> Result<u128, StaError> {
        let order = self.topo_order()?;
        // Paths arriving at each net's driver pin.
        let mut net_paths: Vec<u128> = vec![0; self.nets.len()];
        for &pi in &self.primary_inputs {
            net_paths[pi.0] = 1;
        }
        for gid in order {
            let gate = &self.gates[gid.0];
            let mut acc: u128 = 0;
            for &in_net in &gate.inputs {
                let sinks_feeding: u128 = self.nets[in_net.0]
                    .fanout
                    .iter()
                    .filter(|fo| **fo == Some(gid))
                    .count() as u128;
                acc = acc.saturating_add(net_paths[in_net.0].saturating_mul(sinks_feeding));
            }
            net_paths[gate.output.0] = acc;
        }
        let mut total: u128 = 0;
        for (i, net) in self.nets.iter().enumerate() {
            let open_sinks = net.fanout.iter().filter(|fo| fo.is_none()).count() as u128;
            total = total.saturating_add(net_paths[i].saturating_mul(open_sinks));
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::wire::IdealWire;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn net(name: &str, sinks: usize) -> RcNet {
        let mut b = RcNetBuilder::new(name);
        let s = b.source(format!("{name}:z"), Farads::from_ff(0.5));
        let mut prev = s;
        for i in 0..sinks {
            let k = b.sink(format!("{name}:s{i}"), Farads::from_ff(1.0));
            b.resistor(prev, k, Ohms(50.0));
            prev = k;
        }
        b.build().unwrap()
    }

    fn chain(depth: usize) -> Netlist {
        let lib = CellLibrary::builtin();
        let mut nl = Netlist::new();
        let mut cur = nl.add_primary_input(net("pi", 1));
        for i in 0..depth {
            let (_, out) = nl
                .add_gate(
                    lib.cell("BUF_X1").unwrap().clone(),
                    &[(cur, 0)],
                    net(&format!("n{i}"), 1),
                )
                .unwrap();
            cur = out;
        }
        nl
    }

    #[test]
    fn chain_propagates_monotonically() {
        let nl = chain(4);
        let t = nl.propagate(&IdealWire, Seconds::from_ps(10.0)).unwrap();
        // Arrival increases along the chain.
        let mut prev = Seconds(0.0);
        for nt in &t {
            assert!(nt.at_driver.0 >= prev);
            prev = nt.at_driver.0;
        }
        assert_eq!(nl.count_paths().unwrap(), 1);
    }

    #[test]
    fn reconvergent_fanout_multiplies_paths() {
        // pi fans out to two gates, both feed a NAND: 2 paths.
        let lib = CellLibrary::builtin();
        let mut nl = Netlist::new();
        let pi = nl.add_primary_input(net("pi", 2));
        let (_, a) = nl
            .add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 0)], net("a", 1))
            .unwrap();
        let (_, b) = nl
            .add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 1)], net("b", 1))
            .unwrap();
        let (_, _o) = nl
            .add_gate(
                lib.cell("NAND2_X1").unwrap().clone(),
                &[(a, 0), (b, 0)],
                net("o", 1),
            )
            .unwrap();
        assert_eq!(nl.count_paths().unwrap(), 2);
        let t = nl.propagate(&IdealWire, Seconds::from_ps(10.0)).unwrap();
        assert_eq!(t.len(), nl.nets().len());
    }

    #[test]
    fn rejects_double_connection() {
        let lib = CellLibrary::builtin();
        let mut nl = Netlist::new();
        let pi = nl.add_primary_input(net("pi", 1));
        nl.add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 0)], net("a", 1))
            .unwrap();
        let err = nl.add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 0)], net("b", 1));
        assert!(matches!(err, Err(StaError::BadNetlist(_))));
    }

    #[test]
    fn rejects_missing_sink_position() {
        let lib = CellLibrary::builtin();
        let mut nl = Netlist::new();
        let pi = nl.add_primary_input(net("pi", 1));
        let err = nl.add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 7)], net("a", 1));
        assert!(err.is_err());
    }

    #[test]
    fn replace_net_rc_swaps_parasitics_and_checks_sinks() {
        let mut nl = chain(2);
        let old_cap = nl.nets()[1].rc.total_cap();
        let fatter = {
            let mut b = RcNetBuilder::new("n0");
            let s = b.source("n0:z", Farads::from_ff(0.5));
            let k = b.sink("n0:s0", Farads::from_ff(9.0));
            b.resistor(s, k, Ohms(80.0));
            b.build().unwrap()
        };
        let old = nl.replace_net_rc(NetId(1), fatter).unwrap();
        assert_eq!(old.total_cap(), old_cap);
        assert!(nl.nets()[1].rc.total_cap() > old_cap);
        // Sink-count mismatch is rejected.
        assert!(nl.replace_net_rc(NetId(1), net("two", 2)).is_err());
        assert!(nl.replace_net_rc(NetId(99), net("x", 1)).is_err());
    }

    #[test]
    fn set_gate_cell_resizes_driver() {
        let lib = CellLibrary::builtin();
        let mut nl = chain(2);
        let old = nl
            .set_gate_cell(GateId(0), lib.cell("BUF_X4").unwrap().clone())
            .unwrap();
        assert_eq!(old.name(), "BUF_X1");
        assert_eq!(nl.gates()[0].cell.name(), "BUF_X4");
        assert!(nl.set_gate_cell(GateId(9), old).is_err());
    }

    #[test]
    fn downstream_cone_and_net_topo_order() {
        // pi -> inv_a -> nand, pi -> inv_b -> nand (reconvergent).
        let lib = CellLibrary::builtin();
        let mut nl = Netlist::new();
        let pi = nl.add_primary_input(net("pi", 2));
        let (_, a) = nl
            .add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 0)], net("a", 1))
            .unwrap();
        let (_, b) = nl
            .add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 1)], net("b", 1))
            .unwrap();
        let (_, o) = nl
            .add_gate(
                lib.cell("NAND2_X1").unwrap().clone(),
                &[(a, 0), (b, 0)],
                net("o", 1),
            )
            .unwrap();
        let cone = nl.downstream_nets(a);
        assert_eq!(cone, vec![a, o]);
        let full = nl.downstream_nets(pi);
        assert_eq!(full.len(), 4);
        let order = nl.net_topo_order().unwrap();
        assert_eq!(order.len(), nl.nets().len());
        let pos = |n: NetId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(pi) < pos(a) && pos(a) < pos(o) && pos(b) < pos(o));
    }

    #[test]
    fn insert_buffer_preserves_connectivity_and_adds_delay() {
        let lib = CellLibrary::builtin();
        let slew = Seconds::from_ps(10.0);
        let mut nl = chain(3);
        let before = nl.propagate(&IdealWire, slew).unwrap();
        let last_before = before.last().unwrap().at_driver.0;

        let stub = {
            let mut b = RcNetBuilder::new("stub");
            let s = b.source("stub:z", Farads::from_ff(0.2));
            let k = b.sink("stub:s0", Farads::from_ff(0.5));
            b.resistor(s, k, Ohms(10.0));
            b.build().unwrap()
        };
        let (gid, stub_net) = nl
            .insert_buffer(NetId(1), 0, lib.cell("BUF_X2").unwrap().clone(), stub)
            .unwrap();
        // The buffered pin now feeds the buffer; the stub feeds the old gate.
        assert_eq!(nl.nets()[1].fanout[0], Some(gid));
        assert_eq!(nl.gates()[gid.0].output, stub_net);
        let after = nl.propagate(&IdealWire, slew).unwrap();
        assert_eq!(after.len(), nl.nets().len());
        // The original terminal net is still timed, later than before.
        assert!(after[3].at_driver.0 > last_before * 0.0 + before[3].at_driver.0);

        // A stub with two sinks is rejected.
        let bad = net("bad", 2);
        assert!(nl
            .insert_buffer(NetId(2), 0, lib.cell("BUF_X2").unwrap().clone(), bad)
            .is_err());
    }

    #[test]
    fn deeper_chain_has_larger_arrival() {
        let shallow = chain(2);
        let deep = chain(6);
        let slew = Seconds::from_ps(10.0);
        let t_s = shallow.propagate(&IdealWire, slew).unwrap();
        let t_d = deep.propagate(&IdealWire, slew).unwrap();
        let last_s = t_s.last().unwrap().at_driver.0;
        let last_d = t_d.last().unwrap().at_driver.0;
        assert!(last_d > last_s);
    }
}
