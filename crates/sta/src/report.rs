//! Timing reports: endpoint slack against a clock period and critical
//! path extraction — the consumer-facing half of STA that incremental
//! optimization (the paper's target flow) iterates on.

use crate::netlist::{GateId, NetId, NetTiming, Netlist};
use crate::StaError;
use rcnet::Seconds;

/// One endpoint (an unconnected net sink) with its arrival and slack.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// The net whose sink is the endpoint.
    pub net: NetId,
    /// Sink position within the net.
    pub sink: usize,
    /// Data arrival time.
    pub arrival: Seconds,
    /// `period - arrival` (setup-style slack against an ideal capture).
    pub slack: Seconds,
}

/// A step of the critical path: the gate stepped through and the arrival
/// at its output pin.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// The gate (or `None` at the launching primary input).
    pub gate: Option<GateId>,
    /// The net the step drives / enters through.
    pub net: NetId,
    /// Arrival at the net's driver pin.
    pub arrival: Seconds,
}

/// Slack report over every endpoint of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackReport {
    /// Endpoints sorted worst-slack first.
    pub endpoints: Vec<Endpoint>,
    /// The clock period slack was computed against.
    pub period: Seconds,
}

impl SlackReport {
    /// Worst (most negative) slack, or `None` with no endpoints.
    pub fn worst_slack(&self) -> Option<Seconds> {
        self.endpoints.first().map(|e| e.slack)
    }

    /// Total negative slack (sum of negative slacks).
    pub fn total_negative_slack(&self) -> Seconds {
        Seconds(
            self.endpoints
                .iter()
                .map(|e| e.slack.value().min(0.0))
                .sum(),
        )
    }

    /// Number of violating endpoints.
    pub fn violations(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|e| e.slack.value() < 0.0)
            .count()
    }
}

/// Builds a slack report from a propagation result (see
/// [`Netlist::propagate`]).
///
/// # Errors
///
/// Returns [`StaError::BadNetlist`] when `timing` does not cover the
/// netlist.
pub fn slack_report(
    netlist: &Netlist,
    timing: &[NetTiming],
    period: Seconds,
) -> Result<SlackReport, StaError> {
    if timing.len() != netlist.nets().len() {
        return Err(StaError::BadNetlist(format!(
            "timing covers {} nets, netlist has {}",
            timing.len(),
            netlist.nets().len()
        )));
    }
    let mut endpoints = Vec::new();
    for (ni, net) in netlist.nets().iter().enumerate() {
        for (pos, fanout) in net.fanout.iter().enumerate() {
            if fanout.is_none() {
                let arrival = timing[ni].at_sinks[pos].0;
                endpoints.push(Endpoint {
                    net: NetId(ni),
                    sink: pos,
                    arrival,
                    slack: period - arrival,
                });
            }
        }
    }
    endpoints.sort_by(|a, b| a.slack.value().total_cmp(&b.slack.value()));
    Ok(SlackReport { endpoints, period })
}

/// Traces the critical path (the input-to-endpoint chain with the latest
/// arrival), returning the steps from launch to capture.
///
/// # Errors
///
/// Returns [`StaError::BadNetlist`] when `timing` does not cover the
/// netlist or it has no endpoints.
pub fn critical_path(
    netlist: &Netlist,
    timing: &[NetTiming],
) -> Result<Vec<CriticalStep>, StaError> {
    let report = slack_report(netlist, timing, Seconds(0.0))?;
    let worst = report
        .endpoints
        .first()
        .ok_or_else(|| StaError::BadNetlist("netlist has no endpoints".into()))?;

    // Walk backwards: from the endpoint's net to its driving gate, then to
    // the gate's worst input net, until a primary input is reached.
    let mut steps = Vec::new();
    let mut net = worst.net;
    loop {
        let driver = netlist.nets()[net.0].driver;
        steps.push(CriticalStep {
            gate: driver,
            net,
            arrival: timing[net.0].at_driver.0,
        });
        let Some(gate) = driver else { break };
        // Worst input pin of this gate: the (net, sink) whose arrival is
        // largest among pins feeding the gate.
        let mut worst_input: Option<(NetId, f64)> = None;
        for &in_net in &netlist.gates()[gate.0].inputs {
            for (pos, fo) in netlist.nets()[in_net.0].fanout.iter().enumerate() {
                if *fo == Some(gate) {
                    let at = timing[in_net.0].at_sinks[pos].0.value();
                    if worst_input.is_none_or(|(_, w)| at > w) {
                        worst_input = Some((in_net, at));
                    }
                }
            }
        }
        let Some((prev, _)) = worst_input else { break };
        net = prev;
    }
    steps.reverse();
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::wire::IdealWire;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn net(name: &str, sinks: usize) -> rcnet::RcNet {
        let mut b = RcNetBuilder::new(name);
        let s = b.source(format!("{name}:z"), Farads::from_ff(0.5));
        let mut prev = s;
        for i in 0..sinks {
            let k = b.sink(format!("{name}:s{i}"), Farads::from_ff(1.0));
            b.resistor(prev, k, Ohms(50.0));
            prev = k;
        }
        b.build().unwrap()
    }

    /// pi -> INV -> BUF -> out, with a second short branch pi -> INV2 -> out2.
    fn two_branch() -> Netlist {
        let lib = CellLibrary::builtin();
        let mut nl = Netlist::new();
        let pi = nl.add_primary_input(net("pi", 2));
        let (_, a) = nl
            .add_gate(lib.cell("INV_X1").unwrap().clone(), &[(pi, 0)], net("a", 1))
            .unwrap();
        let (_, _long) = nl
            .add_gate(lib.cell("BUF_X1").unwrap().clone(), &[(a, 0)], net("long", 1))
            .unwrap();
        let (_, _short) = nl
            .add_gate(lib.cell("INV_X4").unwrap().clone(), &[(pi, 1)], net("short", 1))
            .unwrap();
        nl
    }

    #[test]
    fn slack_orders_endpoints_worst_first() {
        let nl = two_branch();
        let timing = nl.propagate(&IdealWire, Seconds::from_ps(10.0)).unwrap();
        let report = slack_report(&nl, &timing, Seconds::from_ps(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 2);
        assert!(report.endpoints[0].slack <= report.endpoints[1].slack);
        assert_eq!(report.worst_slack(), Some(report.endpoints[0].slack));
    }

    #[test]
    fn tight_period_creates_violations() {
        let nl = two_branch();
        let timing = nl.propagate(&IdealWire, Seconds::from_ps(10.0)).unwrap();
        let loose = slack_report(&nl, &timing, Seconds::from_ps(1000.0)).unwrap();
        assert_eq!(loose.violations(), 0);
        assert_eq!(loose.total_negative_slack(), Seconds(0.0));
        let tight = slack_report(&nl, &timing, Seconds::from_ps(1.0)).unwrap();
        assert_eq!(tight.violations(), 2);
        assert!(tight.total_negative_slack().value() < 0.0);
    }

    #[test]
    fn critical_path_walks_the_two_gate_branch() {
        let nl = two_branch();
        let timing = nl.propagate(&IdealWire, Seconds::from_ps(10.0)).unwrap();
        let path = critical_path(&nl, &timing).unwrap();
        // The INV->BUF branch is slower than the single INV_X4 branch:
        // pi, a, long = 3 steps, first step is the primary input.
        assert_eq!(path.len(), 3);
        assert!(path[0].gate.is_none());
        assert!(path[1].gate.is_some());
        // Arrivals are non-decreasing along the path.
        for w in path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn rejects_mismatched_timing() {
        let nl = two_branch();
        assert!(slack_report(&nl, &[], Seconds::from_ps(1.0)).is_err());
        assert!(critical_path(&nl, &[]).is_err());
    }
}
