//! Static timing analysis substrate.
//!
//! The paper composes circuit path arrival times as the cumulative sum of
//! *gate* delays — interpolated from NLDM lookup tables in the cell
//! library — and *wire* delays from its estimator (§III-A, TABLE V). This
//! crate provides that scaffolding:
//!
//! * [`liberty`] — NLDM-style 2-D lookup tables (input slew × load
//!   capacitance) with bilinear interpolation and clamped extrapolation;
//! * [`cells`] — a built-in parametric cell library (inverters, buffers,
//!   NAND/NOR, DFF end-points) with per-drive-strength tables;
//! * [`wire`] — the [`wire::WireTimer`] abstraction that plugs any wire
//!   timing engine (golden simulator, GNNTrans estimator, Elmore…) into
//!   arrival-time computation;
//! * [`path`] — multi-stage timing paths (gate → wire → gate → …) and the
//!   arrival-time engine with a per-stage breakdown;
//! * [`netlist`] — a combinational gate netlist with topological
//!   arrival-time propagation and exact path counting;
//! * [`report`] — endpoint slack against a clock period and critical-path
//!   extraction.
//!
//! # Examples
//!
//! ```
//! use sta::cells::CellLibrary;
//! use rcnet::{Farads, Seconds};
//!
//! let lib = CellLibrary::builtin();
//! let inv = lib.cell("INV_X1").unwrap();
//! let (delay, slew) = inv.arc().eval(Seconds::from_ps(20.0), Farads::from_ff(4.0));
//! assert!(delay.value() > 0.0 && slew.value() > 0.0);
//! ```

pub mod cells;
pub mod liberty;
pub mod netlist;
pub mod path;
pub mod report;
pub mod wire;

pub use cells::{Cell, CellLibrary};
pub use liberty::{Nldm2d, TimingArc};
pub use path::{Stage, TimingPath};
pub use report::{critical_path, slack_report, SlackReport};
pub use wire::WireTimer;

use std::error::Error;
use std::fmt;

/// Errors from the STA engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StaError {
    /// A lookup table was malformed.
    BadTable(String),
    /// A referenced cell does not exist in the library.
    UnknownCell(String),
    /// The wire timer failed for a net.
    Wire(String),
    /// The netlist is malformed (cycle, dangling reference).
    BadNetlist(String),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::BadTable(m) => write!(f, "bad lookup table: {m}"),
            StaError::UnknownCell(m) => write!(f, "unknown cell `{m}`"),
            StaError::Wire(m) => write!(f, "wire timing failed: {m}"),
            StaError::BadNetlist(m) => write!(f, "bad netlist: {m}"),
        }
    }
}

impl Error for StaError {}
