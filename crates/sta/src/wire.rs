//! The wire-timing abstraction arrival-time computation plugs into.
//!
//! The whole point of the paper is swapping the slow sign-off wire timer
//! for a learned one *without touching the rest of the STA flow*; this
//! trait is that seam. The golden simulator, the GNNTrans estimator and
//! the analytical Elmore engine all implement it (in the crates that own
//! them), and [`crate::path`] / [`crate::netlist`] are generic over it.

use crate::cells::Cell;
use crate::StaError;
use rcnet::{RcNet, Seconds};

/// Produces the delay and sink slew of one wire path of a net, given the
/// slew at the net's driver pin.
pub trait WireTimer {
    /// Returns `(wire delay, sink slew)` for `net.paths()[path_idx]`.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::Wire`] when the engine fails on this net (e.g.
    /// a simulation that does not settle).
    fn path_timing(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), StaError>;

    /// Like [`WireTimer::path_timing`] with the driving cell known — the
    /// arrival engine always knows who drives a net, and engines that
    /// model the driver (simulators, learned estimators) produce better
    /// numbers with it. The default ignores the hint.
    fn path_timing_with_driver(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
        driver: Option<&Cell>,
    ) -> Result<(Seconds, Seconds), StaError> {
        let _ = driver;
        self.path_timing(net, path_idx, input_slew)
    }
}

/// The ideal-wire timer: zero delay, slew passes through unchanged.
/// Useful for tests and for isolating gate-only arrival times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealWire;

impl WireTimer for IdealWire {
    fn path_timing(
        &self,
        _net: &RcNet,
        _path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), StaError> {
        Ok((Seconds(0.0), input_slew))
    }
}

impl<T: WireTimer + ?Sized> WireTimer for &T {
    fn path_timing(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
    ) -> Result<(Seconds, Seconds), StaError> {
        (**self).path_timing(net, path_idx, input_slew)
    }

    fn path_timing_with_driver(
        &self,
        net: &RcNet,
        path_idx: usize,
        input_slew: Seconds,
        driver: Option<&Cell>,
    ) -> Result<(Seconds, Seconds), StaError> {
        (**self).path_timing_with_driver(net, path_idx, input_slew, driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    #[test]
    fn ideal_wire_passes_slew() {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(1.0));
        let net = b.build().unwrap();
        let (d, s) = IdealWire
            .path_timing(&net, 0, Seconds::from_ps(12.0))
            .unwrap();
        assert_eq!(d, Seconds(0.0));
        assert_eq!(s, Seconds::from_ps(12.0));
        // Trait-object and reference forwarding compile and agree.
        let dyn_timer: &dyn WireTimer = &IdealWire;
        let (d2, _) = dyn_timer.path_timing(&net, 0, Seconds::from_ps(12.0)).unwrap();
        assert_eq!(d, d2);
    }
}
