//! Built-in parametric cell library.
//!
//! A small standard-cell set with NLDM tables generated from a
//! first-order delay model `d = t0 + k_s·slew + R_eff·load` plus a mild
//! square-root nonlinearity, characterized over industry-typical axes
//! (5–160 ps slews, 1–64 fF loads). The absolute numbers are synthetic
//! but the monotonicities and drive-strength scaling that TABLE V's
//! arrival-time sums depend on are faithful.

use crate::liberty::{Nldm2d, TimingArc};
use crate::StaError;
use rcnet::{Farads, Ohms};

/// Logic function of a cell (one of the paper's path features is "func. of
/// drive cell").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFunc {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// Flip-flop (path start/end point).
    Dff,
}

impl CellFunc {
    /// Stable small integer encoding for feature vectors.
    pub fn encode(self) -> f64 {
        match self {
            CellFunc::Inv => 0.0,
            CellFunc::Buf => 1.0,
            CellFunc::Nand2 => 2.0,
            CellFunc::Nor2 => 3.0,
            CellFunc::Dff => 4.0,
        }
    }
}

/// One library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    func: CellFunc,
    /// Drive strength multiple (X1 = 1.0).
    drive: f64,
    /// Thevenin-equivalent output resistance (drives the wire simulator).
    drive_res: Ohms,
    /// Input pin capacitance.
    pin_cap: Farads,
    arc: TimingArc,
}

impl Cell {
    /// Cell name, e.g. `BUF_X2`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logic function.
    pub fn func(&self) -> CellFunc {
        self.func
    }

    /// Drive strength multiple.
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// Thevenin output resistance.
    pub fn drive_res(&self) -> Ohms {
        self.drive_res
    }

    /// Input pin capacitance.
    pub fn pin_cap(&self) -> Farads {
        self.pin_cap
    }

    /// The input→output timing arc.
    pub fn arc(&self) -> &TimingArc {
        &self.arc
    }
}

/// A named collection of cells.
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    cells: Vec<Cell>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        CellLibrary::default()
    }

    /// The built-in library: INV/BUF at X1/X2/X4, NAND2/NOR2 at X1/X2,
    /// and a DFF end-point.
    pub fn builtin() -> Self {
        let mut lib = CellLibrary::new();
        let combos: &[(CellFunc, &str, f64)] = &[
            (CellFunc::Inv, "INV", 1.0),
            (CellFunc::Inv, "INV", 2.0),
            (CellFunc::Inv, "INV", 4.0),
            (CellFunc::Buf, "BUF", 1.0),
            (CellFunc::Buf, "BUF", 2.0),
            (CellFunc::Buf, "BUF", 4.0),
            (CellFunc::Nand2, "NAND2", 1.0),
            (CellFunc::Nand2, "NAND2", 2.0),
            (CellFunc::Nor2, "NOR2", 1.0),
            (CellFunc::Nor2, "NOR2", 2.0),
            (CellFunc::Dff, "DFF", 1.0),
        ];
        for &(func, base, drive) in combos {
            lib.cells
                .push(Self::parametric_cell(func, base, drive).expect("builtin tables are valid"));
        }
        lib
    }

    fn parametric_cell(func: CellFunc, base: &str, drive: f64) -> Result<Cell, StaError> {
        // Base intrinsic delay and effective resistance per function; the
        // effective resistance scales inversely with drive strength.
        let (t0, r_eff_x1) = match func {
            CellFunc::Inv => (4e-12, 900.0),
            CellFunc::Buf => (7e-12, 800.0),
            CellFunc::Nand2 => (6e-12, 1100.0),
            CellFunc::Nor2 => (7e-12, 1300.0),
            CellFunc::Dff => (45e-12, 1000.0),
        };
        let r_eff = r_eff_x1 / drive;
        let slews: Vec<f64> = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0]
            .iter()
            .map(|p| p * 1e-12)
            .collect();
        let loads: Vec<f64> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|f| f * 1e-15)
            .collect();
        let delay = Nldm2d::from_model(slews.clone(), loads.clone(), move |s, l| {
            t0 + 0.22 * s + r_eff * l + 1.5e-12 * (l / 1e-15).sqrt()
        })?;
        let out_slew = Nldm2d::from_model(slews, loads, move |s, l| {
            2.5e-12 + 0.18 * s + 1.9 * r_eff * l
        })?;
        Ok(Cell {
            name: format!("{base}_X{}", drive as u32),
            func,
            drive,
            drive_res: Ohms(r_eff * 0.35),
            pin_cap: Farads::from_ff(0.9 * drive.sqrt()),
            arc: TimingArc::new(delay, out_slew),
        })
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Cells implementing a function, ordered by drive strength.
    pub fn by_func(&self, func: CellFunc) -> Vec<&Cell> {
        let mut v: Vec<&Cell> = self.cells.iter().filter(|c| c.func == func).collect();
        v.sort_by(|a, b| a.drive.total_cmp(&b.drive));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::Seconds;

    #[test]
    fn builtin_has_expected_cells() {
        let lib = CellLibrary::builtin();
        for name in [
            "INV_X1", "INV_X2", "INV_X4", "BUF_X1", "BUF_X2", "BUF_X4", "NAND2_X1", "NAND2_X2",
            "NOR2_X1", "NOR2_X2", "DFF_X1",
        ] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
        assert!(lib.cell("XOR9_X9").is_none());
    }

    #[test]
    fn delay_monotone_in_load_and_slew() {
        let lib = CellLibrary::builtin();
        let c = lib.cell("BUF_X1").unwrap();
        let d_small = c.arc().eval(Seconds::from_ps(10.0), Farads::from_ff(2.0)).0;
        let d_big_load = c.arc().eval(Seconds::from_ps(10.0), Farads::from_ff(30.0)).0;
        let d_big_slew = c.arc().eval(Seconds::from_ps(120.0), Farads::from_ff(2.0)).0;
        assert!(d_big_load > d_small);
        assert!(d_big_slew > d_small);
    }

    #[test]
    fn stronger_drive_is_faster_into_same_load() {
        let lib = CellLibrary::builtin();
        let x1 = lib.cell("INV_X1").unwrap();
        let x4 = lib.cell("INV_X4").unwrap();
        let q = (Seconds::from_ps(20.0), Farads::from_ff(16.0));
        assert!(x4.arc().eval(q.0, q.1).0 < x1.arc().eval(q.0, q.1).0);
        assert!(x4.drive_res() < x1.drive_res());
        assert!(x4.pin_cap() > x1.pin_cap());
    }

    #[test]
    fn by_func_sorted_by_drive() {
        let lib = CellLibrary::builtin();
        let bufs = lib.by_func(CellFunc::Buf);
        assert_eq!(bufs.len(), 3);
        assert!(bufs[0].drive() < bufs[1].drive());
        assert!(bufs[1].drive() < bufs[2].drive());
    }

    #[test]
    fn func_encoding_distinct() {
        let codes: Vec<f64> = [
            CellFunc::Inv,
            CellFunc::Buf,
            CellFunc::Nand2,
            CellFunc::Nor2,
            CellFunc::Dff,
        ]
        .iter()
        .map(|f| f.encode())
        .collect();
        let mut sorted = codes.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
    }
}
