//! NLDM-style 2-D lookup tables.
//!
//! Liberty NLDM characterizes each timing arc as a table over input
//! transition time and output load capacitance. Interpolation is bilinear;
//! queries outside the characterized grid clamp to the border cell and
//! extrapolate linearly along it, matching common STA tool behaviour.

use crate::StaError;
use rcnet::{Farads, Seconds};

/// A 2-D lookup table: rows indexed by input slew, columns by load cap.
#[derive(Debug, Clone, PartialEq)]
pub struct Nldm2d {
    slews: Vec<f64>,
    loads: Vec<f64>,
    /// Row-major values, `values[i * loads.len() + j]`, in seconds.
    values: Vec<f64>,
}

impl Nldm2d {
    /// Builds a table from its axes and row-major values (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::BadTable`] when an axis is empty or unsorted or
    /// the value count does not match.
    pub fn new(slews: Vec<f64>, loads: Vec<f64>, values: Vec<f64>) -> Result<Self, StaError> {
        if slews.is_empty() || loads.is_empty() {
            return Err(StaError::BadTable("empty axis".into()));
        }
        if values.len() != slews.len() * loads.len() {
            return Err(StaError::BadTable(format!(
                "expected {} values, got {}",
                slews.len() * loads.len(),
                values.len()
            )));
        }
        for w in slews.windows(2) {
            if w[1] <= w[0] {
                return Err(StaError::BadTable("slew axis not increasing".into()));
            }
        }
        for w in loads.windows(2) {
            if w[1] <= w[0] {
                return Err(StaError::BadTable("load axis not increasing".into()));
            }
        }
        Ok(Nldm2d {
            slews,
            loads,
            values,
        })
    }

    /// Generates a table by sampling a closed-form model `f(slew, load)`
    /// on the given axes — how the built-in library builds its arcs.
    pub fn from_model<F: Fn(f64, f64) -> f64>(
        slews: Vec<f64>,
        loads: Vec<f64>,
        f: F,
    ) -> Result<Self, StaError> {
        let mut values = Vec::with_capacity(slews.len() * loads.len());
        for &s in &slews {
            for &l in &loads {
                values.push(f(s, l));
            }
        }
        Nldm2d::new(slews, loads, values)
    }

    /// Table axes.
    pub fn slew_axis(&self) -> &[f64] {
        &self.slews
    }

    /// Table axes.
    pub fn load_axis(&self) -> &[f64] {
        &self.loads
    }

    fn bracket(axis: &[f64], x: f64) -> (usize, f64) {
        // Returns the lower index and the interpolation fraction; clamps
        // outside the grid to the border segment (linear extrapolation).
        if axis.len() == 1 {
            return (0, 0.0);
        }
        let hi = axis.len() - 1;
        let i = match axis.iter().position(|&a| a > x) {
            Some(0) => 0,
            Some(p) => p - 1,
            None => hi - 1,
        };
        let i = i.min(hi - 1);
        let frac = (x - axis[i]) / (axis[i + 1] - axis[i]);
        (i, frac)
    }

    /// Bilinear interpolation at `(slew, load)`.
    pub fn eval(&self, slew: Seconds, load: Farads) -> Seconds {
        let (i, fs) = Self::bracket(&self.slews, slew.value());
        let (j, fl) = Self::bracket(&self.loads, load.value());
        let n = self.loads.len();
        let at = |r: usize, c: usize| self.values[r * n + c];
        let v00 = at(i, j);
        let (v01, v10, v11) = if self.loads.len() == 1 && self.slews.len() == 1 {
            (v00, v00, v00)
        } else if self.loads.len() == 1 {
            (v00, at(i + 1, j), at(i + 1, j))
        } else if self.slews.len() == 1 {
            (at(i, j + 1), v00, at(i, j + 1))
        } else {
            (at(i, j + 1), at(i + 1, j), at(i + 1, j + 1))
        };
        let top = v00 + (v01 - v00) * fl;
        let bot = v10 + (v11 - v10) * fl;
        Seconds(top + (bot - top) * fs)
    }
}

/// A timing arc: a delay table plus an output-slew table.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArc {
    delay: Nldm2d,
    out_slew: Nldm2d,
}

impl TimingArc {
    /// Creates an arc from its two tables.
    pub fn new(delay: Nldm2d, out_slew: Nldm2d) -> Self {
        TimingArc { delay, out_slew }
    }

    /// Interpolated `(delay, output slew)` at the query point.
    pub fn eval(&self, input_slew: Seconds, load: Farads) -> (Seconds, Seconds) {
        (
            self.delay.eval(input_slew, load),
            self.out_slew.eval(input_slew, load),
        )
    }

    /// The delay table.
    pub fn delay_table(&self) -> &Nldm2d {
        &self.delay
    }

    /// The output-slew table.
    pub fn slew_table(&self) -> &Nldm2d {
        &self.out_slew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Nldm2d {
        // delay = slew + 2*load over slews [1,2], loads [10,20].
        Nldm2d::new(
            vec![1.0, 2.0],
            vec![10.0, 20.0],
            vec![21.0, 41.0, 22.0, 42.0],
        )
        .unwrap()
    }

    #[test]
    fn exact_grid_points() {
        let t = table();
        assert_eq!(t.eval(Seconds(1.0), Farads(10.0)), Seconds(21.0));
        assert_eq!(t.eval(Seconds(2.0), Farads(20.0)), Seconds(42.0));
    }

    #[test]
    fn bilinear_midpoint() {
        let t = table();
        let v = t.eval(Seconds(1.5), Farads(15.0));
        assert!((v.value() - 31.5).abs() < 1e-12);
    }

    #[test]
    fn clamped_extrapolation_is_linear() {
        let t = table();
        // Above the grid: extrapolate along the border segment.
        let v = t.eval(Seconds(3.0), Farads(30.0));
        assert!((v.value() - 63.0).abs() < 1e-12);
        // Below the grid.
        let v = t.eval(Seconds(0.0), Farads(0.0));
        assert!((v.value() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_tables() {
        assert!(Nldm2d::new(vec![], vec![1.0], vec![]).is_err());
        assert!(Nldm2d::new(vec![1.0, 1.0], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Nldm2d::new(vec![1.0], vec![2.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(Nldm2d::new(vec![1.0], vec![1.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_model_samples_function() {
        let t = Nldm2d::from_model(vec![1.0, 2.0], vec![1.0, 2.0], |s, l| s * 10.0 + l).unwrap();
        assert_eq!(t.eval(Seconds(2.0), Farads(2.0)), Seconds(22.0));
    }

    #[test]
    fn single_point_axes() {
        let t = Nldm2d::new(vec![1.0], vec![1.0], vec![5.0]).unwrap();
        assert_eq!(t.eval(Seconds(9.0), Farads(9.0)), Seconds(5.0));
    }

    #[test]
    fn arc_returns_both() {
        let arc = TimingArc::new(table(), table());
        let (d, s) = arc.eval(Seconds(1.0), Farads(10.0));
        assert_eq!(d, s);
        assert_eq!(arc.delay_table(), arc.slew_table());
    }
}
