//! Request-scoped tracing: trace identifiers, an ambient per-thread
//! context, and a lock-light ring buffer of completed request traces.
//!
//! The serving pipeline (crates/serve) generates one [`TraceContext`]
//! per request — or honors an `x-trace-id` header — and carries it
//! across every thread handoff: connection thread → bounded queue →
//! worker pool → `par` pool lanes (see `par::par_map`, which captures
//! [`current`] and re-establishes it inside each lane). When the
//! request completes, its per-stage latency breakdown is frozen into a
//! [`TraceRecord`] and pushed into the global [`TraceRing`], where
//! `GET /v1/traces` and the `obs-trace` analyzer can read it back.
//!
//! Design notes:
//!
//! * **Ids** are random 128-bit (trace) / 64-bit (span) values from a
//!   per-thread splitmix64 generator — no external RNG crate, no
//!   coordination between threads after seeding.
//! * **The ring is lock-light**: one `Mutex<Option<_>>` per slot plus
//!   an atomic sequence counter. Writers contend only when two pushes
//!   land `capacity` apart simultaneously; a snapshot locks each slot
//!   for a clone, never the whole ring. Eviction is oldest-first by
//!   construction (slot index = sequence mod capacity).
//! * **Tracing can be disabled** (`OBS_TRACE=off` or
//!   [`set_tracing`]) for overhead experiments; id generation and
//!   header echo stay on, only recording stops.

use crate::json;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

/// A 128-bit trace identifier (non-zero), rendered as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// A 64-bit span identifier (non-zero), rendered as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Global entropy pump: every thread folds one draw from this counter
/// into its seed, so two threads spawned in the same nanosecond still
/// diverge.
static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x243f_6a88_85a3_08d3);

fn thread_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let unique = SEED_COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    let local = 0u8;
    let addr = &local as *const u8 as u64;
    mix64(nanos ^ unique.rotate_left(17) ^ addr ^ std::process::id() as u64)
}

thread_local! {
    static RNG: Cell<u64> = Cell::new(thread_seed());
}

fn next_random() -> u64 {
    RNG.with(|cell| {
        let mut s = cell.get();
        splitmix64(&mut s);
        cell.set(s);
        mix64(s)
    })
}

impl TraceId {
    /// A fresh random id (never zero).
    pub fn generate() -> TraceId {
        let v = ((next_random() as u128) << 64) | next_random() as u128;
        TraceId(if v == 0 { 1 } else { v })
    }

    /// Parses up to 32 hex digits (as produced by [`TraceId::to_hex`]
    /// or sent in an `x-trace-id` header). Zero and malformed input
    /// return `None`.
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        let mut v: u128 = 0;
        for c in s.chars() {
            v = (v << 4) | c.to_digit(16)? as u128;
        }
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }

    /// 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl SpanId {
    /// A fresh random id (never zero).
    pub fn generate() -> SpanId {
        let v = next_random();
        SpanId(if v == 0 { 1 } else { v })
    }

    /// 16 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Ambient context
// ---------------------------------------------------------------------------

/// The trace context carried with a request: which trace it belongs to
/// and which server-side span is currently executing on its behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The request's trace id (shared by every span of the request).
    pub trace_id: TraceId,
    /// This hop's span id.
    pub span_id: SpanId,
}

impl TraceContext {
    /// A root context for `trace_id` with a fresh span id.
    pub fn new(trace_id: TraceId) -> TraceContext {
        TraceContext {
            trace_id,
            span_id: SpanId::generate(),
        }
    }

    /// A child context: same trace, fresh span id.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: SpanId::generate(),
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context installed on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Installs (or clears) the thread's context directly. Prefer
/// [`scope`], which restores the previous value automatically.
pub fn set_current(ctx: Option<TraceContext>) {
    CURRENT.with(|c| c.set(ctx));
}

/// RAII guard restoring the previously-installed context on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

/// Installs `ctx` as the thread's current context until the returned
/// guard drops (at which point the previous context is restored). This
/// is how a trace survives thread handoffs: the receiving thread scopes
/// the context it was handed before doing the request's work.
pub fn scope(ctx: TraceContext) -> ContextGuard {
    ContextGuard {
        prev: CURRENT.with(|c| c.replace(Some(ctx))),
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Enable/disable
// ---------------------------------------------------------------------------

const TRACE_UNSET: u8 = u8::MAX;
const TRACE_ON: u8 = 1;
const TRACE_OFF: u8 = 0;
static TRACING: AtomicU8 = AtomicU8::new(TRACE_UNSET);

#[cold]
fn init_tracing_from_env() -> bool {
    let on = match std::env::var("OBS_TRACE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    };
    TRACING.store(if on { TRACE_ON } else { TRACE_OFF }, Ordering::Relaxed);
    on
}

/// Whether trace *recording* is enabled (`OBS_TRACE`, default on).
/// Id generation and header propagation are always on — disabling
/// tracing only stops ring/metric recording, which is what the
/// overhead experiment toggles.
#[inline]
pub fn tracing_enabled() -> bool {
    match TRACING.load(Ordering::Relaxed) {
        TRACE_UNSET => init_tracing_from_env(),
        v => v == TRACE_ON,
    }
}

/// Overrides the tracing toggle programmatically (wins over the
/// `OBS_TRACE` environment variable).
pub fn set_tracing(on: bool) {
    TRACING.store(if on { TRACE_ON } else { TRACE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Pipeline stages and completed records
// ---------------------------------------------------------------------------

/// The canonical serving-pipeline stages, in request order. The serve
/// crate records one duration per stage; the analyzer and the
/// `serve.stage_seconds{stage=...}` histograms share this taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Reading + parsing the HTTP request off the socket.
    Accept = 0,
    /// JSON body parse, SPEF parse / net generation, validation.
    Parse = 1,
    /// Enqueued, waiting for a worker to pop the micro-batch.
    QueueWait = 2,
    /// Popped, waiting for the batch to reach the model (dead-job
    /// partitioning, model acquisition, head-of-line neighbours).
    BatchWait = 3,
    /// Inside `predict_many` (the whole co-batched call).
    Inference = 4,
    /// ECO sessions: mapping an edit to the dirty nets + downstream cone.
    DirtySet = 5,
    /// ECO sessions: prediction-cache probes for the dirty nets.
    CacheLookup = 6,
    /// ECO sessions: model predictions for cache misses.
    Predict = 7,
    /// ECO sessions: incremental arrival-time propagation over the cone.
    Propagate = 8,
    /// Rendering, the reply channel, and the socket write. Kept last:
    /// serve computes it as the clamped remainder of the wall clock, so
    /// every other stage must precede it.
    Respond = 9,
}

/// Number of pipeline stages.
pub const STAGE_COUNT: usize = 10;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accept,
        Stage::Parse,
        Stage::QueueWait,
        Stage::BatchWait,
        Stage::Inference,
        Stage::DirtySet,
        Stage::CacheLookup,
        Stage::Predict,
        Stage::Propagate,
        Stage::Respond,
    ];

    /// Stable snake_case name (used as the `stage` label and in JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::BatchWait => "batch_wait",
            Stage::Inference => "inference",
            Stage::DirtySet => "dirty_set",
            Stage::CacheLookup => "cache_lookup",
            Stage::Predict => "predict",
            Stage::Propagate => "propagate",
            Stage::Respond => "respond",
        }
    }

    /// Index into a per-stage array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stage with `name`, if any.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One completed request trace: identity, outcome, and the per-stage
/// wall-clock breakdown in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// Milliseconds since the Unix epoch when the request arrived.
    pub started_unix_ms: u64,
    /// Total wall time from request read to response written, seconds.
    pub total_s: f64,
    /// HTTP status of the response.
    pub status: u16,
    /// Nets carried by the request (0 for non-predict requests).
    pub nets: u32,
    /// Seconds spent in each [`Stage`], indexed by [`Stage::index`].
    pub stages: [f64; STAGE_COUNT],
}

impl TraceRecord {
    /// Seconds spent in `stage`.
    pub fn stage(&self, stage: Stage) -> f64 {
        self.stages[stage.index()]
    }

    /// Sum of all stage durations (should track `total_s` closely;
    /// the integration tests pin the gap under 5%).
    pub fn stage_sum(&self) -> f64 {
        self.stages.iter().sum()
    }

    /// Appends the record as one JSON object: durations in
    /// milliseconds, stages keyed by [`Stage::name`]. This is the wire
    /// format of `GET /v1/traces` and of trace JSONL dumps.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"trace_id\":");
        json::push_string(out, &self.trace_id.to_hex());
        out.push_str(",\"started_unix_ms\":");
        out.push_str(&self.started_unix_ms.to_string());
        out.push_str(",\"total_ms\":");
        json::push_f64(out, self.total_s * 1e3);
        out.push_str(",\"status\":");
        out.push_str(&self.status.to_string());
        out.push_str(",\"nets\":");
        out.push_str(&self.nets.to_string());
        out.push_str(",\"stages\":{");
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(out, stage.name());
            out.push(':');
            json::push_f64(out, self.stage(stage) * 1e3);
        }
        out.push_str("}}");
    }

    /// The record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        self.push_json(&mut s);
        s
    }
}

// ---------------------------------------------------------------------------
// The ring buffer
// ---------------------------------------------------------------------------

type Slot = Mutex<Option<(u64, TraceRecord)>>;

/// A fixed-capacity ring of completed traces with oldest-first
/// eviction. Push cost is one `fetch_add` plus one per-slot lock;
/// concurrent writers touch the same slot only when their sequence
/// numbers collide modulo the capacity.
pub struct TraceRing {
    slots: Box<[Slot]>,
    next: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (monotonic; `recorded - capacity`
    /// records have been evicted when it exceeds the capacity).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Stores `record`, evicting the oldest record once full.
    pub fn push(&self, record: TraceRecord) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().expect("trace ring slot poisoned") = Some((seq, record));
    }

    /// Every live record, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut rows: Vec<(u64, TraceRecord)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("trace ring slot poisoned").clone())
            .collect();
        rows.sort_by_key(|(seq, _)| *seq);
        rows.into_iter().map(|(_, rec)| rec).collect()
    }

    /// Clears every slot (test isolation; the sequence counter keeps
    /// advancing so in-flight pushes stay ordered).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock().expect("trace ring slot poisoned") = None;
        }
    }
}

/// Default capacity of the global ring; override with the
/// `OBS_TRACE_RING_CAPACITY` environment variable.
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// The process-global trace ring, sized once on first use from
/// `OBS_TRACE_RING_CAPACITY` (default [`DEFAULT_RING_CAPACITY`]).
pub fn ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| {
        let capacity = std::env::var("OBS_TRACE_RING_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        TraceRing::new(capacity)
    })
}

/// Clears the global ring (test isolation).
pub fn reset() {
    ring().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u128, total_ms: f64) -> TraceRecord {
        TraceRecord {
            trace_id: TraceId(id),
            started_unix_ms: 1,
            total_s: total_ms / 1e3,
            status: 200,
            nets: 1,
            stages: [0.0; STAGE_COUNT],
        }
    }

    #[test]
    fn trace_ids_are_unique_nonzero_and_round_trip() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::parse(&hex), Some(a));
        assert_eq!(TraceId::parse("0"), None);
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse(&"f".repeat(33)), None);
        assert_eq!(TraceId::parse("deadbeef"), Some(TraceId(0xdead_beef)));
        let s = SpanId::generate();
        assert_ne!(s.0, 0);
        assert_eq!(s.to_hex().len(), 16);
    }

    #[test]
    fn ids_diverge_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..64).map(|_| TraceId::generate()).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<TraceId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate trace ids across threads");
    }

    #[test]
    fn scope_installs_and_restores_context() {
        assert_eq!(current(), None);
        let outer = TraceContext::new(TraceId::generate());
        {
            let _g = scope(outer);
            assert_eq!(current(), Some(outer));
            let inner = outer.child();
            assert_eq!(inner.trace_id, outer.trace_id);
            assert_ne!(inner.span_id, outer.span_id);
            {
                let _g2 = scope(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn context_does_not_leak_across_threads() {
        let ctx = TraceContext::new(TraceId::generate());
        let _g = scope(ctx);
        let other = std::thread::spawn(current).join().unwrap();
        assert_eq!(other, None, "thread-local context leaked across threads");
    }

    #[test]
    fn ring_evicts_oldest_first_under_overflow() {
        let ring = TraceRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 1..=6u128 {
            ring.push(record(i, i as f64));
        }
        assert_eq!(ring.recorded(), 6);
        let live = ring.snapshot();
        // 1 and 2 were evicted; 3..=6 survive in push order.
        let ids: Vec<u128> = live.iter().map(|r| r.trace_id.0).collect();
        assert_eq!(ids, vec![3, 4, 5, 6]);
        ring.clear();
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn ring_survives_concurrent_pushes() {
        let ring = std::sync::Arc::new(TraceRing::new(32));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..256u128 {
                        ring.push(record(t as u128 * 1000 + i + 1, 1.0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 1024);
        let live = ring.snapshot();
        assert_eq!(live.len(), 32, "ring holds exactly its capacity");
    }

    #[test]
    fn record_json_has_all_stages_in_ms() {
        let mut rec = record(0xabc, 10.0);
        rec.stages[Stage::Inference.index()] = 0.004;
        let json = rec.to_json();
        assert!(json.contains("\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(json.contains("\"total_ms\":10"));
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", stage.name())), "{json}");
        }
        assert!(json.contains("\"inference\":4"), "{json}");
        assert_eq!(rec.stage_sum(), 0.004);
        assert_eq!(Stage::from_name("queue_wait"), Some(Stage::QueueWait));
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn tracing_toggle_round_trips() {
        set_tracing(false);
        assert!(!tracing_enabled());
        set_tracing(true);
        assert!(tracing_enabled());
    }
}
