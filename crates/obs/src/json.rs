//! Hand-rolled JSON emission: escaping and number formatting.
//!
//! The crate is std-only by design (the build environment is offline),
//! so report and JSONL serialization write JSON text directly. Output is
//! ASCII-safe: non-ASCII characters are emitted as `\uXXXX` escapes
//! (surrogate pairs above the BMP), which keeps downstream log shippers
//! encoding-agnostic.

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c if c.is_ascii() => out.push(c),
            c => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
        }
    }
}

/// Appends `s` as a quoted JSON string.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    push_escaped(out, s);
    out.push('"');
}

/// `s` as a quoted JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_string(&mut out, s);
    out
}

/// Appends `v` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(string(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_newlines_tabs_and_controls() {
        assert_eq!(string("a\nb\tc\r"), r#""a\nb\tc\r""#);
        assert_eq!(string("\u{01}"), r#""\u0001""#);
        assert_eq!(string("\u{08}\u{0c}"), r#""\b\f""#);
    }

    #[test]
    fn escapes_non_ascii_as_unicode() {
        assert_eq!(string("\u{b5}s"), r#""\u00b5s""#);
        assert_eq!(string("\u{65e5}"), r#""\u65e5""#);
        // Astral plane -> surrogate pair.
        assert_eq!(string("\u{1d11e}"), r#""\ud834\udd1e""#);
    }

    #[test]
    fn plain_ascii_passes_through() {
        assert_eq!(string("net_42.sink[3]"), "\"net_42.sink[3]\"");
    }

    #[test]
    fn numbers_and_non_finite() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
