//! `RunReport`: a JSON snapshot of the span tree and metrics registry.
//!
//! Experiment binaries capture one report at exit (see `--obs-json` in
//! the bench harness) so a run's timing breakdown and counters are
//! machine-readable without a metrics server.

use crate::json;
use crate::metrics::{self, MetricsSnapshot};
use crate::span::{self, SpanEntry};
use std::io::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "obs.run_report.v1";

const NS_PER_SEC: f64 = 1e9;

/// Point-in-time snapshot of all spans and metrics.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Milliseconds since the Unix epoch at capture time.
    pub captured_unix_ms: u128,
    /// Every recorded span path with its aggregates, sorted by path.
    pub spans: Vec<SpanEntry>,
    /// Every registered counter, gauge and histogram.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Captures the current global span and metric state.
    pub fn capture() -> Self {
        RunReport {
            captured_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0),
            spans: span::snapshot(),
            metrics: metrics::snapshot(),
        }
    }

    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        json::push_string(&mut out, SCHEMA);
        out.push_str(",\"captured_unix_ms\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.captured_unix_ms));

        out.push_str(",\"spans\":[");
        for (i, row) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":");
            json::push_string(&mut out, &row.path);
            out.push_str(",\"count\":");
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", row.stats.count));
            out.push_str(",\"total_s\":");
            json::push_f64(&mut out, row.stats.total_ns as f64 / NS_PER_SEC);
            out.push_str(",\"self_s\":");
            json::push_f64(&mut out, row.stats.self_ns as f64 / NS_PER_SEC);
            out.push('}');
        }
        out.push(']');

        out.push_str(",\"counters\":[");
        for (i, (key, value)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, &key.name, key.label.as_deref());
            out.push_str(",\"value\":");
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{value}"));
            out.push('}');
        }
        out.push(']');

        out.push_str(",\"gauges\":[");
        for (i, (key, value)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, &key.name, key.label.as_deref());
            out.push_str(",\"value\":");
            json::push_f64(&mut out, *value);
            out.push('}');
        }
        out.push(']');

        out.push_str(",\"histograms\":[");
        for (i, (key, hist)) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, &key.name, key.label.as_deref());
            out.push_str(",\"count\":");
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", hist.count()));
            out.push_str(",\"sum\":");
            json::push_f64(&mut out, hist.sum());
            out.push_str(",\"min\":");
            json::push_f64(&mut out, hist.min());
            out.push_str(",\"max\":");
            json::push_f64(&mut out, hist.max());
            out.push_str(",\"mean\":");
            json::push_f64(&mut out, hist.mean());
            out.push_str(",\"p50\":");
            json::push_f64(&mut out, hist.quantile(0.50));
            out.push_str(",\"p95\":");
            json::push_f64(&mut out, hist.quantile(0.95));
            out.push_str(",\"p99\":");
            json::push_f64(&mut out, hist.quantile(0.99));
            out.push('}');
        }
        out.push(']');

        self.push_par_section(&mut out);
        self.push_solver_section(&mut out);
        self.push_infer_section(&mut out);
        self.push_train_section(&mut out);
        out.push('}');
        out
    }

    /// Emits a derived `"par"` section summarizing the parallel-compute
    /// metrics (`par.threads` / `par.queue_depth` gauges and the
    /// per-task-kind `par.tasks` / `par.task_seconds` series), so run
    /// reports answer "how parallel was this run" without grepping the
    /// raw metric arrays. Empty-but-present when nothing ran on the
    /// pool.
    fn push_par_section(&self, out: &mut String) {
        let gauge = |name: &str| {
            self.metrics
                .gauges
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, v)| *v)
        };
        out.push_str(",\"par\":{\"threads\":");
        json::push_f64(out, gauge("par.threads").unwrap_or(0.0));
        out.push_str(",\"queue_depth\":");
        json::push_f64(out, gauge("par.queue_depth").unwrap_or(0.0));
        out.push_str(",\"task_kinds\":[");
        let mut first = true;
        for (key, count) in &self.metrics.counters {
            if key.name != "par.tasks" {
                continue;
            }
            let Some(kind) = key.label.as_deref() else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"kind\":");
            json::push_string(out, kind);
            out.push_str(",\"tasks\":");
            let _ = std::fmt::Write::write_fmt(out, format_args!("{count}"));
            let hist = self
                .metrics
                .histograms
                .iter()
                .find(|(k, _)| k.name == "par.task_seconds" && k.label.as_deref() == Some(kind))
                .map(|(_, h)| h);
            out.push_str(",\"total_s\":");
            json::push_f64(out, hist.map(|h| h.sum()).unwrap_or(0.0));
            out.push_str(",\"p95_s\":");
            json::push_f64(out, hist.map(|h| h.quantile(0.95)).unwrap_or(0.0));
            out.push('}');
        }
        out.push_str("]}");
    }

    /// Emits a derived `"solver"` section summarizing the golden
    /// simulator's linear-solver metrics: nets factorized per backend
    /// (the `rcsim.solver.nets` labelled counter), aggregate sparse
    /// pattern size and fill-in (`rcsim.sparse.nnz` / `rcsim.sparse.fill`)
    /// and the factor/solve time split (`rcsim.factor_seconds` /
    /// `rcsim.solve_seconds` histograms). Empty-but-present when no
    /// simulation ran.
    fn push_solver_section(&self, out: &mut String) {
        let counter = |name: &str| {
            self.metrics
                .counters
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        out.push_str(",\"solver\":{\"backends\":[");
        let mut first = true;
        for (key, count) in &self.metrics.counters {
            if key.name != "rcsim.solver.nets" {
                continue;
            }
            let Some(kind) = key.label.as_deref() else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"kind\":");
            json::push_string(out, kind);
            out.push_str(",\"nets\":");
            let _ = std::fmt::Write::write_fmt(out, format_args!("{count}"));
            out.push('}');
        }
        out.push_str("],\"sparse_nnz\":");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", counter("rcsim.sparse.nnz")));
        out.push_str(",\"sparse_fill\":");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", counter("rcsim.sparse.fill")));
        for (field, name) in [
            ("factor", "rcsim.factor_seconds"),
            ("solve", "rcsim.solve_seconds"),
        ] {
            let hist = self
                .metrics
                .histograms
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, h)| h);
            let _ = std::fmt::Write::write_fmt(out, format_args!(",\"{field}\":{{\"count\":"));
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!("{}", hist.map(|h| h.count()).unwrap_or(0)),
            );
            out.push_str(",\"total_s\":");
            json::push_f64(out, hist.map(|h| h.sum()).unwrap_or(0.0));
            out.push_str(",\"p95_s\":");
            json::push_f64(out, hist.map(|h| h.quantile(0.95)).unwrap_or(0.0));
            out.push('}');
        }
        out.push('}');
    }

    /// Emits a derived `"infer"` section summarizing the tape-free
    /// inference engine: resident arena bytes (`infer.arena_bytes`
    /// gauge), packed batch shape (`infer.batch_graphs` /
    /// `infer.batch_nodes` histograms), the packed-vs-unpacked forward
    /// time split (`infer.packed_gemm_seconds` /
    /// `infer.unpacked_seconds`) and the `infer.fallbacks` counter, so
    /// one glance at a run report answers "did serving actually run the
    /// packed path, and how big were its batches". Empty-but-present
    /// when no inference ran.
    fn push_infer_section(&self, out: &mut String) {
        let gauge = |name: &str| {
            self.metrics
                .gauges
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        let counter = |name: &str| {
            self.metrics
                .counters
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        out.push_str(",\"infer\":{\"arena_bytes\":");
        json::push_f64(out, gauge("infer.arena_bytes"));
        out.push_str(",\"fallbacks\":");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", counter("infer.fallbacks")));
        for (field, name) in [
            ("batch_graphs", "infer.batch_graphs"),
            ("batch_nodes", "infer.batch_nodes"),
            ("packed", "infer.packed_gemm_seconds"),
            ("unpacked", "infer.unpacked_seconds"),
        ] {
            let hist = self
                .metrics
                .histograms
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, h)| h);
            let _ = std::fmt::Write::write_fmt(out, format_args!(",\"{field}\":{{\"count\":"));
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!("{}", hist.map(|h| h.count()).unwrap_or(0)),
            );
            out.push_str(",\"sum\":");
            json::push_f64(out, hist.map(|h| h.sum()).unwrap_or(0.0));
            out.push_str(",\"mean\":");
            json::push_f64(out, hist.map(|h| h.mean()).unwrap_or(0.0));
            out.push_str(",\"p95\":");
            json::push_f64(out, hist.map(|h| h.quantile(0.95)).unwrap_or(0.0));
            out.push('}');
        }
        out.push('}');
    }

    /// Emits a derived `"train"` section summarizing the packed
    /// training engine: the `train.arena_bytes` gauge, the
    /// `train.fallbacks` counter (graphs re-run on the per-graph tape),
    /// pack-size distributions (`train.batch_graphs` /
    /// `train.batch_nodes`) and the forward/backward GEMM time split
    /// (`train.forward_seconds` / `train.backward_seconds`), so one
    /// glance at a run report answers "did training actually run the
    /// packed backward, and how big were its packs". Empty-but-present
    /// when no training ran.
    fn push_train_section(&self, out: &mut String) {
        let gauge = |name: &str| {
            self.metrics
                .gauges
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        let counter = |name: &str| {
            self.metrics
                .counters
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        out.push_str(",\"train\":{\"arena_bytes\":");
        json::push_f64(out, gauge("train.arena_bytes"));
        out.push_str(",\"fallbacks\":");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", counter("train.fallbacks")));
        for (field, name) in [
            ("batch_graphs", "train.batch_graphs"),
            ("batch_nodes", "train.batch_nodes"),
            ("forward", "train.forward_seconds"),
            ("backward", "train.backward_seconds"),
        ] {
            let hist = self
                .metrics
                .histograms
                .iter()
                .find(|(k, _)| k.name == name && k.label.is_none())
                .map(|(_, h)| h);
            let _ = std::fmt::Write::write_fmt(out, format_args!(",\"{field}\":{{\"count\":"));
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!("{}", hist.map(|h| h.count()).unwrap_or(0)),
            );
            out.push_str(",\"sum\":");
            json::push_f64(out, hist.map(|h| h.sum()).unwrap_or(0.0));
            out.push_str(",\"mean\":");
            json::push_f64(out, hist.map(|h| h.mean()).unwrap_or(0.0));
            out.push_str(",\"p95\":");
            json::push_f64(out, hist.map(|h| h.quantile(0.95)).unwrap_or(0.0));
            out.push('}');
        }
        out.push('}');
    }

    /// Writes the JSON report to `path` (plus a trailing newline).
    pub fn write_file(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }
}

fn push_key(out: &mut String, name: &str, label: Option<&str>) {
    out.push_str("{\"name\":");
    json::push_string(out, name);
    if let Some(label) = label {
        out.push_str(",\"label\":");
        json::push_string(out, label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal structural JSON validator: object/array/string/number
    /// nesting balance with strings skipped. Enough to catch emitter
    /// bugs (unbalanced braces, stray commas inside strings are legal).
    fn assert_balanced_json(s: &str) {
        let mut depth = 0i64;
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                '"' => loop {
                    match chars.next() {
                        Some('\\') => {
                            chars.next();
                        }
                        Some('"') => break,
                        Some(_) => {}
                        None => panic!("unterminated string in {s}"),
                    }
                },
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
    }

    #[test]
    fn report_contains_schema_spans_and_metrics() {
        crate::metrics::counter("obs.test.report_counter").add(7);
        crate::metrics::gauge_labeled("obs.test.report_gauge", Some("tag\"x")).set(1.5);
        let h = crate::metrics::histogram_with("obs.test.report_hist", None, || vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        {
            let _root = crate::span::span("report_root");
            let _child = crate::span::span("child");
        }

        let report = RunReport::capture();
        let json = report.to_json();
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"schema\":\"obs.run_report.v1\""));
        assert!(json.contains("\"path\":\"report_root.child\""));
        assert!(json.contains("\"name\":\"obs.test.report_counter\",\"value\":7"));
        // Label with a quote survives escaping.
        assert!(json.contains(r#""label":"tag\"x""#));
        assert!(json.contains("\"name\":\"obs.test.report_hist\",\"count\":2"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn report_has_derived_par_section() {
        crate::metrics::gauge("par.threads").set(4.0);
        crate::metrics::counter_labeled("par.tasks", Some("test.kind")).add(12);
        let h = crate::metrics::histogram_with("par.task_seconds", Some("test.kind"), || {
            vec![0.001, 0.01, 0.1]
        });
        h.observe(0.005);
        let json = RunReport::capture().to_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"par\":{\"threads\":4"));
        assert!(json.contains("\"kind\":\"test.kind\",\"tasks\":12"));
        assert!(json.contains("\"total_s\":"));
    }

    #[test]
    fn report_has_derived_solver_section() {
        crate::metrics::counter_labeled("rcsim.solver.nets", Some("sparse_ldl")).add(3);
        crate::metrics::counter("rcsim.sparse.nnz").add(42);
        crate::metrics::counter("rcsim.sparse.fill").add(2);
        let h = crate::metrics::histogram("rcsim.factor_seconds");
        h.observe(0.002);
        let json = RunReport::capture().to_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"solver\":{\"backends\":["));
        assert!(json.contains("\"kind\":\"sparse_ldl\",\"nets\":3"));
        assert!(json.contains("\"sparse_nnz\":42"));
        assert!(json.contains("\"sparse_fill\":2"));
        assert!(json.contains("\"factor\":{\"count\":1"));
        assert!(json.contains("\"solve\":{\"count\":0"));
    }

    #[test]
    fn report_has_derived_infer_section() {
        crate::metrics::gauge("infer.arena_bytes").set(4096.0);
        crate::metrics::counter("infer.fallbacks").add(2);
        let h = crate::metrics::histogram_with("infer.batch_graphs", None, || vec![1.0, 8.0, 64.0]);
        h.observe(4.0);
        h.observe(16.0);
        let t = crate::metrics::histogram("infer.packed_gemm_seconds");
        t.observe(0.003);
        let json = RunReport::capture().to_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"infer\":{\"arena_bytes\":4096"));
        assert!(json.contains("\"fallbacks\":2"));
        assert!(json.contains("\"batch_graphs\":{\"count\":2"));
        assert!(json.contains("\"packed\":{\"count\":1"));
        assert!(json.contains("\"unpacked\":{\"count\":0"));
    }

    #[test]
    fn report_has_derived_train_section() {
        crate::metrics::gauge("train.arena_bytes").set(8192.0);
        crate::metrics::counter("train.fallbacks").add(3);
        let h = crate::metrics::histogram_with("train.batch_graphs", None, || vec![1.0, 8.0, 64.0]);
        h.observe(8.0);
        h.observe(2.0);
        let t = crate::metrics::histogram("train.backward_seconds");
        t.observe(0.004);
        let json = RunReport::capture().to_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"train\":{\"arena_bytes\":8192"));
        assert!(json.contains("\"fallbacks\":3"));
        assert!(json.contains("\"batch_graphs\":{\"count\":2"));
        assert!(json.contains("\"backward\":{\"count\":1"));
        assert!(json.contains("\"forward\":{\"count\":0"));
    }

    #[test]
    fn write_file_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir.join("obs_report_test.json");
        let path = path.to_str().unwrap();
        let report = RunReport::capture();
        report.write_file(path).unwrap();
        let on_disk = std::fs::read_to_string(path).unwrap();
        assert_eq!(on_disk.trim_end(), report.to_json());
        let _ = std::fs::remove_file(path);
    }
}
