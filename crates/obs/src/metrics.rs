//! Global metrics registry: counters, gauges and fixed-bucket
//! histograms, addressed by static name plus optional label.
//!
//! Handle types ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics: look a handle up once outside a hot loop, then
//! update it lock-free. Names follow the `crate.module.op` convention
//! (see the Observability section of DESIGN.md).

use crate::trace::TraceId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Registry key: metric name plus optional label value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Metric name, `crate.module.op`.
    pub name: String,
    /// Optional label (e.g. a design or model name).
    pub label: Option<String>,
}

impl Key {
    fn new(name: &str, label: Option<&str>) -> Self {
        Key {
            name: name.to_string(),
            label: label.map(str::to_string),
        }
    }
}

/// Monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value-wins gauge (an `f64` stored as atomic bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A sample observation annotated with the trace it came from —
/// rendered on the Prometheus `+Inf` bucket line (OpenMetrics style) so
/// a p99+ latency spike links straight to its `/v1/traces` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// Trace id of the request that produced it.
    pub trace_id: TraceId,
    /// Milliseconds since the Unix epoch when it was observed.
    pub unix_ms: u64,
}

/// Fixed-bucket histogram with lock-free observation.
///
/// `bounds` are the ascending bucket upper edges; an observation lands
/// in the first bucket whose bound is `>= v`, or the overflow bucket.
#[derive(Debug)]
pub struct HistogramInner {
    bounds: Box<[f64]>,
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    exemplar: Mutex<Option<Exemplar>>,
}

/// Shared handle to a registered histogram.
pub type Histogram = Arc<HistogramInner>;

impl HistogramInner {
    fn new(bounds: Vec<f64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let n = bounds.len() + 1; // + overflow bucket
        HistogramInner {
            bounds: bounds.into_boxed_slice(),
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplar: Mutex::new(None),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loops for the f64 aggregates.
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Records one observation, attaching `trace` as an exemplar when
    /// the observation is tail-worthy: the exemplar slot is empty, or
    /// `v` reaches the current p99 estimate. The plain [`observe`]
    /// fast path is untouched — exemplar upkeep costs one quantile
    /// scan plus a short mutex hold, only on traced observations.
    ///
    /// [`observe`]: HistogramInner::observe
    pub fn observe_traced(&self, v: f64, trace: Option<TraceId>) {
        self.observe(v);
        let Some(trace_id) = trace else { return };
        if !v.is_finite() {
            return;
        }
        let mut slot = self.exemplar.lock().expect("exemplar slot poisoned");
        let p99 = self.quantile(0.99);
        if slot.is_none() || !p99.is_finite() || v >= p99 {
            *slot = Some(Exemplar {
                value: v,
                trace_id,
                unix_ms: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            });
        }
    }

    /// The most recent tail exemplar, if any traced observation landed.
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar.lock().expect("exemplar slot poisoned").clone()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            f64::NAN
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            f64::NAN
        }
    }

    /// Mean observation (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Quantile estimate by linear interpolation inside the target
    /// bucket, clamped to the observed min/max. `q` in `[0, 1]`;
    /// returns `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if (next as f64) >= target {
                // Interpolate within bucket i between its edges.
                let lo = if i == 0 {
                    self.min()
                } else {
                    self.bounds[i - 1].max(self.min())
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max())
                } else {
                    self.max()
                };
                let (lo, hi) = (lo.min(hi), hi.max(lo));
                let frac = ((target - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            cumulative = next;
        }
        self.max()
    }

    /// Per-bucket `(upper_bound, count)` rows; the overflow bucket
    /// reports `f64::INFINITY` as its bound.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }
}

/// Ascending exponential bucket bounds: `start * factor^k`, `count`
/// edges. The default timing histograms use
/// `exponential_bounds(1e-6, 4.0, 16)` — 1 µs up to ~4.3 s.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0, "bounds must ascend");
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b *= factor;
    }
    v
}

/// Bucket bounds for duration histograms: factor-2 exponential from
/// 1 µs to ~33.6 s (26 edges). Fine enough that sub-millisecond stage
/// timings (queue_wait, parse) resolve distinct percentiles instead of
/// saturating one coarse bucket.
pub fn duration_bounds() -> Vec<f64> {
    exponential_bounds(1e-6, 2.0, 26)
}

fn default_bounds_for(name: &str) -> Vec<f64> {
    if name.ends_with("_seconds") {
        duration_bounds()
    } else {
        exponential_bounds(1e-6, 4.0, 16)
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<Key, Counter>>,
    gauges: Mutex<HashMap<Key, Gauge>>,
    histograms: Mutex<HashMap<Key, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name` (creating it on first use).
pub fn counter(name: &str) -> Counter {
    counter_labeled(name, None)
}

/// The counter registered under `name` + `label`.
pub fn counter_labeled(name: &str, label: Option<&str>) -> Counter {
    registry()
        .counters
        .lock()
        .expect("counter registry poisoned")
        .entry(Key::new(name, label))
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// The gauge registered under `name` (creating it on first use).
pub fn gauge(name: &str) -> Gauge {
    gauge_labeled(name, None)
}

/// The gauge registered under `name` + `label`.
pub fn gauge_labeled(name: &str, label: Option<&str>) -> Gauge {
    registry()
        .gauges
        .lock()
        .expect("gauge registry poisoned")
        .entry(Key::new(name, label))
        .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(f64::NAN.to_bits()))))
        .clone()
}

/// The histogram registered under `name`, with default bounds chosen
/// by name when first created: `*_seconds` histograms get the fine
/// factor-2 [`duration_bounds`] (1 µs .. ~33.6 s), everything else the
/// coarser factor-4 exponential (1 µs .. ~4.3 s).
pub fn histogram(name: &str) -> Histogram {
    histogram_labeled(name, None)
}

/// The histogram under `name` + `label`, with the same name-aware
/// default bounds as [`histogram`].
pub fn histogram_labeled(name: &str, label: Option<&str>) -> Histogram {
    histogram_with(name, label, || default_bounds_for(name))
}

/// The histogram under `name` + `label`; `bounds` supplies the bucket
/// edges if this call creates it (ignored when it already exists).
pub fn histogram_with(
    name: &str,
    label: Option<&str>,
    bounds: impl FnOnce() -> Vec<f64>,
) -> Histogram {
    registry()
        .histograms
        .lock()
        .expect("histogram registry poisoned")
        .entry(Key::new(name, label))
        .or_insert_with(|| Arc::new(HistogramInner::new(bounds())))
        .clone()
}

/// A point-in-time copy of every registered metric, sorted by key.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Counter rows.
    pub counters: Vec<(Key, u64)>,
    /// Gauge rows.
    pub gauges: Vec<(Key, f64)>,
    /// Histogram rows (handles; cheap clones).
    pub histograms: Vec<(Key, Histogram)>,
}

/// Snapshots the whole registry.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters: Vec<(Key, u64)> = reg
        .counters
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(k, c)| (k.clone(), c.get()))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let mut gauges: Vec<(Key, f64)> = reg
        .gauges
        .lock()
        .expect("gauge registry poisoned")
        .iter()
        .map(|(k, g)| (k.clone(), g.get()))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<(Key, Histogram)> = reg
        .histograms
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|(k, h)| (k.clone(), h.clone()))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Clears the registry (test isolation).
pub fn reset() {
    let reg = registry();
    reg.counters.lock().expect("poisoned").clear();
    reg.gauges.lock().expect("poisoned").clear();
    reg.histograms.lock().expect("poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_and_concurrent() {
        let name = "obs.test.concurrent_counter";
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let c = counter(name);
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter(name).get(), 80_000);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let a = counter_labeled("obs.test.labeled", Some("a"));
        let b = counter_labeled("obs.test.labeled", Some("b"));
        a.add(3);
        b.add(5);
        assert_eq!(counter_labeled("obs.test.labeled", Some("a")).get(), 3);
        assert_eq!(counter_labeled("obs.test.labeled", Some("b")).get(), 5);
    }

    #[test]
    fn gauges_hold_last_value() {
        let g = gauge("obs.test.gauge");
        assert!(g.get().is_nan());
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(gauge("obs.test.gauge").get(), -1.25);
    }

    #[test]
    fn histogram_bucket_and_quantile_math() {
        let h = histogram_with("obs.test.hist_quant", None, || {
            vec![10.0, 20.0, 30.0, 40.0]
        });
        for v in 1..=100 {
            h.observe(v as f64 * 0.4); // 0.4 .. 40.0 uniformly
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 20.2).abs() < 1e-9);
        assert_eq!(h.min(), 0.4);
        assert_eq!(h.max(), 40.0);
        // Uniform 0.4..40: p50 ~ 20, p95 ~ 38, p99 ~ 39.6; bucket
        // interpolation is exact to within one bucket width.
        assert!((h.quantile(0.5) - 20.0).abs() <= 2.0, "{}", h.quantile(0.5));
        assert!((h.quantile(0.95) - 38.0).abs() <= 2.0, "{}", h.quantile(0.95));
        assert!((h.quantile(0.99) - 39.6).abs() <= 2.0, "{}", h.quantile(0.99));
        // Buckets: 25 observations each in (..10], (10..20], (20..30], (30..40].
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 5);
        for (_, c) in &buckets[..4] {
            assert_eq!(*c, 25);
        }
        assert_eq!(buckets[4], (f64::INFINITY, 0));
    }

    #[test]
    fn histogram_overflow_and_extremes() {
        let h = histogram_with("obs.test.hist_overflow", None, || vec![1.0]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(f64::NAN); // dropped
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets()[1], (f64::INFINITY, 1));
        // p100 is the max; p0 the min.
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 0.5);
        let empty = histogram_with("obs.test.hist_empty", None, || vec![1.0]);
        assert!(empty.quantile(0.5).is_nan());
        assert!(empty.mean().is_nan());
    }

    #[test]
    fn seconds_histograms_get_fine_duration_bounds() {
        let h = histogram("obs.test.duration_seconds");
        let bounds: Vec<f64> = h.buckets().iter().map(|(b, _)| *b).collect();
        // 26 finite factor-2 edges + overflow.
        assert_eq!(bounds.len(), 27);
        assert!((bounds[0] - 1e-6).abs() < 1e-18);
        assert!((bounds[1] / bounds[0] - 2.0).abs() < 1e-9);
        let coarse = histogram("obs.test.duration_other");
        assert_eq!(coarse.buckets().len(), 17);
    }

    #[test]
    fn exemplar_tracks_tail_observations() {
        let h = histogram_with("obs.test.hist_exemplar", None, || {
            exponential_bounds(1e-3, 2.0, 10)
        });
        assert_eq!(h.exemplar(), None);
        h.observe(0.5); // untraced: never creates an exemplar
        assert_eq!(h.exemplar(), None);
        let slow = TraceId(7);
        let fast = TraceId(9);
        h.observe_traced(0.010, Some(slow));
        let first = h.exemplar().expect("first traced observation sticks");
        assert_eq!(first.trace_id, slow);
        assert_eq!(first.value, 0.010);
        // A small observation must not displace a tail exemplar...
        for _ in 0..100 {
            h.observe(0.5);
        }
        h.observe_traced(0.001, Some(fast));
        assert_eq!(h.exemplar().unwrap().trace_id, slow);
        // ...but a p99+ one does.
        h.observe_traced(0.9, Some(fast));
        let tail = h.exemplar().unwrap();
        assert_eq!(tail.trace_id, fast);
        assert_eq!(tail.value, 0.9);
    }

    #[test]
    fn exponential_bounds_ascend() {
        let b = exponential_bounds(1e-6, 4.0, 16);
        assert_eq!(b.len(), 16);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b[0] - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn concurrent_histogram_observations() {
        let h = histogram_with("obs.test.hist_concurrent", None, || {
            exponential_bounds(1.0, 2.0, 8)
        });
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 % 97.0);
                    }
                })
            })
            .collect();
        for hnd in handles {
            hnd.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        let total: u64 = h.buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4000);
    }
}
