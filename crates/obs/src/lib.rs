//! Zero-dependency observability for the wire-timing workspace.
//!
//! Four pieces, all std-only (the build environment is offline):
//!
//! * **Spans** — RAII wall-clock timers with per-thread nesting.
//!   [`span("epoch")`](span) inside a `train` span aggregates under the
//!   dotted path `train.epoch`, tracking count, total and *self* time.
//! * **Metrics** — a global registry of [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s (p50/p95/p99 readout), addressed by
//!   `crate.module.op` names plus an optional label.
//! * **Events** — leveled structured logging via the [`event!`] macro,
//!   filtered by `OBS_LEVEL` (off/error/warn/info/debug/trace; default
//!   warn) and fanned out to pluggable [`Sink`]s. The disabled path is
//!   one relaxed atomic load: no locks, no allocation.
//! * **Reports** — [`RunReport::capture()`] snapshots the span tree and
//!   metrics registry into a single JSON document; experiment binaries
//!   expose it via `--obs-json <path>`.
//! * **Traces** — request-scoped [`TraceContext`]s with an ambient
//!   per-thread scope ([`trace::scope`]), a lock-light ring of completed
//!   [`TraceRecord`]s, histogram exemplars carrying trace ids, and a
//!   Prometheus text renderer ([`prometheus::render_current`]).
//!
//! ```
//! let _run = obs::span("example");
//! obs::counter("obs.doc.items").add(3);
//! obs::event!(obs::Level::Info, "obs.doc", "processed", items = 3usize);
//! let json = obs::RunReport::capture().to_json();
//! assert!(json.contains("obs.doc.items"));
//! ```

pub mod event;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod report;
pub mod span;
pub mod trace;

pub use event::{
    add_sink, emit, enabled, flush, level, set_level, set_sinks, Event, JsonlSink, Level, Sink,
    StderrSink, Value,
};
pub use metrics::{
    counter, counter_labeled, duration_bounds, exponential_bounds, gauge, gauge_labeled, histogram,
    histogram_labeled, histogram_with, Counter, Exemplar, Gauge, Histogram, HistogramInner, Key,
    MetricsSnapshot,
};
pub use report::RunReport;
pub use span::{span, with_span, Span, SpanEntry, SpanStats};
pub use trace::{SpanId, Stage, TraceContext, TraceId, TraceRecord, TraceRing};

/// Clears all global observability state: spans, metrics, the trace
/// ring. Events keep their sinks and level. Intended for test
/// isolation.
pub fn reset() {
    span::reset();
    metrics::reset();
    trace::reset();
}
