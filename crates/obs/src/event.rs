//! Leveled structured events with pluggable sinks.
//!
//! The fast path is a single relaxed atomic load: when the event's level
//! is filtered out (e.g. `OBS_LEVEL=off`), [`emit`] returns before
//! touching any lock, allocation or sink. Sinks receive every event that
//! passes the global filter; the built-in [`StderrSink`] renders a
//! human-readable line, [`JsonlSink`] appends one JSON object per line.

use crate::json;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity. Ordered so that a smaller numeric value is more
/// severe; the global filter keeps events with `level <= filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Filter value only: no event passes.
    Off = 0,
    /// Unrecoverable or correctness-relevant problems.
    Error = 1,
    /// Suspicious conditions (rejected inputs, fallbacks taken).
    Warn = 2,
    /// High-level progress (per-run, per-stage).
    Info = 3,
    /// Per-iteration detail (per-epoch, per-net).
    Debug = 4,
    /// Everything, including span exits.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as accepted by `OBS_LEVEL`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses an `OBS_LEVEL` value; unknown strings return `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text.
    Str(String),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => json::push_string(out, s),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => json::push_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::Str(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A structured event as seen by sinks.
#[derive(Debug)]
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// Dotted origin, `crate.module` by convention.
    pub target: &'a str,
    /// Human-readable message.
    pub message: &'a str,
    /// Key-value payload.
    pub fields: &'a [(&'a str, Value)],
    /// Milliseconds since the Unix epoch at emission.
    pub ts_unix_ms: u64,
}

/// An event destination.
pub trait Sink: Send + Sync {
    /// Receives one event that passed the global level filter.
    fn emit(&self, event: &Event<'_>);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Human-readable `[level target] message k=v ...` lines on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = format!(
            "[{:<5} {}] {}",
            event.level, event.target, event.message
        );
        for (k, v) in event.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        eprintln!("{line}");
    }
}

/// One JSON object per event, appended to a file.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` for event output.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Renders one event as a single JSON line (without the newline).
    pub fn render(event: &Event<'_>) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"ts_unix_ms\":");
        s.push_str(&event.ts_unix_ms.to_string());
        s.push_str(",\"level\":");
        json::push_string(&mut s, event.level.as_str());
        s.push_str(",\"target\":");
        json::push_string(&mut s, event.target);
        s.push_str(",\"message\":");
        json::push_string(&mut s, event.message);
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_string(&mut s, k);
            s.push(':');
            v.push_json(&mut s);
        }
        s.push_str("}}");
        s
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        let line = Self::render(event);
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .is_err()
        {
            // The event is gone (disk full, closed fd, ...); account
            // for it instead of discarding silently.
            crate::metrics::counter("obs.events.dropped").inc();
        }
    }

    fn flush(&self) {
        if self
            .out
            .lock()
            .expect("jsonl sink poisoned")
            .flush()
            .is_err()
        {
            crate::metrics::counter("obs.events.dropped").inc();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

// The level filter: a plain atomic so the disabled path never locks.
// `UNSET` marks "not yet initialized from OBS_LEVEL".
const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);
/// Default filter when `OBS_LEVEL` is absent: warnings and errors only,
/// so tests and table binaries stay quiet unless something is wrong.
const DEFAULT_LEVEL: Level = Level::Warn;

#[cold]
fn init_level_from_env() -> u8 {
    let lvl = std::env::var("OBS_LEVEL")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(DEFAULT_LEVEL);
    // Racing initializers compute the same value; last store wins.
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl as u8
}

fn current_level() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == UNSET {
        init_level_from_env()
    } else {
        v
    }
}

/// Whether events at `level` currently pass the filter. A single relaxed
/// atomic load once initialized — safe to call on hot paths.
#[inline]
pub fn enabled(level: Level) -> bool {
    level != Level::Off && (level as u8) <= current_level()
}

/// Overrides the filter programmatically (wins over `OBS_LEVEL`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current filter level.
pub fn level() -> Level {
    match current_level() {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    static SINKS: OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(vec![Arc::new(StderrSink)]))
}

/// Registers an additional sink (alongside the default stderr sink).
pub fn add_sink(sink: Arc<dyn Sink>) {
    sinks().write().expect("sink registry poisoned").push(sink);
}

/// Replaces all sinks (pass an empty slice to drop stderr output too).
pub fn set_sinks(new: Vec<Arc<dyn Sink>>) {
    *sinks().write().expect("sink registry poisoned") = new;
}

/// Flushes every registered sink.
pub fn flush() {
    for s in sinks().read().expect("sink registry poisoned").iter() {
        s.flush();
    }
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Emits one structured event to every sink, if `level` passes the
/// filter. The disabled path takes no locks.
pub fn emit(level: Level, target: &str, message: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let event = Event {
        level,
        target,
        message,
        fields,
        ts_unix_ms: now_unix_ms(),
    };
    for s in sinks().read().expect("sink registry poisoned").iter() {
        s.emit(&event);
    }
}

/// Emits a leveled structured event: `event!(Level::Warn, "bench.harness",
/// "bad flag", flag = "--epochs", value = raw)`. Field values go through
/// `Value::from`. The level check happens before any field is evaluated.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::emit(
                $level,
                $target,
                $msg,
                &[$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // Tests in this module mutate process-global state (level, sinks);
    // serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[derive(Default)]
    struct CountingSink {
        n: AtomicUsize,
    }

    impl Sink for CountingSink {
        fn emit(&self, _e: &Event<'_>) {
            self.n.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn level_parsing_round_trips() {
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn off_silences_and_filter_orders() {
        let _g = lock();
        let sink = Arc::new(CountingSink::default());
        set_sinks(vec![sink.clone()]);
        set_level(Level::Off);
        emit(Level::Error, "t", "m", &[]);
        assert_eq!(sink.n.load(Ordering::Relaxed), 0);
        set_level(Level::Warn);
        emit(Level::Error, "t", "m", &[]);
        emit(Level::Warn, "t", "m", &[]);
        emit(Level::Info, "t", "m", &[]);
        assert_eq!(sink.n.load(Ordering::Relaxed), 2);
        set_level(Level::Trace);
        emit(Level::Trace, "t", "m", &[]);
        assert_eq!(sink.n.load(Ordering::Relaxed), 3);
        set_sinks(vec![Arc::new(StderrSink)]);
        set_level(DEFAULT_LEVEL);
    }

    #[test]
    fn event_macro_builds_fields() {
        let _g = lock();
        struct Capture(Mutex<Vec<String>>);
        impl Sink for Capture {
            fn emit(&self, e: &Event<'_>) {
                self.0.lock().unwrap().push(JsonlSink::render(e));
            }
        }
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        set_sinks(vec![cap.clone()]);
        set_level(Level::Info);
        crate::event!(
            Level::Info,
            "obs.test",
            "hello",
            count = 3usize,
            ratio = 0.5f64,
            name = "x\"y",
        );
        let lines = cap.0.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.contains("\"target\":\"obs.test\""), "{line}");
        assert!(line.contains("\"count\":3"), "{line}");
        assert!(line.contains("\"ratio\":0.5"), "{line}");
        assert!(line.contains("\"name\":\"x\\\"y\""), "{line}");
        drop(lines);
        set_sinks(vec![Arc::new(StderrSink)]);
        set_level(DEFAULT_LEVEL);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _g = lock();
        let dir = std::env::temp_dir().join("obs_test_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Event {
            level: Level::Warn,
            target: "a.b",
            message: "line1\nline2",
            fields: &[("k", Value::from("v"))],
            ts_unix_ms: 42,
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"ts_unix_ms\":42,\"level\":\"warn\",\"target\":\"a.b\",\
             \"message\":\"line1\\nline2\",\"fields\":{\"k\":\"v\"}}\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[cfg(unix)]
    fn jsonl_sink_counts_dropped_events_on_write_failure() {
        let _g = lock();
        // /dev/full accepts the open but fails every write with ENOSPC.
        let Ok(sink) = JsonlSink::create("/dev/full") else {
            return; // minimal container without /dev/full
        };
        let dropped = crate::metrics::counter("obs.events.dropped");
        let before = dropped.get();
        // A field larger than BufWriter's buffer forces the write
        // through to the failing fd inside emit itself.
        let big = "x".repeat(64 * 1024);
        sink.emit(&Event {
            level: Level::Error,
            target: "obs.test",
            message: "doomed",
            fields: &[("payload", Value::from(big))],
            ts_unix_ms: 1,
        });
        sink.flush();
        assert!(
            dropped.get() > before,
            "failed sink writes must increment obs.events.dropped"
        );
    }
}
