//! Prometheus text exposition of the metrics registry.
//!
//! [`render`] turns a [`MetricsSnapshot`] into the classic text format
//! (version 0.0.4): one `# TYPE` line per family, counters suffixed
//! `_total`, histograms expanded into cumulative `_bucket{le="..."}`
//! series plus `_sum`/`_count`. Dotted registry names (`serve.request.
//! seconds`) are mangled to legal Prometheus names (`serve_request_
//! seconds`), and the registry's single free-form label is mapped to a
//! meaningful label key per metric (e.g. `serve.stage_seconds` → the
//! `stage` label).
//!
//! Histogram exemplars ride on the `+Inf` bucket line in OpenMetrics
//! style — ` # {trace_id="..."} value timestamp` — so a p99 latency
//! spike on a Grafana panel links directly to its `/v1/traces` entry.
//! Strict Prometheus-0.0.4 scrapers that reject exemplar syntax can
//! strip trailing `#` comments; our own [`validate`] accepts them.
//!
//! [`validate`] is the other half: a structural checker used by the
//! check.sh smoke gate and the serve integration tests to guarantee the
//! endpoint emits well-formed exposition (legal names, one `# TYPE` per
//! family, no duplicate samples, parseable values).

use crate::metrics::{snapshot, Exemplar, Histogram, Key, MetricsSnapshot};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// The label key used for a metric's registry label, chosen by name so
/// the exposition is self-describing (`par.tasks{kind="..."}` rather
/// than a generic `label="..."`).
fn label_key(name: &str) -> &'static str {
    match name {
        "serve.stage_seconds" => "stage",
        "serve.http.requests" => "endpoint",
        "serve.http.responses" => "status",
        "par.tasks" | "par.task_seconds" => "kind",
        "rcsim.solver.nets" => "backend",
        "bench.experiment.wall_seconds" => "experiment",
        _ => "label",
    }
}

/// Mangles a dotted registry name into a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with `.` and every other illegal byte
/// mapped to `_`, and a leading digit guarded by an underscore.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn push_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Formats a sample value: finite values via Rust's shortest-round-trip
/// `{}`, non-finite as Prometheus' `+Inf` / `-Inf` / `NaN` tokens.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn push_series(out: &mut String, name: &str, label: Option<(&str, &str)>, extra: Option<(&str, &str)>) {
    out.push_str(name);
    if label.is_some() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in [label, extra].into_iter().flatten() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            push_label_value(out, v);
            out.push('"');
        }
        out.push('}');
    }
}

fn push_exemplar(out: &mut String, ex: &Exemplar) {
    out.push_str(" # {trace_id=\"");
    push_label_value(out, &ex.trace_id.to_hex());
    out.push_str("\"} ");
    out.push_str(&fmt_value(ex.value));
    out.push(' ');
    let _ = write!(out, "{:.3}", ex.unix_ms as f64 / 1e3);
}

fn push_histogram(out: &mut String, fam: &str, label: Option<(&str, &str)>, h: &Histogram) {
    let bucket_name = format!("{fam}_bucket");
    let mut cumulative = 0u64;
    let exemplar = h.exemplar();
    for (bound, count) in h.buckets() {
        cumulative += count;
        let le = if bound == f64::INFINITY {
            "+Inf".to_string()
        } else {
            fmt_value(bound)
        };
        push_series(out, &bucket_name, label, Some(("le", &le)));
        out.push(' ');
        out.push_str(&cumulative.to_string());
        if bound == f64::INFINITY {
            if let Some(ex) = &exemplar {
                push_exemplar(out, ex);
            }
        }
        out.push('\n');
    }
    push_series(out, &format!("{fam}_sum"), label, None);
    out.push(' ');
    // An empty histogram's sum is 0.0; guard NaN from min/max not sum.
    out.push_str(&fmt_value(h.sum()));
    out.push('\n');
    push_series(out, &format!("{fam}_count"), label, None);
    out.push(' ');
    out.push_str(&cumulative.to_string());
    out.push('\n');
}

fn label_pair(key: &Key) -> Option<(&'static str, &str)> {
    key.label
        .as_deref()
        .map(|v| (label_key(&key.name), v))
}

/// Renders `snap` in Prometheus text exposition format.
///
/// Counter families get a `_total` suffix; the snapshot is sorted by
/// key, so all series of one family are adjacent and each family's
/// `# TYPE` header is emitted exactly once.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut last_family = String::new();
    for (key, value) in &snap.counters {
        let fam = format!("{}_total", sanitize_name(&key.name));
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam.clone();
        }
        push_series(&mut out, &fam, label_pair(key), None);
        let _ = writeln!(out, " {value}");
    }
    last_family.clear();
    for (key, value) in &snap.gauges {
        let fam = sanitize_name(&key.name);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} gauge");
            last_family = fam.clone();
        }
        push_series(&mut out, &fam, label_pair(key), None);
        let _ = writeln!(out, " {}", fmt_value(*value));
    }
    last_family.clear();
    for (key, hist) in &snap.histograms {
        let fam = sanitize_name(&key.name);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} histogram");
            last_family = fam.clone();
        }
        push_histogram(&mut out, &fam, label_pair(key), hist);
    }
    out
}

/// Renders the live registry ([`render`] over [`snapshot`]).
pub fn render_current() -> String {
    render(&snapshot())
}

fn legal_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn legal_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok()
}

/// The family a sample belongs to given its declared type: histogram
/// samples must use the `_bucket`/`_sum`/`_count` suffixes.
fn sample_family<'a>(name: &'a str, types: &HashMap<String, String>) -> Option<&'a str> {
    if let Some(fam) = name
        .strip_suffix("_bucket")
        .or_else(|| name.strip_suffix("_sum"))
        .or_else(|| name.strip_suffix("_count"))
    {
        if types.get(fam).map(String::as_str) == Some("histogram") {
            return Some(fam);
        }
    }
    // OpenMetrics-style counters declare the family without the
    // `_total` sample suffix; accept both conventions.
    if let Some(fam) = name.strip_suffix("_total") {
        if types.get(fam).map(String::as_str) == Some("counter") {
            return Some(fam);
        }
    }
    if types.contains_key(name) {
        return Some(name);
    }
    None
}

/// Splits a sample line into (series-with-labels, value), tolerating an
/// OpenMetrics exemplar (` # {...} value ts`) after the value.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    // Labels may contain spaces inside quotes; find the closing brace
    // first when present.
    let series_end = if let Some(open) = line.find('{') {
        let mut in_quotes = false;
        let mut escaped = false;
        let mut end = None;
        for (i, c) in line[open..].char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_quotes = !in_quotes,
                '}' if !in_quotes => {
                    end = Some(open + i + 1);
                    break;
                }
                _ => {}
            }
        }
        end?
    } else {
        line.find(' ')?
    };
    let series = line[..series_end].trim();
    let rest = line[series_end..].trim_start();
    // Value runs to the next space or the exemplar comment.
    let value = rest
        .split(' ')
        .next()
        .filter(|v| !v.is_empty())?;
    Some((series, value))
}

/// Structurally validates Prometheus text exposition: legal metric
/// names, at most one `# TYPE` per family, samples attributable to a
/// declared family, no duplicate samples, parseable values. Returns a
/// description of the first problem found.
///
/// # Errors
///
/// Returns `Err(message)` naming the offending line.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut seen_samples: HashSet<String> = HashSet::new();
    // First pass: collect TYPE declarations (they must precede their
    // samples in our renderer, but accept any order to stay liberal).
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split_whitespace();
            let (Some(fam), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {}: malformed # TYPE line", lineno + 1));
            };
            if !legal_name(fam) {
                return Err(format!("line {}: illegal family name `{fam}`", lineno + 1));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {}: unknown type `{kind}`", lineno + 1));
            }
            if types.insert(fam.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {}: duplicate # TYPE for `{fam}`", lineno + 1));
            }
        }
    }
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = split_sample(line) else {
            return Err(format!("line {}: malformed sample", lineno + 1));
        };
        let name = series.split('{').next().unwrap_or(series);
        if !legal_name(name) {
            return Err(format!("line {}: illegal metric name `{name}`", lineno + 1));
        }
        if sample_family(name, &types).is_none() {
            return Err(format!(
                "line {}: sample `{name}` has no matching # TYPE family",
                lineno + 1
            ));
        }
        if !legal_value(value) {
            return Err(format!("line {}: bad value `{value}`", lineno + 1));
        }
        if !seen_samples.insert(series.to_string()) {
            return Err(format!("line {}: duplicate sample `{series}`", lineno + 1));
        }
    }
    if types.is_empty() {
        return Err("no # TYPE declarations found".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{
        counter_labeled, exponential_bounds, gauge, histogram_labeled, histogram_with,
    };
    use crate::trace::TraceId;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("serve.request.seconds"), "serve_request_seconds");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert!(legal_name(&sanitize_name("весы.metric")));
    }

    #[test]
    fn renders_and_validates_all_metric_kinds() {
        counter_labeled("prom.test.requests", Some("/v1/x")).add(3);
        counter_labeled("prom.test.requests", Some("/v1/y")).inc();
        gauge("prom.test.temperature").set(-1.5);
        gauge("prom.test.unset"); // NaN
        let h = histogram_with("prom.test.latency_seconds", None, || {
            exponential_bounds(1e-3, 10.0, 3)
        });
        h.observe(0.5);
        h.observe(5.0);
        let text = render_current();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("# TYPE prom_test_requests_total counter"), "{text}");
        assert!(text.contains("prom_test_requests_total{label=\"/v1/x\"} 3"), "{text}");
        assert!(text.contains("prom_test_temperature -1.5"), "{text}");
        assert!(text.contains("prom_test_unset NaN"), "{text}");
        assert!(text.contains("# TYPE prom_test_latency_seconds histogram"), "{text}");
        assert!(text.contains("prom_test_latency_seconds_bucket{le=\"0.001\"} 0"), "{text}");
        assert!(text.contains("prom_test_latency_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("prom_test_latency_seconds_sum 5.5"), "{text}");
        assert!(text.contains("prom_test_latency_seconds_count 2"), "{text}");
        // One TYPE header per family even with multiple labeled series.
        assert_eq!(text.matches("# TYPE prom_test_requests_total").count(), 1);
    }

    #[test]
    fn renders_exemplar_on_inf_bucket() {
        let h = histogram_labeled("prom.test.stage_seconds", Some("inference"));
        h.observe_traced(0.25, Some(TraceId(0xfeed)));
        let text = render_current();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("prom_test_stage_seconds_bucket") && l.contains("+Inf"))
            .expect("has +Inf bucket");
        assert!(
            inf_line.contains(&format!("# {{trace_id=\"{}\"}} 0.25", TraceId(0xfeed).to_hex())),
            "{inf_line}"
        );
        assert!(inf_line.contains("label=\"inference\""), "{inf_line}");
    }

    #[test]
    fn stage_seconds_uses_stage_label_key() {
        let h = histogram_labeled("serve.stage_seconds", Some("queue_wait"));
        h.observe(0.001);
        let text = render_current();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(
            text.contains("serve_stage_seconds_bucket{stage=\"queue_wait\""),
            "{text}"
        );
    }

    #[test]
    fn validate_rejects_malformed_exposition() {
        assert!(validate("").is_err());
        assert!(validate("# TYPE x counter\n# TYPE x counter\nx_total 1\n").is_err());
        assert!(validate("# TYPE x counter\n9bad 1\n").is_err());
        assert!(validate("# TYPE x counter\nx_total nope\n").is_err());
        assert!(validate("# TYPE x counter\nx_total 1\nx_total 1\n").is_err());
        assert!(validate("orphan 1\n").is_err());
        assert!(validate("# TYPE x bogus\n").is_err());
        let ok = "# TYPE a counter\na_total{k=\"v\"} 1\na_total{k=\"w\"} 2\n\
                  # TYPE b histogram\nb_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} 0.5 1.0\nb_sum 0.5\nb_count 1\n";
        validate(ok).unwrap();
    }
}
