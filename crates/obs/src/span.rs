//! RAII span timers with hierarchical nesting and thread-safe
//! aggregation.
//!
//! A span is entered with [`span`] and recorded when the guard drops.
//! Nesting is tracked per thread: entering `"epoch"` inside a `"train"`
//! span records under the dotted path `train.epoch`. For every path the
//! global registry aggregates call count, total wall time and *self*
//! time (total minus time spent in child spans), so a run report can
//! show where time actually goes rather than double-counting parents.
//!
//! Guards must drop in LIFO order (the natural scoping order); dropping
//! a parent before its children corrupts the accounting of the paths
//! involved, not of the process.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to child spans, nanoseconds.
    pub self_ns: u64,
}

/// One row of a span snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEntry {
    /// Dotted path, e.g. `train.epoch.forward`.
    pub path: String,
    /// Aggregates for that path.
    pub stats: SpanStats,
}

struct Frame {
    path: String,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn registry() -> &'static Mutex<HashMap<String, SpanStats>> {
    static SPANS: OnceLock<Mutex<HashMap<String, SpanStats>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A running span; records itself into the global registry on drop.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    start: Instant,
    // Spans are tied to the entering thread's stack.
    _not_send: PhantomData<*const ()>,
}

/// Enters a span named `name` nested under the thread's current span
/// (if any). `name` should be a short segment (`epoch`, `forward`);
/// nesting builds the dotted path.
pub fn span(name: &str) -> Span {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => {
                let mut p = String::with_capacity(parent.path.len() + 1 + name.len());
                p.push_str(&parent.path);
                p.push('.');
                p.push_str(name);
                p
            }
            None => name.to_string(),
        };
        stack.push(Frame { path, child_ns: 0 });
    });
    Span {
        start: Instant::now(),
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let popped = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop();
            if frame.is_some() {
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += elapsed;
                }
            }
            frame
        });
        let Some(frame) = popped else {
            // Guard dropped after its thread stack was cleared; nothing
            // sensible to record.
            return;
        };
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        let mut map = registry().lock().expect("span registry poisoned");
        let stats = map.entry(frame.path).or_default();
        stats.count += 1;
        stats.total_ns += elapsed;
        stats.self_ns += self_ns;
    }
}

/// Runs `f` inside a span named `name` and returns its result.
pub fn with_span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

/// A snapshot of every recorded span path, sorted by path.
pub fn snapshot() -> Vec<SpanEntry> {
    let map = registry().lock().expect("span registry poisoned");
    let mut rows: Vec<SpanEntry> = map
        .iter()
        .map(|(path, stats)| SpanEntry {
            path: path.clone(),
            stats: *stats,
        })
        .collect();
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    rows
}

/// Clears the global span registry (test isolation; not needed in
/// production, where a process emits one report).
pub fn reset() {
    registry().lock().expect("span registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats_for(rows: &[SpanEntry], path: &str) -> SpanStats {
        rows.iter()
            .find(|r| r.path == path)
            .unwrap_or_else(|| panic!("missing span path {path}"))
            .stats
    }

    #[test]
    fn nesting_builds_dotted_paths_and_self_time() {
        // Unique root name: tests in this binary share the registry.
        let root = "nest_root";
        {
            let _t = span(root);
            std::thread::sleep(Duration::from_millis(4));
            for _ in 0..2 {
                let _e = span("epoch");
                std::thread::sleep(Duration::from_millis(6));
                {
                    let _f = span("forward");
                    std::thread::sleep(Duration::from_millis(3));
                }
            }
        }
        let rows = snapshot();
        let t = stats_for(&rows, root);
        let e = stats_for(&rows, &format!("{root}.epoch"));
        let f = stats_for(&rows, &format!("{root}.epoch.forward"));
        assert_eq!(t.count, 1);
        assert_eq!(e.count, 2);
        assert_eq!(f.count, 2);
        // Parent total covers children.
        assert!(t.total_ns >= e.total_ns);
        assert!(e.total_ns >= f.total_ns);
        // Self time excludes children: the root slept ~4ms itself but
        // ~22ms total; its self time must be well under its total.
        assert!(t.self_ns < t.total_ns);
        assert!(t.self_ns >= Duration::from_millis(3).as_nanos() as u64);
        assert!(
            t.total_ns - t.self_ns >= Duration::from_millis(15).as_nanos() as u64,
            "child time must be attributed away from self: {t:?}"
        );
        // Leaf self time equals its total.
        assert_eq!(f.self_ns, f.total_ns);
    }

    #[test]
    fn sibling_threads_do_not_nest_into_each_other() {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span("thread_root");
                    let _c = span(&format!("worker{i}"));
                    std::thread::sleep(Duration::from_millis(2));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rows = snapshot();
        let roots = stats_for(&rows, "thread_root");
        assert_eq!(roots.count, 4);
        for i in 0..4 {
            assert_eq!(stats_for(&rows, &format!("thread_root.worker{i}")).count, 1);
        }
        // No cross-thread nesting: paths never contain two worker segments.
        assert!(rows
            .iter()
            .all(|r| r.path.matches("worker").count() <= 1));
    }

    #[test]
    fn with_span_passes_result_through() {
        let v = with_span("with_span_root", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(stats_for(&snapshot(), "with_span_root").count, 1);
    }
}
