//! Physics property tests: circuit-theory facts that must hold for the
//! golden simulator on arbitrary generated networks.

use netgen::nets::{NetConfig, NetGenerator};
use proptest::prelude::*;
use rcnet::{Ohms, Seconds};
use rcsim::{Edge, GoldenTimer, SiMode};

fn generated_net(seed: u64, nontree: bool) -> rcnet::RcNet {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 14,
        ..Default::default()
    };
    NetGenerator::new(seed, cfg).net(format!("phys{seed}"), nontree)
}

proptest! {
    // The transient simulator is the expensive engine; keep case counts low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delays_and_slews_are_positive_and_finite(seed in 0u64..5_000, nontree in any::<bool>()) {
        let net = generated_net(seed, nontree);
        let timer = GoldenTimer::new(0.8, Ohms(140.0)).with_steps(1500);
        let timing = timer
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .expect("simulation settles");
        prop_assert_eq!(timing.len(), net.paths().len());
        for t in &timing {
            prop_assert!(t.delay.value() >= 0.0 && t.delay.value().is_finite());
            prop_assert!(t.slew.value() > 0.0 && t.slew.value().is_finite());
            // Sub-nanosecond scale for these tiny nets.
            prop_assert!(t.delay.value() < 1e-9);
        }
    }

    #[test]
    fn weaker_drive_never_speeds_things_up(seed in 0u64..5_000) {
        let net = generated_net(seed, false);
        let slew = Seconds::from_ps(20.0);
        let strong = GoldenTimer::new(0.8, Ohms(80.0)).with_steps(1500)
            .time_net(&net, slew, SiMode::Off).expect("strong");
        let weak = GoldenTimer::new(0.8, Ohms(400.0)).with_steps(1500)
            .time_net(&net, slew, SiMode::Off).expect("weak");
        for (s, w) in strong.iter().zip(&weak) {
            // Wire delay is measured pin-to-pin; a weaker driver slows the
            // whole net but can only *increase* the sink slew.
            prop_assert!(w.slew.value() >= s.slew.value() - 1e-13);
        }
    }

    #[test]
    fn rise_and_fall_agree_on_linear_nets(seed in 0u64..5_000, nontree in any::<bool>()) {
        let net = generated_net(seed, nontree);
        let timer = GoldenTimer::new(0.8, Ohms(140.0)).with_steps(1500);
        let slew = Seconds::from_ps(20.0);
        let rise = timer.time_net_edge(&net, slew, SiMode::Off, Edge::Rise).expect("rise");
        let fall = timer.time_net_edge(&net, slew, SiMode::Off, Edge::Fall).expect("fall");
        for (r, f) in rise.iter().zip(&fall) {
            prop_assert!((r.delay.value() - f.delay.value()).abs() < 1e-13);
            prop_assert!((r.slew.value() - f.slew.value()).abs() < 1e-13);
        }
    }

    #[test]
    fn si_delta_delay_is_nonnegative(seed in 0u64..5_000) {
        let net = generated_net(seed, true);
        prop_assume!(!net.couplings().is_empty());
        let timer = GoldenTimer::new(0.8, Ohms(140.0)).with_steps(1500);
        let slew = Seconds::from_ps(20.0);
        let quiet = timer.time_net(&net, slew, SiMode::Off).expect("quiet");
        let noisy = timer
            .time_net(&net, slew, SiMode::WorstCase { aggressor_ramp: slew })
            .expect("noisy");
        for (q, n) in quiet.iter().zip(&noisy) {
            prop_assert!(n.delay.value() >= q.delay.value() - 1e-13);
        }
    }
}
