//! The sparse LDLᵀ production path against the dense LU oracle, on real
//! generated nets: factorization agreement on assembled iteration
//! matrices, and end-to-end golden-timing agreement including the
//! warm-restarted horizon-extension path.

use numeric::{LuFactor, Vector};
use proptest::prelude::*;
use rcnet::{Ohms, Seconds};
use rcsim::mna::MnaSystem;
use rcsim::{GoldenTimer, SiMode, SolverKind};

fn generated_net(seed: u64, nodes: usize, nontree: bool) -> rcnet::RcNet {
    let cfg = netgen::nets::NetConfig {
        nodes_min: nodes,
        nodes_max: nodes,
        ..Default::default()
    };
    let mut g = netgen::nets::NetGenerator::new(seed, cfg);
    g.net(format!("t{seed}_{nodes}"), nontree)
}

/// The trapezoidal iteration matrix `A = C/h + G/2` of an assembled net.
fn iteration_matrix(sys: &MnaSystem, h: f64) -> numeric::SparseMatrix {
    let mut a = sys.conductance.clone();
    for v in a.values_mut() {
        *v *= 0.5;
    }
    for i in 0..sys.dim() {
        let p = a.index_of(i, i).expect("assembly stamps the diagonal");
        a.values_mut()[p] += sys.cap_diag[i] / h;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse LDLᵀ must agree with the dense LU oracle on iteration
    /// matrices assembled from generated nets — trees and nets with
    /// loops and couplings alike.
    fn ldl_matches_lu_on_assembled_nets(
        seed in 0u64..100_000,
        nodes in 4usize..40,
        nontree_bit in 0u8..2,
    ) {
        let net = generated_net(seed, nodes, nontree_bit == 1);
        let sys = MnaSystem::new(&net, Ohms(120.0)).unwrap();
        let h = sys.tau_estimate(&net) / 500.0;
        let a = iteration_matrix(&sys, h);
        prop_assert!(a.is_symmetric(1e-9));
        let ldl = numeric::LdlFactor::new(&a).expect("SPD iteration matrix");
        let lu = LuFactor::new(&a.to_dense()).expect("dense oracle");
        let n = sys.dim();
        let rhs: Vector = (0..n).map(|i| ((i * 13 + seed as usize) % 7) as f64 - 3.0).collect();
        let x = ldl.solve(&rhs).unwrap();
        let x_ref = lu.solve(&rhs).unwrap();
        let scale = x_ref.max_abs().max(1.0);
        for i in 0..n {
            prop_assert!(
                (x[i] - x_ref[i]).abs() <= 1e-9 * scale,
                "component {} differs: sparse {} vs dense {}", i, x[i], x_ref[i]
            );
        }
    }
}

#[test]
fn golden_timings_agree_across_solvers() {
    // End to end: per-path slew/delay from the sparse path must match
    // the dense oracle within integration noise on trees, loops and
    // coupled (SI) nets.
    for (seed, nodes, nontree) in [(1u64, 8usize, false), (2, 20, true), (3, 33, true)] {
        let net = generated_net(seed, nodes, nontree);
        let si = if net.couplings().is_empty() {
            SiMode::Off
        } else {
            SiMode::WorstCase {
                aggressor_ramp: Seconds::from_ps(20.0),
            }
        };
        let sparse = GoldenTimer::default()
            .with_steps(1200)
            .time_net(&net, Seconds::from_ps(20.0), si)
            .unwrap();
        let dense = GoldenTimer::default()
            .with_steps(1200)
            .with_solver(SolverKind::DenseLu)
            .time_net(&net, Seconds::from_ps(20.0), si)
            .unwrap();
        assert_eq!(sparse.len(), dense.len());
        for (s, d) in sparse.iter().zip(&dense) {
            assert!(
                (s.delay.value() - d.delay.value()).abs() <= 1e-9,
                "net {} delay: sparse {:?} vs dense {:?}",
                net.name(),
                s.delay,
                d.delay
            );
            assert!(
                (s.slew.value() - d.slew.value()).abs() <= 1e-9,
                "net {} slew: sparse {:?} vs dense {:?}",
                net.name(),
                s.slew,
                d.slew
            );
        }
    }
}

#[test]
fn solvers_agree_through_warm_restarted_extension() {
    // A deliberately short initial horizon forces at least one
    // warm-restarted extension; both backends must take it and still
    // agree tightly (identical step size and step count on each path).
    let net = generated_net(7, 24, true);
    let before = obs::counter("rcsim.golden.horizon_extensions").get();
    let sparse = GoldenTimer::default()
        .with_steps(1500)
        .with_horizon_tau(0.5)
        .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
        .unwrap();
    let mid = obs::counter("rcsim.golden.horizon_extensions").get();
    assert!(
        mid > before,
        "a 0.5-tau horizon must trigger at least one extension"
    );
    let dense = GoldenTimer::default()
        .with_steps(1500)
        .with_horizon_tau(0.5)
        .with_solver(SolverKind::DenseLu)
        .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
        .unwrap();
    for (s, d) in sparse.iter().zip(&dense) {
        assert!(
            (s.delay.value() - d.delay.value()).abs() <= 1e-9,
            "delay: sparse {:?} vs dense {:?}",
            s.delay,
            d.delay
        );
        assert!(
            (s.slew.value() - d.slew.value()).abs() <= 1e-9,
            "slew: sparse {:?} vs dense {:?}",
            s.slew,
            d.slew
        );
    }
}
