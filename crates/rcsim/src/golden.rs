//! The golden timer front end: per-path wire slew/delay labels.

use crate::mna::MnaSystem;
use crate::si::Aggressor;
use crate::transient::{CaptureSet, RampInput, SimOptions, SolverKind, TransientSim};
use crate::SimError;
use rcnet::{NodeId, Ohms, RcNet, Seconds};

/// Signal transition direction at the victim driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Edge {
    /// 0 → vdd transition.
    #[default]
    Rise,
    /// vdd → 0 transition.
    Fall,
}

/// Crosstalk analysis mode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SiMode {
    /// Ignore coupling activity (aggressors quiet); coupling caps still
    /// load the victim.
    #[default]
    Off,
    /// Every coupling capacitor sees a worst-case opposite-switching
    /// aggressor with the given transition time, aligned with the victim.
    WorstCase {
        /// Aggressor full 0→100 % ramp time.
        aggressor_ramp: Seconds,
    },
}

/// Measured timing of one wire path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathTiming {
    /// The path's sink node.
    pub sink: NodeId,
    /// Wire delay: `t50(sink) - t50(driver pin)`.
    pub delay: Seconds,
    /// Wire slew: 10–90 % rise time at the sink.
    pub slew: Seconds,
}

/// Golden wire timer: simulates the net and measures every wire path.
///
/// Only the driver pin and the sinks are captured during integration,
/// and a net that has not settled by the end of the initial horizon is
/// *continued* from its last state with the existing factorization (warm
/// restart) rather than re-simulated from `t = 0`.
///
/// # Examples
///
/// ```
/// use rcnet::{Farads, Ohms, RcNetBuilder, Seconds};
/// use rcsim::{GoldenTimer, SiMode};
///
/// # fn main() -> Result<(), rcsim::SimError> {
/// # let mut b = RcNetBuilder::new("n");
/// # let s = b.source("d:Z", Farads(1e-15));
/// # let k = b.sink("l:A", Farads(20e-15));
/// # b.resistor(s, k, Ohms(200.0));
/// # let net = b.build().map_err(rcsim::SimError::from)?;
/// let timer = GoldenTimer::new(1.0, Ohms(120.0));
/// let timing = timer.time_net(&net, Seconds::from_ps(25.0), SiMode::Off)?;
/// assert!(timing[0].slew.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenTimer {
    vdd: f64,
    r_drive: Ohms,
    steps: usize,
    max_extensions: u32,
    solver: SolverKind,
    horizon_tau: f64,
}

impl Default for GoldenTimer {
    /// 1 V swing behind a 120 Ω driver with 4000-step integration.
    fn default() -> Self {
        GoldenTimer::new(1.0, Ohms(120.0))
    }
}

impl GoldenTimer {
    /// Creates a timer with the given supply swing and drive resistance.
    pub fn new(vdd: f64, r_drive: Ohms) -> Self {
        GoldenTimer {
            vdd,
            r_drive,
            steps: 4000,
            max_extensions: 5,
            solver: SolverKind::default(),
            horizon_tau: 15.0,
        }
    }

    /// Overrides the integration step count (trade accuracy for speed).
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Overrides the drive resistance.
    pub fn with_drive(mut self, r_drive: Ohms) -> Self {
        self.r_drive = r_drive;
        self
    }

    /// Selects the linear solver backend (sparse LDLᵀ by default; the
    /// dense LU oracle is for tests and benchmarks).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the initial horizon in units of the net's estimated
    /// dominant time constant (default 15.0). Smaller values make the
    /// warm-restart horizon extension kick in; mainly for tests.
    pub fn with_horizon_tau(mut self, taus: f64) -> Self {
        self.horizon_tau = taus;
        self
    }

    /// The supply swing.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The Thevenin drive resistance.
    pub fn r_drive(&self) -> Ohms {
        self.r_drive
    }

    /// The selected solver backend.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    /// Simulates `net` with a rising input of the given 10–90 % slew and
    /// measures the slew and delay of every wire path (in `net.paths()`
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSettled`] when the net does not reach its
    /// final value within the maximum extended horizon, and propagates
    /// numeric/parameter errors from the integrator.
    pub fn time_net(
        &self,
        net: &RcNet,
        input_slew: Seconds,
        si: SiMode,
    ) -> Result<Vec<PathTiming>, SimError> {
        self.time_net_edge(net, input_slew, si, Edge::Rise)
    }

    /// Like [`GoldenTimer::time_net`] for an explicit transition
    /// direction; worst-case aggressors switch opposite to the victim.
    ///
    /// # Errors
    ///
    /// See [`GoldenTimer::time_net`].
    pub fn time_net_edge(
        &self,
        net: &RcNet,
        input_slew: Seconds,
        si: SiMode,
        edge: Edge,
    ) -> Result<Vec<PathTiming>, SimError> {
        let positive = input_slew.value() > 0.0;
        if !positive {
            return Err(SimError::BadParameter(format!(
                "input slew must be positive, got {input_slew}"
            )));
        }
        let _span = obs::span("golden_net");
        let wall = std::time::Instant::now();
        let sys = MnaSystem::new(net, self.r_drive)?;
        // A 10-90% slew corresponds to 80% of the full ramp.
        let ramp = input_slew.value() / 0.8;
        let input = match edge {
            Edge::Rise => RampInput::rising(self.vdd, ramp),
            Edge::Fall => RampInput::falling(self.vdd, ramp),
        };
        let aggressor = match si {
            SiMode::Off => None,
            SiMode::WorstCase { aggressor_ramp } => {
                // Worst case is the aggressor switching against the victim.
                let mut a = Aggressor::worst_case(aggressor_ramp.value(), self.vdd);
                a.rising = matches!(edge, Edge::Fall);
                Some(a)
            }
        };

        let settled_value = |v: f64| match edge {
            Edge::Rise => v >= 0.995 * self.vdd,
            Edge::Fall => v <= 0.005 * self.vdd,
        };
        let t50_of = |wf: &crate::waveform::Waveform| match edge {
            Edge::Rise => wf.t50(self.vdd),
            Edge::Fall => wf.t50_fall(self.vdd),
        };
        let slew_of = |wf: &crate::waveform::Waveform| match edge {
            Edge::Rise => wf.rise_slew(self.vdd),
            Edge::Fall => wf.fall_slew(self.vdd),
        };

        let tau = sys.tau_estimate(net);
        let horizon = ramp + self.horizon_tau * tau;
        let h = horizon / self.steps as f64;
        // Only the nodes the measurement below reads.
        let mut capture = vec![net.source()];
        capture.extend(net.sinks().iter().copied());
        let opts = SimOptions {
            solver: self.solver,
            capture: CaptureSet::Nodes(capture),
        };
        let mut sim = TransientSim::new(&sys, net, &input, aggressor.as_ref(), h, &opts)?;
        sim.run(self.steps)?;
        // Each extension doubles the covered horizon by integrating the
        // same number of steps again from the current state — the
        // factorization and RHS history carry over (warm restart).
        let mut extension_steps = self.steps;
        let mut extensions = 0;
        loop {
            let res = sim.snapshot();
            let settled = net
                .sinks()
                .iter()
                .all(|&s| {
                    settled_value(res.waveform(s).expect("sink captured").final_value().value())
                });
            if settled {
                let src_t50 = res
                    .waveform(net.source())
                    .and_then(t50_of)
                    .ok_or_else(|| SimError::NotSettled {
                        net: net.name().to_string(),
                    })?;
                let mut out = Vec::with_capacity(net.paths().len());
                let mut ok = true;
                for path in net.paths() {
                    let wf = res.waveform(path.sink).expect("sink captured");
                    match (t50_of(wf), slew_of(wf)) {
                        (Some(t50), Some(slew)) => out.push(PathTiming {
                            sink: path.sink,
                            delay: Seconds((t50.value() - src_t50.value()).max(0.0)),
                            slew,
                        }),
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    obs::counter("rcsim.golden.nets").inc();
                    obs::histogram("rcsim.golden.net_seconds")
                        .observe(wall.elapsed().as_secs_f64());
                    return Ok(out);
                }
            }
            if extensions >= self.max_extensions {
                break;
            }
            extensions += 1;
            obs::counter("rcsim.golden.horizon_extensions").inc();
            sim.run(extension_steps)?;
            extension_steps *= 2;
        }
        obs::event!(
            obs::Level::Warn,
            "rcsim.golden",
            "net did not settle within extended horizon",
            net = net.name(),
            extensions = self.max_extensions,
        );
        Err(SimError::NotSettled {
            net: net.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, RcNetBuilder};

    fn two_sink_net() -> RcNet {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(4e-15));
        let near = b.sink("near", Farads(3e-15));
        let far = b.sink("far", Farads(3e-15));
        b.resistor(s, m, Ohms(100.0));
        b.resistor(m, near, Ohms(50.0));
        b.resistor(m, far, Ohms(800.0));
        b.build().unwrap()
    }

    #[test]
    fn farther_sink_has_larger_delay_and_slew() {
        let net = two_sink_net();
        let t = GoldenTimer::default()
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .unwrap();
        assert_eq!(t.len(), 2);
        let near = t.iter().find(|p| net.node(p.sink).name == "near").unwrap();
        let far = t.iter().find(|p| net.node(p.sink).name == "far").unwrap();
        assert!(far.delay > near.delay);
        assert!(far.slew > near.slew);
        assert!(near.delay.value() > 0.0);
    }

    #[test]
    fn delay_tracks_elmore_scale() {
        // Golden 50% delay should land in the same ballpark as the Elmore
        // bound for a simple ladder (between ~0.3x and ~1.2x).
        let mut b = RcNetBuilder::new("l");
        let s = b.source("s", Farads(2e-15));
        let a = b.internal("a", Farads(5e-15));
        let k = b.sink("k", Farads(5e-15));
        b.resistor(s, a, Ohms(400.0));
        b.resistor(a, k, Ohms(400.0));
        let net = b.build().unwrap();
        let timing = GoldenTimer::default()
            .time_net(&net, Seconds::from_ps(15.0), SiMode::Off)
            .unwrap();
        let elmore = elmore::WireAnalysis::new(&net).unwrap();
        let bound = elmore.path_elmore(&net.paths()[0]).value();
        let d = timing[0].delay.value();
        assert!(d > 0.2 * bound, "delay {d} vs elmore {bound}");
        assert!(d < 1.5 * bound, "delay {d} vs elmore {bound}");
    }

    #[test]
    fn si_mode_increases_delay() {
        let mut b = RcNetBuilder::new("v");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(4e-15));
        b.resistor(s, k, Ohms(600.0));
        b.coupling(k, "agg:1", Farads(8e-15));
        let net = b.build().unwrap();
        let timer = GoldenTimer::default();
        let quiet = timer
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .unwrap();
        let noisy = timer
            .time_net(
                &net,
                Seconds::from_ps(20.0),
                SiMode::WorstCase {
                    aggressor_ramp: Seconds::from_ps(20.0),
                },
            )
            .unwrap();
        assert!(noisy[0].delay > quiet[0].delay);
    }

    #[test]
    fn slower_input_gives_larger_sink_slew() {
        let net = two_sink_net();
        let timer = GoldenTimer::default();
        let fast = timer
            .time_net(&net, Seconds::from_ps(5.0), SiMode::Off)
            .unwrap();
        let slow = timer
            .time_net(&net, Seconds::from_ps(80.0), SiMode::Off)
            .unwrap();
        assert!(slow[0].slew > fast[0].slew);
    }

    #[test]
    fn fall_edge_mirrors_rise_on_linear_net() {
        // Linear network: fall timing must match rise timing exactly.
        let net = two_sink_net();
        let timer = GoldenTimer::default();
        let rise = timer
            .time_net_edge(&net, Seconds::from_ps(20.0), SiMode::Off, Edge::Rise)
            .unwrap();
        let fall = timer
            .time_net_edge(&net, Seconds::from_ps(20.0), SiMode::Off, Edge::Fall)
            .unwrap();
        for (r, f) in rise.iter().zip(&fall) {
            assert!((r.delay.value() - f.delay.value()).abs() < 1e-14);
            assert!((r.slew.value() - f.slew.value()).abs() < 1e-14);
        }
    }

    #[test]
    fn fall_edge_si_uses_rising_aggressor() {
        let mut b = RcNetBuilder::new("v");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(4e-15));
        b.resistor(s, k, Ohms(600.0));
        b.coupling(k, "agg:1", Farads(8e-15));
        let net = b.build().unwrap();
        let timer = GoldenTimer::default();
        let si = SiMode::WorstCase {
            aggressor_ramp: Seconds::from_ps(20.0),
        };
        let quiet = timer
            .time_net_edge(&net, Seconds::from_ps(20.0), SiMode::Off, Edge::Fall)
            .unwrap();
        let noisy = timer
            .time_net_edge(&net, Seconds::from_ps(20.0), si, Edge::Fall)
            .unwrap();
        assert!(
            noisy[0].delay > quiet[0].delay,
            "a rising aggressor must slow the falling victim"
        );
    }

    #[test]
    fn dense_oracle_solver_is_selectable() {
        let net = two_sink_net();
        let sparse = GoldenTimer::default()
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .unwrap();
        let dense = GoldenTimer::default()
            .with_solver(SolverKind::DenseLu)
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .unwrap();
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s.delay.value() - d.delay.value()).abs() < 1e-12);
            assert!((s.slew.value() - d.slew.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn short_horizon_extends_and_still_measures() {
        // Force the initial horizon well short of settling so the
        // warm-restart extension path runs; the answer must match a
        // generous-horizon run (samples on the shared prefix are
        // identical and measurement happens after settling either way).
        let net = two_sink_net();
        let reference = GoldenTimer::default()
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .unwrap();
        let extended = GoldenTimer::default()
            .with_horizon_tau(0.5)
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .unwrap();
        for (r, e) in reference.iter().zip(&extended) {
            // Different step sizes → small numerical differences only.
            assert!(
                (r.delay.value() - e.delay.value()).abs() < 0.02 * r.delay.value().max(1e-15),
                "extended {:?} vs reference {:?}",
                e.delay,
                r.delay
            );
        }
    }

    #[test]
    fn rejects_bad_slew() {
        let net = two_sink_net();
        assert!(GoldenTimer::default()
            .time_net(&net, Seconds(0.0), SiMode::Off)
            .is_err());
    }
}
