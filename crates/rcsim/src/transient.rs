//! Trapezoidal transient integration of the MNA system.
//!
//! The iteration matrix `A = C/h + G/2` is constant under a fixed step,
//! so it is factorized once per run and reused for every timestep:
//!
//! ```text
//! (C/h + G/2) v_{n+1} = (C/h - G/2) v_n + (b_n + b_{n+1}) / 2
//! ```
//!
//! `A` is symmetric positive definite (a weighted graph Laplacian plus
//! the drive conductance and the positive cap/h diagonal), so the
//! default backend is the sparse LDLᵀ of [`numeric::sparse`] — near
//! linear in the nonzero count on near-tree RC networks. The dense
//! partial-pivoting LU remains selectable via [`SolverKind::DenseLu`] as
//! the test oracle.
//!
//! [`TransientSim`] is the stateful integrator: it owns the
//! factorization, the state vector and all step buffers, and can keep
//! integrating from where it stopped ([`TransientSim::run`]), which is
//! how the golden timer extends a too-short horizon without re-simulating
//! from `t = 0`.

use crate::mna::MnaSystem;
use crate::si::Aggressor;
use crate::waveform::Waveform;
use crate::SimError;
use numeric::{LdlFactor, LuFactor};
use rcnet::{NodeId, RcNet, Seconds};

/// The ideal input ramp presented to the driver's Thevenin source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampInput {
    /// Supply swing in volts.
    pub vdd: f64,
    /// Full 0→100 % transition time in seconds.
    pub ramp: f64,
    /// `true` for a 0→vdd ramp, `false` for vdd→0.
    pub rising: bool,
}

impl RampInput {
    /// A rising ramp.
    pub fn rising(vdd: f64, ramp: f64) -> Self {
        RampInput { vdd, ramp, rising: true }
    }

    /// A falling ramp.
    pub fn falling(vdd: f64, ramp: f64) -> Self {
        RampInput { vdd, ramp, rising: false }
    }

    /// Input voltage at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        let frac = (t / self.ramp).clamp(0.0, 1.0);
        if self.rising {
            self.vdd * frac
        } else {
            self.vdd * (1.0 - frac)
        }
    }

    /// The node voltage the net rests at before the ramp starts.
    pub fn initial_voltage(&self) -> f64 {
        if self.rising {
            0.0
        } else {
            self.vdd
        }
    }

    /// Time at which the ideal input crosses 50 %.
    pub fn t50(&self) -> Seconds {
        Seconds(0.5 * self.ramp)
    }
}

/// Which linear solver factorizes the iteration matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Sparse LDLᵀ with a fill-reducing ordering (the production path).
    #[default]
    SparseLdl,
    /// Dense LU with partial pivoting (the seed implementation, kept as
    /// the test oracle).
    DenseLu,
}

impl SolverKind {
    /// Stable lowercase name for reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::SparseLdl => "sparse_ldl",
            SolverKind::DenseLu => "dense_lu",
        }
    }
}

/// Which node waveforms the integrator records.
///
/// Full capture is O(nodes · steps) memory but only the driver pin and
/// the sinks are ever measured, so the golden timer captures just those.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CaptureSet {
    /// Record every node (tests / debugging; the [`simulate`] default).
    #[default]
    All,
    /// Record only the listed nodes, in the given order.
    Nodes(Vec<NodeId>),
}

/// Integration options: solver backend and waveform capture.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimOptions {
    /// Linear solver backend.
    pub solver: SolverKind,
    /// Which waveforms to record.
    pub capture: CaptureSet,
}

/// Result of one transient run: sampled waveforms for the captured
/// nodes.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// One waveform per captured node, in [`TransientResult::nodes`]
    /// order. Under [`CaptureSet::All`] row `i` is node index `i`.
    pub waveforms: Vec<Waveform>,
    /// Node index of each waveform row.
    pub nodes: Vec<usize>,
    /// The step size used.
    pub dt: Seconds,
}

impl TransientResult {
    /// The waveform captured for `node`, if it was in the capture set.
    pub fn waveform(&self, node: NodeId) -> Option<&Waveform> {
        self.nodes
            .iter()
            .position(|&i| i == node.index())
            .map(|row| &self.waveforms[row])
    }
}

enum Factor {
    Dense(LuFactor),
    Sparse(LdlFactor),
}

/// A stateful trapezoidal integrator over one MNA system.
///
/// Construction factorizes the iteration matrix for the given step size;
/// [`TransientSim::run`] then advances any number of steps, reusing the
/// factorization and all step buffers (the hot loop performs no
/// allocations beyond the captured samples). Repeated `run` calls
/// continue from the last state — the warm restart the golden timer uses
/// for horizon extension.
pub struct TransientSim<'a> {
    sys: &'a MnaSystem,
    net: &'a RcNet,
    input: RampInput,
    aggressor: Option<Aggressor>,
    h: f64,
    factor: Factor,
    /// Captured node indices; `samples` rows are parallel to this.
    capture: Vec<usize>,
    samples: Vec<Vec<f64>>,
    /// Current state vector (node voltages).
    v: Vec<f64>,
    steps_taken: usize,
    // Step buffers, hoisted out of the loop.
    b_prev: Vec<f64>,
    b_next: Vec<f64>,
    gv: Vec<f64>,
    rhs: Vec<f64>,
    work: Vec<f64>,
}

/// Right-hand side `b(t)`: drive current + aggressor injections.
fn rhs_into(
    sys: &MnaSystem,
    net: &RcNet,
    input: &RampInput,
    aggressor: Option<&Aggressor>,
    t: f64,
    out: &mut [f64],
) {
    out.fill(0.0);
    out[sys.source_index] += sys.drive_conductance * input.at(t);
    if let Some(agg) = aggressor {
        let slope = agg.dv_dt(t);
        if slope != 0.0 {
            for c in net.couplings() {
                out[c.node.index()] += c.cap.value() * slope;
            }
        }
    }
}

impl<'a> TransientSim<'a> {
    /// Sets up the integrator with step size `h`: factorizes
    /// `A = C/h + G/2` with the selected backend and records the `t = 0`
    /// sample for the captured nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadParameter`] for a non-positive or
    /// non-finite `h` and [`SimError::Numeric`] when the iteration
    /// matrix is singular (cannot happen on a validated net with a
    /// positive drive resistance).
    pub fn new(
        sys: &'a MnaSystem,
        net: &'a RcNet,
        input: &RampInput,
        aggressor: Option<&Aggressor>,
        h: f64,
        opts: &SimOptions,
    ) -> Result<Self, SimError> {
        if !(h > 0.0 && h.is_finite()) {
            return Err(SimError::BadParameter(format!(
                "step size must be positive and finite, got {h}"
            )));
        }
        let n = sys.dim();
        let factor = {
            let _s = obs::span("factor");
            let wall = std::time::Instant::now();
            let factor = match opts.solver {
                SolverKind::DenseLu => {
                    let mut a = sys.dense_conductance().scale(0.5);
                    for i in 0..n {
                        a[(i, i)] += sys.cap_diag[i] / h;
                    }
                    Factor::Dense(LuFactor::new(&a)?)
                }
                SolverKind::SparseLdl => {
                    let mut a = sys.conductance.clone();
                    for v in a.values_mut() {
                        *v *= 0.5;
                    }
                    for i in 0..n {
                        let p = a
                            .index_of(i, i)
                            .expect("MNA assembly stamps every diagonal entry");
                        a.values_mut()[p] += sys.cap_diag[i] / h;
                    }
                    let f = LdlFactor::new(&a)?;
                    obs::counter("rcsim.sparse.nnz").add(a.nnz() as u64);
                    // Fill-in: L entries beyond the strictly-lower
                    // entries already present in A.
                    let lower_a = (a.nnz() - n) / 2;
                    let fill = f.symbolic().nnz_l().saturating_sub(lower_a);
                    obs::counter("rcsim.sparse.fill").add(fill as u64);
                    Factor::Sparse(f)
                }
            };
            obs::counter_labeled("rcsim.solver.nets", Some(opts.solver.name())).inc();
            obs::histogram("rcsim.factor_seconds").observe(wall.elapsed().as_secs_f64());
            factor
        };

        let capture: Vec<usize> = match &opts.capture {
            CaptureSet::All => (0..n).collect(),
            CaptureSet::Nodes(nodes) => nodes.iter().map(|id| id.index()).collect(),
        };
        let v = vec![input.initial_voltage(); n];
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); capture.len()];
        for (s, &node) in samples.iter_mut().zip(&capture) {
            s.push(v[node]);
        }
        let mut b_prev = vec![0.0; n];
        rhs_into(sys, net, input, aggressor, 0.0, &mut b_prev);
        Ok(TransientSim {
            sys,
            net,
            input: *input,
            aggressor: aggressor.copied(),
            h,
            factor,
            capture,
            samples,
            v,
            steps_taken: 0,
            b_prev,
            b_next: vec![0.0; n],
            gv: vec![0.0; n],
            rhs: vec![0.0; n],
            work: vec![0.0; n],
        })
    }

    /// The fixed step size.
    pub fn dt(&self) -> Seconds {
        Seconds(self.h)
    }

    /// Steps integrated so far (current time is `dt * steps_taken`).
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Advances the simulation by `steps` steps from the current state,
    /// reusing the factorization (warm restart).
    ///
    /// # Errors
    ///
    /// This path cannot fail once construction succeeded; the `Result`
    /// is kept for forward compatibility with adaptive stepping.
    pub fn run(&mut self, steps: usize) -> Result<(), SimError> {
        let _s = obs::span("steps");
        let wall = std::time::Instant::now();
        let n = self.sys.dim();
        for s in &mut self.samples {
            s.reserve(steps);
        }
        for _ in 0..steps {
            self.steps_taken += 1;
            let t = self.h * self.steps_taken as f64;
            rhs_into(
                self.sys,
                self.net,
                &self.input,
                self.aggressor.as_ref(),
                t,
                &mut self.b_next,
            );
            // rhs = (C/h) v - (G v)/2 + (b_prev + b_next)/2
            self.sys.conductance.mul_vec_into(&self.v, &mut self.gv);
            for i in 0..n {
                self.rhs[i] = self.sys.cap_diag[i] / self.h * self.v[i] - 0.5 * self.gv[i]
                    + 0.5 * (self.b_prev[i] + self.b_next[i]);
            }
            match &self.factor {
                Factor::Dense(lu) => lu.solve_into(&self.rhs, &mut self.v),
                Factor::Sparse(f) => f.solve_into(&self.rhs, &mut self.v, &mut self.work),
            }
            for (s, &node) in self.samples.iter_mut().zip(&self.capture) {
                s.push(self.v[node]);
            }
            std::mem::swap(&mut self.b_prev, &mut self.b_next);
        }
        obs::counter("rcsim.transient.steps").add(steps as u64);
        obs::histogram("rcsim.solve_seconds").observe(wall.elapsed().as_secs_f64());
        Ok(())
    }

    /// The waveforms recorded so far (clones the sample storage; the
    /// integrator can keep running afterwards).
    pub fn snapshot(&self) -> TransientResult {
        TransientResult {
            waveforms: self
                .samples
                .iter()
                .map(|vals| Waveform::new(Seconds(0.0), Seconds(self.h), vals.clone()))
                .collect(),
            nodes: self.capture.clone(),
            dt: Seconds(self.h),
        }
    }

    /// Consumes the integrator, yielding the recorded waveforms without
    /// copying the samples.
    pub fn into_result(self) -> TransientResult {
        TransientResult {
            waveforms: self
                .samples
                .into_iter()
                .map(|vals| Waveform::new(Seconds(0.0), Seconds(self.h), vals))
                .collect(),
            nodes: self.capture,
            dt: Seconds(self.h),
        }
    }
}

/// Integrates the system over `[0, horizon]` with `steps` fixed steps,
/// capturing every node with the default (sparse) solver. See
/// [`simulate_opts`] to choose the backend or restrict capture.
///
/// `aggressors` couples every coupling capacitor of the net to the given
/// aggressor waveform (pass `None` for base, noise-free analysis).
///
/// # Errors
///
/// Returns [`SimError::Numeric`] when the iteration matrix is singular
/// (cannot happen on a validated net with a positive drive resistance)
/// and [`SimError::BadParameter`] for a non-positive horizon or zero
/// steps.
pub fn simulate(
    sys: &MnaSystem,
    net: &RcNet,
    input: &RampInput,
    aggressor: Option<&Aggressor>,
    horizon: f64,
    steps: usize,
) -> Result<TransientResult, SimError> {
    simulate_opts(sys, net, input, aggressor, horizon, steps, &SimOptions::default())
}

/// [`simulate`] with explicit [`SimOptions`].
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_opts(
    sys: &MnaSystem,
    net: &RcNet,
    input: &RampInput,
    aggressor: Option<&Aggressor>,
    horizon: f64,
    steps: usize,
    opts: &SimOptions,
) -> Result<TransientResult, SimError> {
    let horizon_ok = horizon > 0.0;
    if !horizon_ok || steps == 0 {
        return Err(SimError::BadParameter(format!(
            "horizon {horizon} / steps {steps} must be positive"
        )));
    }
    let _sim_span = obs::span("transient");
    let h = horizon / steps as f64;
    let mut sim = TransientSim::new(sys, net, input, aggressor, h, opts)?;
    sim.run(steps)?;
    Ok(sim.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn single_stage(r: f64, c: f64) -> RcNet {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(0.0));
        let k = b.sink("k", Farads(c));
        b.resistor(s, k, Ohms(r));
        b.build().unwrap()
    }

    #[test]
    fn settles_to_vdd() {
        let net = single_stage(100.0, 10e-15);
        let sys = MnaSystem::new(&net, Ohms(50.0)).unwrap();
        let input = RampInput::rising(1.0, 5e-12);
        let tau = sys.tau_estimate(&net);
        let res = simulate(&sys, &net, &input, None, input.ramp + 20.0 * tau, 2000).unwrap();
        for wf in &res.waveforms {
            assert!((wf.final_value().value() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn matches_analytic_rc_exponential() {
        // Step through Rdrv into C with no net resistance beyond a tiny one:
        // V(t) ~ 1 - exp(-t/RC) once the (fast) ramp is over.
        let net = single_stage(1.0, 100e-15);
        let sys = MnaSystem::new(&net, Ohms(1000.0)).unwrap();
        let input = RampInput::rising(1.0, 1e-15); // ~step
        let tau = 1001.0 * 100e-15;
        let res = simulate(&sys, &net, &input, None, 10.0 * tau, 8000).unwrap();
        let k = net.node_by_name("k").unwrap();
        let wf = &res.waveforms[k.index()];
        // Compare at t = tau: expect 1 - e^-1.
        let idx = (tau / res.dt.value()).round() as usize;
        let expected = 1.0 - (-1.0_f64).exp();
        assert!(
            (wf.values()[idx] - expected).abs() < 5e-3,
            "got {} want {expected}",
            wf.values()[idx]
        );
    }

    #[test]
    fn dense_oracle_agrees_with_sparse_default() {
        let net = single_stage(250.0, 20e-15);
        let sys = MnaSystem::new(&net, Ohms(80.0)).unwrap();
        let input = RampInput::rising(1.0, 8e-12);
        let tau = sys.tau_estimate(&net);
        let horizon = input.ramp + 20.0 * tau;
        let sparse = simulate(&sys, &net, &input, None, horizon, 1500).unwrap();
        let dense = simulate_opts(
            &sys,
            &net,
            &input,
            None,
            horizon,
            1500,
            &SimOptions {
                solver: SolverKind::DenseLu,
                capture: CaptureSet::All,
            },
        )
        .unwrap();
        for (ws, wd) in sparse.waveforms.iter().zip(&dense.waveforms) {
            for (a, b) in ws.values().iter().zip(wd.values()) {
                assert!((a - b).abs() < 1e-12, "sparse {a} vs dense {b}");
            }
        }
    }

    #[test]
    fn warm_restart_equals_single_long_run() {
        // run(k) twice must produce exactly the same samples as run(2k):
        // the factorization, state and RHS history carry across calls.
        let net = single_stage(400.0, 15e-15);
        let sys = MnaSystem::new(&net, Ohms(120.0)).unwrap();
        let input = RampInput::rising(1.0, 10e-12);
        let h = 25e-15;
        let opts = SimOptions::default();
        let mut split = TransientSim::new(&sys, &net, &input, None, h, &opts).unwrap();
        split.run(600).unwrap();
        split.run(600).unwrap();
        let mut whole = TransientSim::new(&sys, &net, &input, None, h, &opts).unwrap();
        whole.run(1200).unwrap();
        assert_eq!(split.steps_taken(), whole.steps_taken());
        let (a, b) = (split.into_result(), whole.into_result());
        for (wa, wb) in a.waveforms.iter().zip(&b.waveforms) {
            assert_eq!(wa.values(), wb.values(), "warm restart diverged");
        }
    }

    #[test]
    fn capture_set_restricts_waveforms() {
        let mut b = RcNetBuilder::new("c");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(2e-15));
        let k = b.sink("k", Farads(3e-15));
        b.resistor(s, m, Ohms(100.0));
        b.resistor(m, k, Ohms(150.0));
        let net = b.build().unwrap();
        let sys = MnaSystem::new(&net, Ohms(60.0)).unwrap();
        let input = RampInput::rising(1.0, 5e-12);
        let horizon = input.ramp + 20.0 * sys.tau_estimate(&net);
        let opts = SimOptions {
            solver: SolverKind::SparseLdl,
            capture: CaptureSet::Nodes(vec![net.source(), net.sinks()[0]]),
        };
        let res = simulate_opts(&sys, &net, &input, None, horizon, 800, &opts).unwrap();
        assert_eq!(res.waveforms.len(), 2);
        assert!(res.waveform(net.source()).is_some());
        assert!(res.waveform(net.sinks()[0]).is_some());
        let m = net.node_by_name("m").unwrap();
        assert!(res.waveform(m).is_none());
        // Captured values match a full capture run.
        let full = simulate(&sys, &net, &input, None, horizon, 800).unwrap();
        let k = net.sinks()[0];
        assert_eq!(
            res.waveform(k).unwrap().values(),
            full.waveform(k).unwrap().values()
        );
    }

    #[test]
    fn falling_aggressor_slows_victim() {
        let mut b = RcNetBuilder::new("v");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(5e-15));
        b.resistor(s, k, Ohms(500.0));
        b.coupling(k, "agg:1", Farads(10e-15));
        let net = b.build().unwrap();
        let sys = MnaSystem::new(&net, Ohms(100.0)).unwrap();
        let input = RampInput::rising(1.0, 10e-12);
        let tau = sys.tau_estimate(&net);
        let horizon = input.ramp + 25.0 * tau;

        let base = simulate(&sys, &net, &input, None, horizon, 4000).unwrap();
        let agg = crate::si::Aggressor::worst_case(10e-12, 1.0);
        let noisy = simulate(&sys, &net, &input, Some(&agg), horizon, 4000).unwrap();

        let k_i = net.node_by_name("k").unwrap().index();
        let t_base = base.waveforms[k_i].t50(1.0).unwrap();
        let t_noisy = noisy.waveforms[k_i].t50(1.0).unwrap();
        assert!(
            t_noisy > t_base,
            "aggressor must add delay: base {t_base:?} noisy {t_noisy:?}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let net = single_stage(10.0, 1e-15);
        let sys = MnaSystem::new(&net, Ohms(10.0)).unwrap();
        let input = RampInput::rising(1.0, 1e-12);
        assert!(simulate(&sys, &net, &input, None, 0.0, 100).is_err());
        assert!(simulate(&sys, &net, &input, None, 1e-9, 0).is_err());
        assert!(TransientSim::new(&sys, &net, &input, None, 0.0, &SimOptions::default()).is_err());
        assert!(
            TransientSim::new(&sys, &net, &input, None, f64::NAN, &SimOptions::default()).is_err()
        );
    }

    #[test]
    fn ramp_input_shape() {
        let r = RampInput::rising(0.8, 10e-12);
        assert_eq!(r.at(-1e-12), 0.0);
        assert!((r.at(5e-12) - 0.4).abs() < 1e-12);
        assert_eq!(r.at(20e-12), 0.8);
        assert_eq!(r.t50(), Seconds(5e-12));
        assert_eq!(r.initial_voltage(), 0.0);
        let f = RampInput::falling(0.8, 10e-12);
        assert_eq!(f.at(-1e-12), 0.8);
        assert!((f.at(5e-12) - 0.4).abs() < 1e-12);
        assert_eq!(f.at(20e-12), 0.0);
        assert_eq!(f.initial_voltage(), 0.8);
    }

    #[test]
    fn falling_transition_mirrors_rising_by_linearity() {
        // For a linear RC network, v_fall(t) = vdd - v_rise(t) exactly.
        let net = single_stage(200.0, 20e-15);
        let sys = MnaSystem::new(&net, Ohms(100.0)).unwrap();
        let tau = sys.tau_estimate(&net);
        let horizon = 10e-12 + 20.0 * tau;
        let rise = simulate(&sys, &net, &RampInput::rising(1.0, 10e-12), None, horizon, 3000)
            .unwrap();
        let fall = simulate(&sys, &net, &RampInput::falling(1.0, 10e-12), None, horizon, 3000)
            .unwrap();
        let k = net.node_by_name("k").unwrap().index();
        for (r, f) in rise.waveforms[k].values().iter().zip(fall.waveforms[k].values()) {
            assert!((r + f - 1.0).abs() < 1e-9, "superposition violated: {r} + {f}");
        }
    }
}
