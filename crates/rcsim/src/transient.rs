//! Trapezoidal transient integration of the MNA system.
//!
//! The iteration matrix `A = C/h + G/2` is constant under a fixed step, so
//! it is LU-factorized once per run and reused for every timestep:
//!
//! ```text
//! (C/h + G/2) v_{n+1} = (C/h - G/2) v_n + (b_n + b_{n+1}) / 2
//! ```

use crate::mna::MnaSystem;
use crate::si::Aggressor;
use crate::waveform::Waveform;
use crate::SimError;
use numeric::{LuFactor, Vector};
use rcnet::{RcNet, Seconds};

/// The ideal input ramp presented to the driver's Thevenin source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampInput {
    /// Supply swing in volts.
    pub vdd: f64,
    /// Full 0→100 % transition time in seconds.
    pub ramp: f64,
    /// `true` for a 0→vdd ramp, `false` for vdd→0.
    pub rising: bool,
}

impl RampInput {
    /// A rising ramp.
    pub fn rising(vdd: f64, ramp: f64) -> Self {
        RampInput { vdd, ramp, rising: true }
    }

    /// A falling ramp.
    pub fn falling(vdd: f64, ramp: f64) -> Self {
        RampInput { vdd, ramp, rising: false }
    }

    /// Input voltage at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        let frac = (t / self.ramp).clamp(0.0, 1.0);
        if self.rising {
            self.vdd * frac
        } else {
            self.vdd * (1.0 - frac)
        }
    }

    /// The node voltage the net rests at before the ramp starts.
    pub fn initial_voltage(&self) -> f64 {
        if self.rising {
            0.0
        } else {
            self.vdd
        }
    }

    /// Time at which the ideal input crosses 50 %.
    pub fn t50(&self) -> Seconds {
        Seconds(0.5 * self.ramp)
    }
}

/// Result of one transient run: per-node sampled waveforms.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// One waveform per net node, indexed by `NodeId::index()`.
    pub waveforms: Vec<Waveform>,
    /// The step size used.
    pub dt: Seconds,
}

/// Integrates the system over `[0, horizon]` with `steps` fixed steps.
///
/// `aggressors` couples every coupling capacitor of the net to the given
/// aggressor waveform (pass `None` for base, noise-free analysis).
///
/// # Errors
///
/// Returns [`SimError::Numeric`] when the iteration matrix is singular
/// (cannot happen on a validated net with a positive drive resistance) and
/// [`SimError::BadParameter`] for a non-positive horizon or zero steps.
pub fn simulate(
    sys: &MnaSystem,
    net: &RcNet,
    input: &RampInput,
    aggressor: Option<&Aggressor>,
    horizon: f64,
    steps: usize,
) -> Result<TransientResult, SimError> {
    let horizon_ok = horizon > 0.0;
    if !horizon_ok || steps == 0 {
        return Err(SimError::BadParameter(format!(
            "horizon {horizon} / steps {steps} must be positive"
        )));
    }
    let _sim_span = obs::span("transient");
    let n = sys.dim();
    let h = horizon / steps as f64;

    // A = C/h + G/2 — factorized once.
    let lu = {
        let _s = obs::span("factor");
        let mut a = sys.conductance.scale(0.5);
        for i in 0..n {
            a[(i, i)] += sys.cap_diag[i] / h;
        }
        LuFactor::new(&a)?
    };

    // Right-hand side b(t): drive current + aggressor injections.
    let rhs_at = |t: f64| -> Vector {
        let mut b = Vector::zeros(n);
        b[sys.source_index] += sys.drive_conductance * input.at(t);
        if let Some(agg) = aggressor {
            let slope = agg.dv_dt(t);
            if slope != 0.0 {
                for c in net.couplings() {
                    b[c.node.index()] += c.cap.value() * slope;
                }
            }
        }
        b
    };

    let mut v = Vector::from(vec![input.initial_voltage(); n]);
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); n];
    for (i, s) in samples.iter_mut().enumerate() {
        s.push(v[i]);
    }
    {
        // Back-substitution loop: one solve per timestep against the
        // shared factorization.
        let _s = obs::span("steps");
        let mut b_prev = rhs_at(0.0);
        for step in 1..=steps {
            let t = h * step as f64;
            let b_next = rhs_at(t);
            // rhs = (C/h) v - (G v)/2 + (b_prev + b_next)/2
            let gv = sys.conductance.mul_vec(&v);
            let mut rhs = Vector::zeros(n);
            for i in 0..n {
                rhs[i] = sys.cap_diag[i] / h * v[i] - 0.5 * gv[i] + 0.5 * (b_prev[i] + b_next[i]);
            }
            v = lu.solve(&rhs)?;
            for (i, s) in samples.iter_mut().enumerate() {
                s.push(v[i]);
            }
            b_prev = b_next;
        }
        obs::counter("rcsim.transient.steps").add(steps as u64);
    }

    let dt = Seconds(h);
    let waveforms = samples
        .into_iter()
        .map(|vals| Waveform::new(Seconds(0.0), dt, vals))
        .collect();
    Ok(TransientResult { waveforms, dt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn single_stage(r: f64, c: f64) -> RcNet {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(0.0));
        let k = b.sink("k", Farads(c));
        b.resistor(s, k, Ohms(r));
        b.build().unwrap()
    }

    #[test]
    fn settles_to_vdd() {
        let net = single_stage(100.0, 10e-15);
        let sys = MnaSystem::new(&net, Ohms(50.0)).unwrap();
        let input = RampInput::rising(1.0, 5e-12);
        let tau = sys.tau_estimate(&net);
        let res = simulate(&sys, &net, &input, None, input.ramp + 20.0 * tau, 2000).unwrap();
        for wf in &res.waveforms {
            assert!((wf.final_value().value() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn matches_analytic_rc_exponential() {
        // Step through Rdrv into C with no net resistance beyond a tiny one:
        // V(t) ~ 1 - exp(-t/RC) once the (fast) ramp is over.
        let net = single_stage(1.0, 100e-15);
        let sys = MnaSystem::new(&net, Ohms(1000.0)).unwrap();
        let input = RampInput::rising(1.0, 1e-15); // ~step
        let tau = 1001.0 * 100e-15;
        let res = simulate(&sys, &net, &input, None, 10.0 * tau, 8000).unwrap();
        let k = net.node_by_name("k").unwrap();
        let wf = &res.waveforms[k.index()];
        // Compare at t = tau: expect 1 - e^-1.
        let idx = (tau / res.dt.value()).round() as usize;
        let expected = 1.0 - (-1.0_f64).exp();
        assert!(
            (wf.values()[idx] - expected).abs() < 5e-3,
            "got {} want {expected}",
            wf.values()[idx]
        );
    }

    #[test]
    fn falling_aggressor_slows_victim() {
        let mut b = RcNetBuilder::new("v");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(5e-15));
        b.resistor(s, k, Ohms(500.0));
        b.coupling(k, "agg:1", Farads(10e-15));
        let net = b.build().unwrap();
        let sys = MnaSystem::new(&net, Ohms(100.0)).unwrap();
        let input = RampInput::rising(1.0, 10e-12);
        let tau = sys.tau_estimate(&net);
        let horizon = input.ramp + 25.0 * tau;

        let base = simulate(&sys, &net, &input, None, horizon, 4000).unwrap();
        let agg = crate::si::Aggressor::worst_case(10e-12, 1.0);
        let noisy = simulate(&sys, &net, &input, Some(&agg), horizon, 4000).unwrap();

        let k_i = net.node_by_name("k").unwrap().index();
        let t_base = base.waveforms[k_i].t50(1.0).unwrap();
        let t_noisy = noisy.waveforms[k_i].t50(1.0).unwrap();
        assert!(
            t_noisy > t_base,
            "aggressor must add delay: base {t_base:?} noisy {t_noisy:?}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let net = single_stage(10.0, 1e-15);
        let sys = MnaSystem::new(&net, Ohms(10.0)).unwrap();
        let input = RampInput::rising(1.0, 1e-12);
        assert!(simulate(&sys, &net, &input, None, 0.0, 100).is_err());
        assert!(simulate(&sys, &net, &input, None, 1e-9, 0).is_err());
    }

    #[test]
    fn ramp_input_shape() {
        let r = RampInput::rising(0.8, 10e-12);
        assert_eq!(r.at(-1e-12), 0.0);
        assert!((r.at(5e-12) - 0.4).abs() < 1e-12);
        assert_eq!(r.at(20e-12), 0.8);
        assert_eq!(r.t50(), Seconds(5e-12));
        assert_eq!(r.initial_voltage(), 0.0);
        let f = RampInput::falling(0.8, 10e-12);
        assert_eq!(f.at(-1e-12), 0.8);
        assert!((f.at(5e-12) - 0.4).abs() < 1e-12);
        assert_eq!(f.at(20e-12), 0.0);
        assert_eq!(f.initial_voltage(), 0.8);
    }

    #[test]
    fn falling_transition_mirrors_rising_by_linearity() {
        // For a linear RC network, v_fall(t) = vdd - v_rise(t) exactly.
        let net = single_stage(200.0, 20e-15);
        let sys = MnaSystem::new(&net, Ohms(100.0)).unwrap();
        let tau = sys.tau_estimate(&net);
        let horizon = 10e-12 + 20.0 * tau;
        let rise = simulate(&sys, &net, &RampInput::rising(1.0, 10e-12), None, horizon, 3000)
            .unwrap();
        let fall = simulate(&sys, &net, &RampInput::falling(1.0, 10e-12), None, horizon, 3000)
            .unwrap();
        let k = net.node_by_name("k").unwrap().index();
        for (r, f) in rise.waveforms[k].values().iter().zip(fall.waveforms[k].values()) {
            assert!((r + f - 1.0).abs() < 1e-9, "superposition violated: {r} + {f}");
        }
    }
}
