//! Aggressor switching model for SI (crosstalk) analysis.
//!
//! Coupling capacitors connect the victim net to aggressor nets. When an
//! aggressor switches, the current `Cc * dV_agg/dt` is injected into the
//! victim node; an aggressor switching opposite to the victim slows the
//! victim edge (delta delay), matching the effect PrimeTime SI layers on
//! top of base delays.

/// A linear-ramp aggressor waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggressor {
    /// Full 0→100 % transition time in seconds.
    pub ramp: f64,
    /// Ramp start time in seconds.
    pub start: f64,
    /// Supply voltage swing in volts.
    pub vdd: f64,
    /// `true` for a rising aggressor, `false` for falling (the worst case
    /// against a rising victim).
    pub rising: bool,
}

impl Aggressor {
    /// Worst-case aggressor against a rising victim: a falling edge with
    /// the given ramp, time-aligned with the victim's switching window.
    pub fn worst_case(ramp: f64, vdd: f64) -> Self {
        Aggressor {
            ramp,
            start: 0.0,
            vdd,
            rising: false,
        }
    }

    /// Aggressor voltage at time `t`.
    pub fn voltage(&self, t: f64) -> f64 {
        let frac = ((t - self.start) / self.ramp).clamp(0.0, 1.0);
        if self.rising {
            self.vdd * frac
        } else {
            self.vdd * (1.0 - frac)
        }
    }

    /// Aggressor voltage slope `dV/dt` at time `t` (zero outside the ramp).
    pub fn dv_dt(&self, t: f64) -> f64 {
        if t < self.start || t > self.start + self.ramp {
            return 0.0;
        }
        let slope = self.vdd / self.ramp;
        if self.rising {
            slope
        } else {
            -slope
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falling_ramp_voltage_and_slope() {
        let a = Aggressor::worst_case(10e-12, 1.0);
        assert_eq!(a.voltage(-1e-12), 1.0);
        assert!((a.voltage(5e-12) - 0.5).abs() < 1e-12);
        assert_eq!(a.voltage(20e-12), 0.0);
        assert!((a.dv_dt(5e-12) + 1e11).abs() < 1.0);
        assert_eq!(a.dv_dt(20e-12 + 1e-15), 0.0);
    }

    #[test]
    fn rising_ramp() {
        let a = Aggressor {
            ramp: 4e-12,
            start: 2e-12,
            vdd: 0.8,
            rising: true,
        };
        assert_eq!(a.voltage(0.0), 0.0);
        assert!((a.voltage(4e-12) - 0.4).abs() < 1e-12);
        assert_eq!(a.voltage(10e-12), 0.8);
        assert!(a.dv_dt(3e-12) > 0.0);
        assert_eq!(a.dv_dt(0.0), 0.0);
    }
}
