//! Golden wire-timing reference: a transient RC circuit simulator.
//!
//! The paper labels its training data with Synopsys PrimeTime in SI mode.
//! No open tool reproduces sign-off calibration, but the quantity being
//! labelled — the slew and delay of each sink's voltage waveform when the
//! driver switches, including crosstalk from coupled aggressors — is
//! exactly what a circuit-level transient simulation of the parasitic
//! network computes. This crate therefore *is* the reproduction's golden
//! timer:
//!
//! * [`mna`] — assembles the nodal `C dv/dt + G v = b(t)` system (CSR
//!   conductance, diagonal capacitance) with the driver modelled as an
//!   ideal ramp behind a Thevenin drive resistance;
//! * [`transient`] — A-stable trapezoidal integration, factorizing the
//!   constant iteration matrix once per net with a sparse LDLᵀ (dense LU
//!   stays selectable as the test oracle) and supporting warm-restarted
//!   horizon extension;
//! * [`waveform`] — threshold-crossing measurement (50 % delay, 10–90 %
//!   slew) robust to the non-monotonicity crosstalk causes;
//! * [`si`] — aggressor switching injected through coupling capacitors;
//! * [`golden`] — the [`golden::GoldenTimer`] front end producing per-path
//!   slew/delay labels.
//!
//! # Examples
//!
//! ```
//! use rcnet::{Farads, Ohms, RcNetBuilder, Seconds};
//! use rcsim::golden::{GoldenTimer, SiMode};
//!
//! # fn main() -> Result<(), rcsim::SimError> {
//! let mut b = RcNetBuilder::new("n");
//! let s = b.source("d:Z", Farads(1e-15));
//! let k = b.sink("l:A", Farads(20e-15));
//! b.resistor(s, k, Ohms(200.0));
//! let net = b.build().map_err(rcsim::SimError::from)?;
//! let timer = GoldenTimer::default();
//! let timing = timer.time_net(&net, Seconds::from_ps(20.0), SiMode::Off)?;
//! assert_eq!(timing.len(), 1);
//! assert!(timing[0].delay.value() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod golden;
pub mod mna;
pub mod si;
pub mod transient;
pub mod waveform;

pub use golden::{Edge, GoldenTimer, PathTiming, SiMode};
pub use transient::{CaptureSet, SimOptions, SolverKind, TransientSim};
pub use waveform::Waveform;

use std::error::Error;
use std::fmt;

/// Errors from the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The system matrix could not be factorized.
    Numeric(String),
    /// The underlying net was rejected.
    Net(String),
    /// The simulation never settled within the maximum horizon
    /// (pathological parameters such as a zero-capacitance floating mesh).
    NotSettled {
        /// Name of the net being simulated.
        net: String,
    },
    /// Invalid simulation parameter (message explains which).
    BadParameter(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Numeric(m) => write!(f, "numeric failure: {m}"),
            SimError::Net(m) => write!(f, "net error: {m}"),
            SimError::NotSettled { net } => {
                write!(f, "simulation of net `{net}` did not settle")
            }
            SimError::BadParameter(m) => write!(f, "bad parameter: {m}"),
        }
    }
}

impl Error for SimError {}

impl From<numeric::NumericError> for SimError {
    fn from(e: numeric::NumericError) -> Self {
        SimError::Numeric(e.to_string())
    }
}

impl From<rcnet::RcNetError> for SimError {
    fn from(e: rcnet::RcNetError) -> Self {
        SimError::Net(e.to_string())
    }
}
