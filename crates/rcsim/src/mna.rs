//! Modified nodal analysis assembly for one net.
//!
//! All net nodes (including the driver pin) are unknowns; the ideal input
//! ramp `Vin(t)` reaches the driver pin through a Thevenin drive
//! resistance, contributing `1/R_drv` to the pin's diagonal and a
//! `Vin(t)/R_drv` source term. Coupling capacitors add to the victim
//! diagonal of `C` and inject `Cc * dV_agg/dt` on the right-hand side
//! (handled by [`crate::si`]).
//!
//! RC nets are trees plus a handful of loop chords, so the conductance
//! matrix has O(n) nonzeros; it is assembled directly in CSR form with
//! an explicit diagonal entry for every node, which guarantees the
//! trapezoidal iteration matrix `A = C/h + G/2` shares the pattern (its
//! cap term only touches the diagonal). The dense form remains available
//! through [`MnaSystem::dense_conductance`] for the LU oracle path.

use crate::SimError;
use numeric::{Matrix, SparseMatrix, TripletBuilder};
use rcnet::{Ohms, RcNet};

/// The assembled `C dv/dt + G v = b(t)` system of a net.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    /// Diagonal of the capacitance matrix (ground + coupling), per node.
    pub cap_diag: Vec<f64>,
    /// Sparse (CSR) conductance matrix including the drive conductance,
    /// with an explicit diagonal entry for every node.
    pub conductance: SparseMatrix,
    /// Index of the driver pin node.
    pub source_index: usize,
    /// Drive conductance `1/R_drv` (multiplies `Vin(t)` in the RHS).
    pub drive_conductance: f64,
}

impl MnaSystem {
    /// Assembles the system for `net` with the given drive resistance.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadParameter`] when `r_drive` is not positive.
    pub fn new(net: &RcNet, r_drive: Ohms) -> Result<Self, SimError> {
        let positive = r_drive.value() > 0.0;
        if !positive {
            return Err(SimError::BadParameter(format!(
                "drive resistance must be positive, got {r_drive}"
            )));
        }
        let n = net.node_count();
        let mut g = TripletBuilder::new(n, n);
        // Explicit diagonal for every node so the iteration-matrix
        // pattern (diagonal cap term) never needs new entries.
        for i in 0..n {
            g.add(i, i, 0.0);
        }
        for (_, e) in net.iter_edges() {
            let gij = 1.0 / e.res.value();
            let (a, b) = (e.a.index(), e.b.index());
            g.add(a, a, gij);
            g.add(b, b, gij);
            g.add(a, b, -gij);
            g.add(b, a, -gij);
        }
        let source_index = net.source().index();
        let g_drv = 1.0 / r_drive.value();
        g.add(source_index, source_index, g_drv);

        let mut cap_diag = vec![0.0; n];
        for (id, node) in net.iter_nodes() {
            cap_diag[id.index()] = node.cap.value();
        }
        for c in net.couplings() {
            cap_diag[c.node.index()] += c.cap.value();
        }
        Ok(MnaSystem {
            cap_diag,
            conductance: g.build(),
            source_index,
            drive_conductance: g_drv,
        })
    }

    /// Number of unknown node voltages.
    pub fn dim(&self) -> usize {
        self.cap_diag.len()
    }

    /// Nonzero count of the conductance matrix (including the explicit
    /// diagonal).
    pub fn nnz(&self) -> usize {
        self.conductance.nnz()
    }

    /// The conductance matrix expanded to dense form (LU oracle path).
    pub fn dense_conductance(&self) -> Matrix {
        self.conductance.to_dense()
    }

    /// A conservative dominant time constant estimate used to size the
    /// simulation horizon: `(R_drv + R_total) * C_total`.
    pub fn tau_estimate(&self, net: &RcNet) -> f64 {
        let c_total: f64 = self.cap_diag.iter().sum();
        let r_total = net.total_res().value() + 1.0 / self.drive_conductance;
        (r_total * c_total).max(1e-15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, RcNetBuilder};

    fn net() -> RcNet {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(2e-15));
        b.resistor(s, k, Ohms(100.0));
        b.coupling(k, "agg", Farads(0.5e-15));
        b.build().unwrap()
    }

    #[test]
    fn assembles_conductance_and_caps() {
        let net = net();
        let sys = MnaSystem::new(&net, Ohms(50.0)).unwrap();
        assert_eq!(sys.dim(), 2);
        let s = net.source().index();
        let k = 1 - s;
        // G[s][s] = 1/100 + 1/50, G[k][k] = 1/100, off-diagonals -1/100.
        assert!((sys.conductance.get(s, s) - 0.03).abs() < 1e-12);
        assert!((sys.conductance.get(k, k) - 0.01).abs() < 1e-12);
        assert!((sys.conductance.get(s, k) + 0.01).abs() < 1e-12);
        // Coupling cap lumped onto the sink diagonal.
        assert!((sys.cap_diag[k] - 2.5e-15).abs() < 1e-27);
        assert!((sys.cap_diag[s] - 1e-15).abs() < 1e-27);
    }

    #[test]
    fn sparse_assembly_is_symmetric_with_full_diagonal() {
        let net = net();
        let sys = MnaSystem::new(&net, Ohms(50.0)).unwrap();
        assert!(sys.conductance.is_symmetric(1e-15));
        for i in 0..sys.dim() {
            assert!(
                sys.conductance.index_of(i, i).is_some(),
                "diagonal entry {i} must be explicit"
            );
        }
        // 2 nodes + 2 off-diagonals.
        assert_eq!(sys.nnz(), 4);
        // Dense expansion matches the CSR entries.
        let d = sys.dense_conductance();
        assert!((d[(0, 0)] - sys.conductance.get(0, 0)).abs() < 1e-15);
    }

    #[test]
    fn rejects_non_positive_drive() {
        let net = net();
        assert!(MnaSystem::new(&net, Ohms(0.0)).is_err());
        assert!(MnaSystem::new(&net, Ohms(-5.0)).is_err());
    }

    #[test]
    fn tau_estimate_positive_and_scales() {
        let net = net();
        let sys = MnaSystem::new(&net, Ohms(50.0)).unwrap();
        let tau = sys.tau_estimate(&net);
        // (100 + 50) * 3.5fF = 525 fs.
        assert!((tau - 150.0 * 3.5e-15).abs() < 1e-24);
    }
}
