//! Sampled voltage waveforms and threshold-crossing measurement.

use rcnet::{Seconds, Volts};

/// A uniformly sampled voltage waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform starting at `t0` with sample spacing `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn new(t0: Seconds, dt: Seconds, values: Vec<f64>) -> Self {
        assert!(dt.value() > 0.0, "sample spacing must be positive");
        Waveform {
            t0: t0.value(),
            dt: dt.value(),
            values,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Time of sample `i`.
    pub fn time_at(&self, i: usize) -> Seconds {
        Seconds(self.t0 + self.dt * i as f64)
    }

    /// Final sampled value, or 0 when empty.
    pub fn final_value(&self) -> Volts {
        Volts(self.values.last().copied().unwrap_or(0.0))
    }

    /// The *last* upward crossing of `threshold`: the time after which the
    /// waveform stays at or above the threshold, linearly interpolated.
    ///
    /// Crosstalk can make waveforms non-monotonic; taking the final
    /// crossing matches how sign-off timers measure delay under noise
    /// (the latest time the signal is still below threshold bounds the
    /// arrival). Returns `None` when the waveform never settles above the
    /// threshold, and the start time when it never dips below it.
    pub fn rising_crossing(&self, threshold: f64) -> Option<Seconds> {
        if self.values.is_empty() || *self.values.last().expect("non-empty") < threshold {
            return None;
        }
        // Find the last index strictly below the threshold.
        let below = self.values.iter().rposition(|&v| v < threshold);
        match below {
            None => Some(Seconds(self.t0)),
            Some(i) => {
                if i + 1 >= self.values.len() {
                    return None;
                }
                let (v0, v1) = (self.values[i], self.values[i + 1]);
                let frac = if v1 > v0 { (threshold - v0) / (v1 - v0) } else { 1.0 };
                Some(Seconds(self.t0 + self.dt * (i as f64 + frac)))
            }
        }
    }

    /// The *last* downward crossing of `threshold`: the time after which
    /// the waveform stays at or below the threshold, linearly
    /// interpolated. The falling-edge mirror of
    /// [`Waveform::rising_crossing`].
    pub fn falling_crossing(&self, threshold: f64) -> Option<Seconds> {
        if self.values.is_empty() || *self.values.last().expect("non-empty") > threshold {
            return None;
        }
        let above = self.values.iter().rposition(|&v| v > threshold);
        match above {
            None => Some(Seconds(self.t0)),
            Some(i) => {
                if i + 1 >= self.values.len() {
                    return None;
                }
                let (v0, v1) = (self.values[i], self.values[i + 1]);
                let frac = if v1 < v0 { (v0 - threshold) / (v0 - v1) } else { 1.0 };
                Some(Seconds(self.t0 + self.dt * (i as f64 + frac)))
            }
        }
    }

    /// 10 %–90 % rise slew relative to `vdd`.
    ///
    /// Returns `None` when either threshold is never settled above.
    pub fn rise_slew(&self, vdd: f64) -> Option<Seconds> {
        let t10 = self.rising_crossing(0.1 * vdd)?;
        let t90 = self.rising_crossing(0.9 * vdd)?;
        Some(Seconds((t90.value() - t10.value()).max(0.0)))
    }

    /// 90 %–10 % fall slew relative to `vdd`.
    ///
    /// Returns `None` when either threshold is never settled below.
    pub fn fall_slew(&self, vdd: f64) -> Option<Seconds> {
        let t90 = self.falling_crossing(0.9 * vdd)?;
        let t10 = self.falling_crossing(0.1 * vdd)?;
        Some(Seconds((t10.value() - t90.value()).max(0.0)))
    }

    /// 50 % rising crossing relative to `vdd`.
    pub fn t50(&self, vdd: f64) -> Option<Seconds> {
        self.rising_crossing(0.5 * vdd)
    }

    /// 50 % falling crossing relative to `vdd`.
    pub fn t50_fall(&self, vdd: f64) -> Option<Seconds> {
        self.falling_crossing(0.5 * vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0.0, 0.25, 0.5, 0.75, 1.0 at t = 0, 1, 2, 3, 4 ps
        Waveform::new(
            Seconds(0.0),
            Seconds(1e-12),
            vec![0.0, 0.25, 0.5, 0.75, 1.0],
        )
    }

    #[test]
    fn crossing_interpolates() {
        let w = ramp();
        let t = w.rising_crossing(0.5).unwrap();
        assert!((t.value() - 2e-12).abs() < 1e-24);
        let t = w.rising_crossing(0.4).unwrap();
        assert!((t.value() - 1.6e-12).abs() < 1e-24);
    }

    #[test]
    fn slew_10_90() {
        let w = ramp();
        let s = w.rise_slew(1.0).unwrap();
        // t10 = 0.4ps, t90 = 3.6ps
        assert!((s.value() - 3.2e-12).abs() < 1e-24);
    }

    #[test]
    fn unsettled_returns_none() {
        let w = Waveform::new(Seconds(0.0), Seconds(1e-12), vec![0.0, 0.3, 0.4]);
        assert_eq!(w.rising_crossing(0.5), None);
        assert_eq!(w.rise_slew(1.0), None);
    }

    #[test]
    fn already_above_returns_start() {
        let w = Waveform::new(Seconds(2e-12), Seconds(1e-12), vec![0.8, 0.9, 1.0]);
        let t = w.rising_crossing(0.5).unwrap();
        assert_eq!(t, Seconds(2e-12));
    }

    #[test]
    fn non_monotonic_takes_last_crossing() {
        // Dips back below 0.5 after first crossing (crosstalk glitch).
        let w = Waveform::new(
            Seconds(0.0),
            Seconds(1e-12),
            vec![0.0, 0.6, 0.4, 0.45, 0.55, 1.0],
        );
        let t = w.rising_crossing(0.5).unwrap();
        // last below-threshold index is 3 (0.45), interpolate to 0.5 between 3 and 4.
        assert!((t.value() - 3.5e-12).abs() < 1e-24);
    }

    #[test]
    fn accessors() {
        let w = ramp();
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
        assert_eq!(w.final_value(), Volts(1.0));
        assert_eq!(w.time_at(2), Seconds(2e-12));
    }

    #[test]
    fn falling_crossing_and_slew() {
        // 1.0 -> 0.0 ramp over 4 ps.
        let w = Waveform::new(
            Seconds(0.0),
            Seconds(1e-12),
            vec![1.0, 0.75, 0.5, 0.25, 0.0],
        );
        let t = w.falling_crossing(0.5).unwrap();
        assert!((t.value() - 2e-12).abs() < 1e-24);
        let s = w.fall_slew(1.0).unwrap();
        assert!((s.value() - 3.2e-12).abs() < 1e-24);
        assert_eq!(w.t50_fall(1.0), Some(Seconds(2e-12)));
        // Rising queries on a falling waveform report unsettled.
        assert_eq!(w.rising_crossing(0.5), None);
    }

    #[test]
    fn falling_crossing_unsettled_is_none() {
        let w = Waveform::new(Seconds(0.0), Seconds(1e-12), vec![1.0, 0.8, 0.7]);
        assert_eq!(w.falling_crossing(0.5), None);
        // Already below: crossing at start.
        let w = Waveform::new(Seconds(1e-12), Seconds(1e-12), vec![0.2, 0.1, 0.0]);
        assert_eq!(w.falling_crossing(0.5), Some(Seconds(1e-12)));
    }

    #[test]
    #[should_panic]
    fn zero_dt_panics() {
        let _ = Waveform::new(Seconds(0.0), Seconds(0.0), vec![0.0]);
    }
}
