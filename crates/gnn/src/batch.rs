//! Packing one RC net into model-ready tensors.
//!
//! Following the paper's data representation (§III-B, Fig. 5), each net
//! becomes a node feature matrix `X`, a weighted adjacency matrix `A`
//! whose entries are (normalized) resistance values, and a path feature
//! matrix `H` with one row per wire path. The baselines additionally need
//! a mean-aggregation adjacency (GraphSage), a symmetrically normalized
//! one with self-loops (GCNII) and an attention mask (GAT), all derived
//! from the same connectivity here.

use crate::GnnError;
use rcnet::RcNet;
use tensor::Mat;

/// Resistance normalization constant: adjacency weights are
/// `R / R_SCALE` so typical segment resistances land near 0.05–1.
pub const R_SCALE: f32 = 120.0;

/// One wire path: the node indices it visits and its raw path features.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSpec {
    /// Indices (into the net's node list) of the path's nodes, source →
    /// sink.
    pub nodes: Vec<usize>,
    /// `1 x d_h` path feature row (TABLE I path features).
    pub features: Mat,
}

/// A net packed for the graph models.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphBatch {
    /// `n x d_x` node features.
    pub x: Mat,
    /// `n x n` resistance-weighted adjacency (eq. (1) aggregation).
    pub adj_res: Mat,
    /// `n x n` row-normalized binary adjacency (GraphSage mean
    /// aggregation).
    pub adj_mean: Mat,
    /// `n x n` symmetrically normalized adjacency with self-loops
    /// (GCN/GCNII propagation).
    pub adj_gcn: Mat,
    /// `n x n` attention mask: 0 on edges and the diagonal, a large
    /// negative value elsewhere (GAT masked softmax).
    pub adj_mask: Mat,
    /// Wire paths, aligned with `net.paths()`.
    pub paths: Vec<PathSpec>,
    /// Optional `p x 2` training targets: column 0 = slew, column 1 =
    /// delay (normalized units).
    pub targets: Option<Mat>,
}

impl GraphBatch {
    /// Builds a batch from a net's connectivity plus externally computed
    /// node features, path features, and optional targets.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadBatch`] when dimensions are inconsistent
    /// with the net (wrong node count, path count, or target shape).
    pub fn build(
        net: &RcNet,
        x: Mat,
        path_features: Vec<Mat>,
        targets: Option<Mat>,
    ) -> Result<Self, GnnError> {
        let n = net.node_count();
        if x.rows() != n {
            return Err(GnnError::BadBatch(format!(
                "node features have {} rows, net has {n} nodes",
                x.rows()
            )));
        }
        let p = net.paths().len();
        if path_features.len() != p {
            return Err(GnnError::BadBatch(format!(
                "{} path feature rows for {p} paths",
                path_features.len()
            )));
        }
        for (i, f) in path_features.iter().enumerate() {
            if f.rows() != 1 {
                return Err(GnnError::BadBatch(format!(
                    "path {i} features must be a single row"
                )));
            }
            if f.cols() != path_features[0].cols() {
                return Err(GnnError::BadBatch("ragged path features".into()));
            }
        }
        if let Some(t) = &targets {
            if t.shape() != (p, 2) {
                return Err(GnnError::BadBatch(format!(
                    "targets must be {p}x2, got {}x{}",
                    t.rows(),
                    t.cols()
                )));
            }
        }

        let mut adj_res = Mat::zeros(n, n);
        let mut binary = Mat::zeros(n, n);
        for (_, e) in net.iter_edges() {
            let (a, b) = (e.a.index(), e.b.index());
            let w = e.res.value() as f32 / R_SCALE;
            // Parallel resistors accumulate.
            adj_res.set(a, b, adj_res.get(a, b) + w);
            adj_res.set(b, a, adj_res.get(b, a) + w);
            binary.set(a, b, 1.0);
            binary.set(b, a, 1.0);
        }

        // Row-normalized mean aggregation.
        let mut adj_mean = binary.clone();
        for r in 0..n {
            let deg: f32 = (0..n).map(|c| adj_mean.get(r, c)).sum();
            if deg > 0.0 {
                for c in 0..n {
                    adj_mean.set(r, c, adj_mean.get(r, c) / deg);
                }
            }
        }

        // Symmetric normalization with self-loops: D^-1/2 (A+I) D^-1/2.
        let mut adj_gcn = binary.clone();
        for i in 0..n {
            adj_gcn.set(i, i, 1.0);
        }
        let deg: Vec<f32> = (0..n)
            .map(|r| (0..n).map(|c| adj_gcn.get(r, c)).sum::<f32>())
            .collect();
        for r in 0..n {
            for c in 0..n {
                let v = adj_gcn.get(r, c);
                if v != 0.0 {
                    adj_gcn.set(r, c, v / (deg[r] * deg[c]).sqrt());
                }
            }
        }

        // GAT mask: 0 where attention is allowed (edges + self), -1e9
        // elsewhere.
        let mut adj_mask = Mat::full(n, n, -1e9);
        for r in 0..n {
            adj_mask.set(r, r, 0.0);
            for c in 0..n {
                if binary.get(r, c) != 0.0 {
                    adj_mask.set(r, c, 0.0);
                }
            }
        }

        let paths = net
            .paths()
            .iter()
            .zip(path_features)
            .map(|(p, features)| PathSpec {
                nodes: p.nodes.iter().map(|n| n.index()).collect(),
                features,
            })
            .collect();

        Ok(GraphBatch {
            x,
            adj_res,
            adj_mean,
            adj_gcn,
            adj_mask,
            paths,
            targets,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }

    /// Node feature dimension.
    pub fn node_dim(&self) -> usize {
        self.x.cols()
    }

    /// Path feature dimension.
    pub fn path_dim(&self) -> usize {
        self.paths.first().map_or(0, |p| p.features.cols())
    }

    /// Number of wire paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn diamond() -> RcNet {
        let mut b = RcNetBuilder::new("d");
        let s = b.source("s", Farads(1e-15));
        let a = b.internal("a", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, a, Ohms(60.0));
        b.resistor(a, k, Ohms(60.0));
        b.resistor(s, k, Ohms(120.0));
        b.build().unwrap()
    }

    fn build_ok(net: &RcNet) -> GraphBatch {
        let n = net.node_count();
        let x = Mat::full(n, 3, 0.5);
        let pf = net
            .paths()
            .iter()
            .map(|_| Mat::row_vector(vec![1.0, 2.0]))
            .collect();
        GraphBatch::build(net, x, pf, None).unwrap()
    }

    #[test]
    fn adjacency_variants_consistent() {
        let net = diamond();
        let b = build_ok(&net);
        let n = net.node_count();
        assert_eq!(b.node_count(), n);
        assert_eq!(b.node_dim(), 3);
        assert_eq!(b.path_dim(), 2);
        assert_eq!(b.path_count(), 1);

        // adj_res symmetric, weighted by normalized resistance.
        for r in 0..n {
            for c in 0..n {
                assert_eq!(b.adj_res.get(r, c), b.adj_res.get(c, r));
            }
        }
        let s = net.source().index();
        let k = net.node_by_name("k").unwrap().index();
        assert!((b.adj_res.get(s, k) - 1.0).abs() < 1e-6); // 120/120

        // adj_mean rows sum to 1 for connected nodes.
        for r in 0..n {
            let sum: f32 = (0..n).map(|c| b.adj_mean.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }

        // adj_gcn symmetric with self-loops.
        for r in 0..n {
            assert!(b.adj_gcn.get(r, r) > 0.0);
        }

        // mask: diagonal open, edges open, everything in a diamond is
        // connected so check an explicit non-edge in a path graph instead.
        assert_eq!(b.adj_mask.get(s, s), 0.0);
        assert_eq!(b.adj_mask.get(s, k), 0.0);
    }

    #[test]
    fn mask_blocks_non_edges() {
        let mut bld = RcNetBuilder::new("chain");
        let s = bld.source("s", Farads(1e-15));
        let m = bld.internal("m", Farads(1e-15));
        let k = bld.sink("k", Farads(1e-15));
        bld.resistor(s, m, Ohms(10.0));
        bld.resistor(m, k, Ohms(10.0));
        let net = bld.build().unwrap();
        let b = build_ok(&net);
        assert!(b.adj_mask.get(s.index(), k.index()) < -1e8);
        assert_eq!(b.adj_mask.get(s.index(), m.index()), 0.0);
    }

    #[test]
    fn validation_rejects_inconsistency() {
        let net = diamond();
        let bad_x = Mat::zeros(net.node_count() + 1, 3);
        assert!(GraphBatch::build(&net, bad_x, vec![Mat::row_vector(vec![1.0])], None).is_err());

        let x = Mat::zeros(net.node_count(), 3);
        assert!(GraphBatch::build(&net, x.clone(), vec![], None).is_err());

        let pf = vec![Mat::zeros(2, 2)];
        assert!(GraphBatch::build(&net, x.clone(), pf, None).is_err());

        let pf = vec![Mat::row_vector(vec![1.0])];
        let bad_t = Some(Mat::zeros(3, 2));
        assert!(GraphBatch::build(&net, x, pf, bad_t).is_err());
    }

    #[test]
    fn paths_record_node_indices() {
        let net = diamond();
        let b = build_ok(&net);
        let p = &b.paths[0];
        assert_eq!(p.nodes.first(), Some(&net.source().index()));
        assert_eq!(
            p.nodes.last(),
            Some(&net.node_by_name("k").unwrap().index())
        );
    }
}
