//! Tape-free packed-batch training: analytic backward through the
//! segment-packed kernels.
//!
//! The training-side twin of [`crate::infer`]: where PR 7 compiled the
//! GNNTrans forward pass into arena kernels over one tall node matrix,
//! [`PackedTrainer`] adds the hand-derived backward pass of the full
//! stack (WSAGE layers, multi-head attention with per-segment masked
//! softmax, pooling, layer norm, slew/delay heads) using the
//! [`tensor::grad`] kernels — one tall GEMM per layer in both
//! directions, no tape construction, no per-graph allocation after
//! warm-up.
//!
//! # Accumulation-order contract
//!
//! [`crate::train`] promises bit-reproducible training at any thread
//! count, and keeps the tape as the gradient oracle. Both hinge on
//! *where* floating-point sums happen, so the backward here mirrors the
//! tape's reverse node walk exactly:
//!
//! * per attention layer: residual grad first, then heads in **reverse**
//!   order, and within a head the inner-input contributions in `V`, `K`,
//!   `Q` order — the reverse of the forward's `Q`, `K`, `V` node
//!   creation;
//! * per WSAGE layer: the aggregation path `A_sᵀ · dAgg` lands in the
//!   input gradient **before** the self-term `dPre · W1ᵀ`;
//! * pooling scatters path gradients in **reverse** global path order,
//!   node indices ascending within a path;
//! * per-graph loss seeds use the tape's exact `2/n · (pred − target)`
//!   expression, so a pack of one graph reproduces the tape gradient
//!   value-for-value, and the per-graph losses are bit-identical to the
//!   tape backend for any pack composition.
//!
//! The one place a multi-graph pack departs from per-graph tapes is the
//! weight gradients: the tape sums K per-graph `Xᵀ·G` products, while
//! the packed backward computes one tall `Xᵀ·G` over all K graphs'
//! rows. The sums contain identical terms in a different grouping, so
//! they agree to ~1e-7 relative — pinned ≤ 1e-6 by proptest, with the
//! tape kept as the oracle (`TrainBackend::Tape`).

use crate::batch::GraphBatch;
use crate::models::{GnnTrans, GnnTransConfig};
use crate::GnnError;
use std::cell::RefCell;
use std::time::Instant;
use tensor::grad as tg;
use tensor::infer::{self as ops, Arena};
use tensor::{Mat, ParamSet};

/// Parameter ids of one affine layer.
#[derive(Debug, Clone, Copy)]
struct AffineIds {
    w: usize,
    b: usize,
}

/// Parameter ids of one eq.-(1) layer (`W2`'s bias is unused).
#[derive(Debug, Clone, Copy)]
struct SageIds {
    w1: AffineIds,
    w2: usize,
}

/// Parameter ids of one eqs.-(2)–(3) layer. Q/K/V biases are registered
/// by the model but never used (`forward_no_bias`), so they carry no
/// gradient and are absent here.
#[derive(Debug, Clone)]
struct AttnIds {
    wq: Vec<usize>,
    wk: Vec<usize>,
    wv: Vec<usize>,
    w3: AffineIds,
    head_dim: usize,
    norm: bool,
}

/// The GNNTrans stack compiled to parameter *ids* for tape-free
/// training.
///
/// Unlike [`crate::infer::InferenceModel`], which snapshots weight
/// values, the trainer stores only ids: every [`PackedTrainer::step`]
/// reads the current weights from the live [`ParamSet`], so the same
/// compiled trainer serves the whole training run while the optimizer
/// mutates parameters between steps.
#[derive(Debug, Clone)]
pub struct PackedTrainer {
    cfg: GnnTransConfig,
    input: AffineIds,
    gnn: Vec<SageIds>,
    attn: Vec<AttnIds>,
    slew: Vec<AffineIds>,
    delay: Vec<AffineIds>,
}

/// Result of one packed forward/backward pass over K graphs.
#[derive(Debug, Clone)]
pub struct PackedStep {
    /// Per-graph MSE losses, in pack order — bit-identical to the
    /// per-graph tape losses.
    pub losses: Vec<f32>,
    /// Summed parameter gradients in tape `param_grads` order (forward
    /// usage order), ready for the fixed-order chunk reduction.
    pub grads: Vec<(usize, Mat)>,
    /// Arena footprint after the step, bytes.
    pub arena_bytes: usize,
}

/// Reusable per-thread workspace: the matrix arena plus the segment
/// offset tables, so repeated steps allocate nothing once warm.
#[derive(Debug, Default)]
pub struct TrainScratch {
    arena: Arena,
    node_offsets: Vec<usize>,
    path_offsets: Vec<usize>,
    path_node_offsets: Vec<usize>,
    path_nodes: Vec<usize>,
}

impl TrainScratch {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        TrainScratch::default()
    }

    /// Bytes held by the matrix arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.bytes()
    }
}

thread_local! {
    static SCRATCH: RefCell<TrainScratch> = RefCell::new(TrainScratch::new());
}

/// Runs `f` with this thread's persistent [`TrainScratch`] — the
/// training loop's per-lane workspace.
pub fn with_scratch<R>(f: impl FnOnce(&mut TrainScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Mutable gradient matrix for a parameter id.
///
/// Linear scan: the grads vector holds a few dozen entries and is built
/// in forward usage order, exactly like the tape's `param_grads`.
fn grad_of(grads: &mut [(usize, Mat)], id: usize) -> &mut Mat {
    &mut grads
        .iter_mut()
        .find(|(i, _)| *i == id)
        .expect("parameter registered in grads vector")
        .1
}

/// Bucket bounds for small-count histograms: factor-2 from 1 to 2048.
fn count_bounds() -> Vec<f64> {
    obs::exponential_bounds(1.0, 2.0, 12)
}

/// Per-head forward stash for one attention layer.
#[derive(Debug)]
struct HeadStash {
    q: Mat,
    key: Mat,
    v: Mat,
    /// Post-softmax attention probabilities, one `ns x ns` matrix per
    /// segment.
    probs: Vec<Mat>,
}

/// Per-layer forward stash for one attention layer.
#[derive(Debug)]
struct AttnStash {
    /// Layer-norm output when `norm` is on (`None` = input used raw).
    inner: Option<Mat>,
    concat: Mat,
    heads: Vec<HeadStash>,
}

impl PackedTrainer {
    /// Compiles `model`'s layer structure (parameter ids only).
    pub fn compile(model: &GnnTrans) -> Self {
        let affine = |l: &crate::layers::Linear| AffineIds {
            w: l.w_id(),
            b: l.b_id(),
        };
        PackedTrainer {
            cfg: model.config().clone(),
            input: affine(model.input_proj()),
            gnn: model
                .gnn_stack()
                .iter()
                .map(|l| SageIds {
                    w1: affine(l.w1()),
                    w2: l.w2().w_id(),
                })
                .collect(),
            attn: model
                .attn_stack()
                .iter()
                .map(|l| AttnIds {
                    wq: l.wq().iter().map(|p| p.w_id()).collect(),
                    wk: l.wk().iter().map(|p| p.w_id()).collect(),
                    wv: l.wv().iter().map(|p| p.w_id()).collect(),
                    w3: affine(l.w3()),
                    head_dim: l.head_dim(),
                    norm: l.norm(),
                })
                .collect(),
            slew: model.slew_head().layers().iter().map(affine).collect(),
            delay: model.delay_head().layers().iter().map(affine).collect(),
        }
    }

    /// The compiled configuration.
    pub fn config(&self) -> &GnnTransConfig {
        &self.cfg
    }

    /// One packed forward + analytic backward over `graphs`, returning
    /// per-graph losses and the summed parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadBatch`] when `graphs` is empty, a graph
    /// lacks targets, feature widths disagree with the compiled
    /// configuration, or a path references an out-of-range node. All
    /// validation happens before any arena buffer is taken, so a failed
    /// call never grows the workspace.
    pub fn step(
        &self,
        params: &ParamSet,
        graphs: &[&GraphBatch],
        scratch: &mut TrainScratch,
    ) -> Result<PackedStep, GnnError> {
        if graphs.is_empty() {
            return Err(GnnError::BadBatch("cannot pack zero graphs".into()));
        }
        for (i, g) in graphs.iter().enumerate() {
            if g.node_count() == 0 {
                return Err(GnnError::BadBatch(format!("graph {i} has no nodes")));
            }
            if g.path_count() == 0 {
                return Err(GnnError::BadBatch(format!("graph {i} has no paths")));
            }
            if g.node_dim() != self.cfg.node_dim {
                return Err(GnnError::BadBatch(format!(
                    "graph {i} node dim {} != model node dim {}",
                    g.node_dim(),
                    self.cfg.node_dim
                )));
            }
            if self.cfg.path_features && g.path_dim() != self.cfg.path_dim {
                return Err(GnnError::BadBatch(format!(
                    "graph {i} path dim {} != model path dim {}",
                    g.path_dim(),
                    self.cfg.path_dim
                )));
            }
            let targets = g
                .targets
                .as_ref()
                .ok_or_else(|| GnnError::BadBatch(format!("graph {i} has no targets")))?;
            if targets.shape() != (g.path_count(), 2) {
                return Err(GnnError::BadBatch(format!(
                    "graph {i} target shape {:?} != ({}, 2)",
                    targets.shape(),
                    g.path_count()
                )));
            }
            for (j, p) in g.paths.iter().enumerate() {
                if let Some(&idx) = p.nodes.iter().find(|&&idx| idx >= g.node_count()) {
                    return Err(GnnError::BadBatch(format!(
                        "graph {i} path {j} references node {idx} of {}",
                        g.node_count()
                    )));
                }
            }
        }

        let fwd_start = Instant::now();
        let TrainScratch {
            arena,
            node_offsets,
            path_offsets,
            path_node_offsets,
            path_nodes,
        } = scratch;

        // Segment offset tables (reused allocations).
        node_offsets.clear();
        path_offsets.clear();
        path_node_offsets.clear();
        path_nodes.clear();
        let mut total_nodes = 0usize;
        let mut total_paths = 0usize;
        for g in graphs {
            node_offsets.push(total_nodes);
            path_offsets.push(total_paths);
            total_nodes += g.node_count();
            total_paths += g.path_count();
        }
        node_offsets.push(total_nodes);
        path_offsets.push(total_paths);
        for (s, g) in graphs.iter().enumerate() {
            let n0 = node_offsets[s];
            for p in &g.paths {
                path_node_offsets.push(path_nodes.len());
                path_nodes.extend(p.nodes.iter().map(|&idx| n0 + idx));
            }
        }
        path_node_offsets.push(path_nodes.len());

        let k_graphs = graphs.len();
        let n = total_nodes;
        let p = total_paths;
        let hidden = self.cfg.hidden;
        let pd = hidden + if self.cfg.path_features { self.cfg.path_dim } else { 0 };
        let nodes_of = |j: usize| &path_nodes[path_node_offsets[j]..path_node_offsets[j + 1]];
        let adj_of = |s: usize| {
            if self.cfg.weighted_aggregation {
                &graphs[s].adj_res
            } else {
                &graphs[s].adj_mean
            }
        };

        // ---- Forward (identical op sequence to the inference engine,
        // ---- with activations stashed for the backward walk). ----

        let mut x_pack = arena.take(n, self.cfg.node_dim);
        for (s, g) in graphs.iter().enumerate() {
            let n0 = node_offsets[s];
            let w = self.cfg.node_dim;
            for r in 0..g.node_count() {
                x_pack.as_mut_slice()[(n0 + r) * w..(n0 + r + 1) * w].copy_from_slice(g.x.row(r));
            }
        }
        let pf_pack = if self.cfg.path_features {
            let mut pf = arena.take(p, self.cfg.path_dim);
            let w = self.cfg.path_dim;
            for (s, g) in graphs.iter().enumerate() {
                let p0 = path_offsets[s];
                for (j, path) in g.paths.iter().enumerate() {
                    pf.as_mut_slice()[(p0 + j) * w..(p0 + j + 1) * w]
                        .copy_from_slice(path.features.row(0));
                }
            }
            Some(pf)
        } else {
            None
        };

        // Input projection + ReLU.
        let mut h0 = arena.take(n, hidden);
        ops::matmul_into(&x_pack, params.get(self.input.w), &mut h0);
        ops::add_bias_rows(&mut h0, params.get(self.input.b));
        ops::relu_inplace(&mut h0);
        // hs[i] = activation entering layer i of the combined stack:
        // hs[0] after input, hs[1..=L1] after each GNN layer,
        // hs[L1+1..=L1+L2] after each attention layer.
        let mut hs: Vec<Mat> = Vec::with_capacity(1 + self.gnn.len() + self.attn.len());
        hs.push(h0);

        // L1 edge-weighted GNN layers (eq. 1).
        let mut aggs: Vec<Mat> = Vec::with_capacity(self.gnn.len());
        for layer in &self.gnn {
            let h = hs.last().expect("input activation present");
            let mut self_term = arena.take(n, hidden);
            ops::matmul_into(h, params.get(layer.w1.w), &mut self_term);
            ops::add_bias_rows(&mut self_term, params.get(layer.w1.b));
            let mut agg = arena.take(n, hidden);
            for (s, &row0) in node_offsets.iter().enumerate().take(k_graphs) {
                ops::matmul_seg_into(adj_of(s), h, row0, &mut agg, row0);
            }
            let mut neigh = arena.take(n, hidden);
            ops::matmul_into(&agg, params.get(layer.w2), &mut neigh);
            ops::add_assign(&mut self_term, &neigh);
            ops::relu_inplace(&mut self_term);
            arena.give(neigh);
            aggs.push(agg);
            hs.push(self_term);
        }

        // L2 self-attention layers (eqs. 2-3).
        let mut attn_stash: Vec<AttnStash> = Vec::with_capacity(self.attn.len());
        for layer in &self.attn {
            let h = hs.last().expect("activation present");
            let inner_mat = if layer.norm {
                let mut buf = arena.take(n, hidden);
                ops::layer_norm_rows_into(h, 1e-5, &mut buf);
                Some(buf)
            } else {
                None
            };
            let inner: &Mat = inner_mat.as_ref().unwrap_or(h);
            let scale = 1.0 / (layer.head_dim as f32).sqrt();
            let mut concat = arena.take(n, hidden);
            let mut head_out = arena.take(n, layer.head_dim);
            let mut heads: Vec<HeadStash> = Vec::with_capacity(layer.wq.len());
            for k in 0..layer.wq.len() {
                let mut q = arena.take(n, layer.head_dim);
                let mut key = arena.take(n, layer.head_dim);
                let mut v = arena.take(n, layer.head_dim);
                ops::matmul_into(inner, params.get(layer.wq[k]), &mut q);
                ops::matmul_into(inner, params.get(layer.wk[k]), &mut key);
                ops::matmul_into(inner, params.get(layer.wv[k]), &mut v);
                let mut probs: Vec<Mat> = Vec::with_capacity(k_graphs);
                for s in 0..k_graphs {
                    let n0 = node_offsets[s];
                    let ns = node_offsets[s + 1] - n0;
                    let mut kt = arena.take(layer.head_dim, ns);
                    let mut scores = arena.take(ns, ns);
                    ops::transpose_rows_into(&key, n0, ns, &mut kt);
                    ops::matmul_rows_into(&q, n0, ns, &kt, &mut scores, 0);
                    ops::scale_inplace(&mut scores, scale);
                    ops::softmax_rows_inplace(&mut scores);
                    ops::matmul_seg_into(&scores, &v, n0, &mut head_out, n0);
                    arena.give(kt);
                    probs.push(scores);
                }
                ops::copy_cols(&mut concat, k * layer.head_dim, &head_out);
                heads.push(HeadStash { q, key, v, probs });
            }
            arena.give(head_out);
            let mut projected = arena.take(n, hidden);
            ops::matmul_into(&concat, params.get(layer.w3.w), &mut projected);
            ops::add_bias_rows(&mut projected, params.get(layer.w3.b));
            ops::add_assign(&mut projected, h);
            attn_stash.push(AttnStash {
                inner: inner_mat,
                concat,
                heads,
            });
            hs.push(projected);
        }

        // Pooling (eq. 4).
        let mut f = arena.take(p, pd);
        {
            let h = hs.last().expect("activation present");
            let mut pooled = arena.take(p, hidden);
            for j in 0..p {
                ops::mean_rows_into(h, nodes_of(j), &mut pooled, j);
            }
            ops::copy_cols(&mut f, 0, &pooled);
            if let Some(pf) = &pf_pack {
                ops::copy_cols(&mut f, hidden, pf);
            }
            arena.give(pooled);
        }

        // Eq. (5) slew head, eq. (6) delay head conditioned on slew.
        let acts_s = self.mlp_forward(params, &self.slew, &f, arena);
        let slew = acts_s.last().expect("slew head non-empty");
        let mut delay_in = arena.take(p, pd + 1);
        ops::copy_cols(&mut delay_in, 0, &f);
        ops::copy_cols(&mut delay_in, pd, slew);
        let acts_d = self.mlp_forward(params, &self.delay, &delay_in, arena);
        let delay = acts_d.last().expect("delay head non-empty");

        // ---- Per-graph losses + loss seeds (the tape's exact MSE
        // ---- backward expression, per graph). ----
        let mut losses = Vec::with_capacity(k_graphs);
        let mut d_slew = arena.take(p, 1);
        let mut d_delay = arena.take(p, 1);
        for s in 0..k_graphs {
            let (p0, p1) = (path_offsets[s], path_offsets[s + 1]);
            let targets = graphs[s].targets.as_ref().expect("validated above");
            let n_l = ((p1 - p0) * 2) as f32;
            let mut acc = 0.0f32;
            for (r_local, r) in (p0..p1).enumerate() {
                let ds = slew.get(r, 0) - targets.get(r_local, 0);
                acc += ds * ds;
                let dd = delay.get(r, 0) - targets.get(r_local, 1);
                acc += dd * dd;
            }
            losses.push(acc / n_l);
            let seed_scale = 2.0 / n_l;
            for (r_local, r) in (p0..p1).enumerate() {
                d_slew.set(r, 0, seed_scale * (slew.get(r, 0) - targets.get(r_local, 0)));
                d_delay.set(r, 0, seed_scale * (delay.get(r, 0) - targets.get(r_local, 1)));
            }
        }
        let fwd_seconds = fwd_start.elapsed().as_secs_f64();

        // ---- Backward (reverse of the forward walk; see module docs
        // ---- for the accumulation-order contract). ----
        let bwd_start = Instant::now();

        // Gradient matrices in tape param_grads order = forward usage
        // order (Q/K/V biases never enter the forward, so no entries).
        let mut grads: Vec<(usize, Mat)> = Vec::new();
        let mut reg = |id: usize| {
            let (r, c) = params.get(id).shape();
            grads.push((id, Mat::zeros(r, c)));
        };
        reg(self.input.w);
        reg(self.input.b);
        for layer in &self.gnn {
            reg(layer.w1.w);
            reg(layer.w1.b);
            reg(layer.w2);
        }
        for layer in &self.attn {
            for k in 0..layer.wq.len() {
                reg(layer.wq[k]);
                reg(layer.wk[k]);
                reg(layer.wv[k]);
            }
            reg(layer.w3.w);
            reg(layer.w3.b);
        }
        for l in &self.slew {
            reg(l.w);
            reg(l.b);
        }
        for l in &self.delay {
            reg(l.w);
            reg(l.b);
        }

        // Delay head backward; its input grad splits into dF and the
        // slew-seed addition (the tape's concat backward order: the
        // delay head's nodes come last, so they unwind first).
        let mut d_delay_in = arena.take(p, pd + 1);
        d_delay_in.as_mut_slice().fill(0.0);
        self.mlp_backward(params, &self.delay, &delay_in, &acts_d, d_delay, &mut d_delay_in, &mut grads, arena);
        let mut d_f = arena.take(p, pd);
        tg::slice_cols_into(&d_delay_in, 0, &mut d_f);
        tg::slice_cols_acc(&d_delay_in, pd, &mut d_slew);
        arena.give(d_delay_in);

        // Slew head backward accumulates its input grad onto dF, which
        // already holds the delay-head slice — the tape's order.
        self.mlp_backward(params, &self.slew, &f, &acts_s, d_slew, &mut d_f, &mut grads, arena);

        // Pooling backward: reverse global path order, ascending node
        // indices within a path (the tape's reverse node walk).
        let d_pooled_holder;
        let d_pooled: &Mat = if self.cfg.path_features {
            let mut buf = arena.take(p, hidden);
            tg::slice_cols_into(&d_f, 0, &mut buf);
            arena.give(std::mem::replace(&mut d_f, Mat::zeros(0, 0)));
            d_pooled_holder = buf;
            &d_pooled_holder
        } else {
            d_pooled_holder = d_f;
            &d_pooled_holder
        };
        let mut g_cur = arena.take(n, hidden);
        g_cur.as_mut_slice().fill(0.0);
        for j in (0..p).rev() {
            tg::mean_rows_backward_acc(d_pooled, j, nodes_of(j), &mut g_cur);
        }
        arena.give(d_pooled_holder);

        // Attention layers, reverse.
        for (j, layer) in self.attn.iter().enumerate().rev() {
            let stash = &attn_stash[j];
            let h_in = &hs[self.gnn.len() + j];
            let inner: &Mat = stash.inner.as_ref().unwrap_or(h_in);
            let scale = 1.0 / (layer.head_dim as f32).sqrt();

            // Residual: g_cur already holds the output grad, which is
            // also the input grad's first contribution — leave it in
            // place and accumulate the attention path on top.
            tg::add_bias_backward(&g_cur, grad_of(&mut grads, layer.w3.b));
            let mut d_concat = arena.take(n, hidden);
            d_concat.as_mut_slice().fill(0.0);
            tg::matmul_nt_acc(&g_cur, params.get(layer.w3.w), &mut d_concat);
            tg::matmul_tn_acc(&stash.concat, &g_cur, grad_of(&mut grads, layer.w3.w));

            // With norm, inner-input grads collect separately and flow
            // through the layer-norm backward at the end; without it,
            // they accumulate straight onto g_cur after the residual —
            // both exactly the tape's ordering.
            let mut d_inner_buf = if layer.norm {
                let mut buf = arena.take(n, hidden);
                buf.as_mut_slice().fill(0.0);
                Some(buf)
            } else {
                None
            };

            for k in (0..layer.wq.len()).rev() {
                let head = &stash.heads[k];
                let hd = layer.head_dim;
                let mut d_head = arena.take(n, hd);
                tg::slice_cols_into(&d_concat, k * hd, &mut d_head);
                let mut d_q = arena.take(n, hd);
                let mut d_key = arena.take(n, hd);
                let mut d_v = arena.take(n, hd);
                for s in 0..k_graphs {
                    let n0 = node_offsets[s];
                    let ns = node_offsets[s + 1] - n0;
                    let probs = &head.probs[s];
                    // dP = dHeadOut_s · V_sᵀ ; dV_s = P_sᵀ · dHeadOut_s.
                    let mut d_p = arena.take(ns, ns);
                    tg::matmul_nt_win_into(&d_head, &head.v, n0, ns, &mut d_p);
                    tg::matmul_tn_seg_into(probs, &d_head, n0, &mut d_v, n0);
                    // Masked-softmax + scale backward on the segment.
                    tg::softmax_rows_backward_inplace(&mut d_p, probs);
                    ops::scale_inplace(&mut d_p, scale);
                    // dQ_s = dScores · Ktᵀ with Kt recomputed, exactly
                    // as the tape consumes its transpose node.
                    let mut kt = arena.take(hd, ns);
                    ops::transpose_rows_into(&head.key, n0, ns, &mut kt);
                    tg::matmul_nt_seg_into(&d_p, &kt, &mut d_q, n0);
                    // dKt = Q_sᵀ · dScores, scattered back through the
                    // transpose into the tall dK.
                    let mut d_kt = arena.take(hd, ns);
                    tg::matmul_tn_win_into(&head.q, n0, ns, &d_p, &mut d_kt);
                    tg::transpose_seg_into(&d_kt, &mut d_key, n0);
                    arena.give(d_kt);
                    arena.give(kt);
                    arena.give(d_p);
                }
                // Inner-input contributions in V, K, Q order (reverse
                // of the forward's Q, K, V creation).
                let d_inner: &mut Mat = d_inner_buf.as_mut().unwrap_or(&mut g_cur);
                tg::matmul_nt_acc(&d_v, params.get(layer.wv[k]), d_inner);
                tg::matmul_nt_acc(&d_key, params.get(layer.wk[k]), d_inner);
                tg::matmul_nt_acc(&d_q, params.get(layer.wq[k]), d_inner);
                tg::matmul_tn_acc(inner, &d_v, grad_of(&mut grads, layer.wv[k]));
                tg::matmul_tn_acc(inner, &d_key, grad_of(&mut grads, layer.wk[k]));
                tg::matmul_tn_acc(inner, &d_q, grad_of(&mut grads, layer.wq[k]));
                arena.give(d_v);
                arena.give(d_key);
                arena.give(d_q);
                arena.give(d_head);
            }
            arena.give(d_concat);
            if let Some(d_inner) = d_inner_buf.take() {
                tg::layer_norm_rows_backward_acc(h_in, inner, &d_inner, 1e-5, &mut g_cur);
                arena.give(d_inner);
            }
        }

        // GNN layers, reverse.
        for (i, layer) in self.gnn.iter().enumerate().rev() {
            let h_in = &hs[i];
            let h_out = &hs[i + 1];
            tg::relu_backward_inplace(&mut g_cur, h_out);
            // Neighbor term: dAgg = G · W2ᵀ, then the aggregation
            // backward A_sᵀ · dAgg_s lands in the input grad first.
            let mut d_agg = arena.take(n, hidden);
            d_agg.as_mut_slice().fill(0.0);
            tg::matmul_nt_acc(&g_cur, params.get(layer.w2), &mut d_agg);
            tg::matmul_tn_acc(&aggs[i], &g_cur, grad_of(&mut grads, layer.w2));
            let mut g_next = arena.take(n, hidden);
            for (s, &row0) in node_offsets.iter().enumerate().take(k_graphs) {
                tg::matmul_tn_seg_into(adj_of(s), &d_agg, row0, &mut g_next, row0);
            }
            arena.give(d_agg);
            // Self term: bias column sums, then dPre · W1ᵀ on top of
            // the aggregation contribution.
            tg::add_bias_backward(&g_cur, grad_of(&mut grads, layer.w1.b));
            tg::matmul_nt_acc(&g_cur, params.get(layer.w1.w), &mut g_next);
            tg::matmul_tn_acc(h_in, &g_cur, grad_of(&mut grads, layer.w1.w));
            arena.give(std::mem::replace(&mut g_cur, g_next));
        }

        // Input projection backward.
        tg::relu_backward_inplace(&mut g_cur, &hs[0]);
        tg::add_bias_backward(&g_cur, grad_of(&mut grads, self.input.b));
        tg::matmul_tn_acc(&x_pack, &g_cur, grad_of(&mut grads, self.input.w));
        arena.give(g_cur);

        // Return every stash to the arena.
        arena.give(x_pack);
        if let Some(pf) = pf_pack {
            arena.give(pf);
        }
        for m in hs {
            arena.give(m);
        }
        for m in aggs {
            arena.give(m);
        }
        for stash in attn_stash {
            if let Some(m) = stash.inner {
                arena.give(m);
            }
            arena.give(stash.concat);
            for head in stash.heads {
                arena.give(head.q);
                arena.give(head.key);
                arena.give(head.v);
                for m in head.probs {
                    arena.give(m);
                }
            }
        }
        arena.give(f);
        arena.give(delay_in);
        for m in acts_s {
            arena.give(m);
        }
        for m in acts_d {
            arena.give(m);
        }

        let arena_bytes = arena.bytes();
        obs::histogram_with("train.batch_graphs", None, count_bounds).observe(k_graphs as f64);
        obs::histogram_with("train.batch_nodes", None, count_bounds).observe(n as f64);
        obs::histogram("train.forward_seconds").observe(fwd_seconds);
        obs::histogram("train.backward_seconds").observe(bwd_start.elapsed().as_secs_f64());
        obs::gauge("train.arena_bytes").set(arena_bytes as f64);
        Ok(PackedStep {
            losses,
            grads,
            arena_bytes,
        })
    }

    /// Forward of one MLP head, stashing every layer output (post-ReLU
    /// for hidden layers) for the backward walk.
    fn mlp_forward(
        &self,
        params: &ParamSet,
        layers: &[AffineIds],
        x: &Mat,
        arena: &mut Arena,
    ) -> Vec<Mat> {
        let rows = x.rows();
        let mut acts: Vec<Mat> = Vec::with_capacity(layers.len());
        for (i, l) in layers.iter().enumerate() {
            let w = params.get(l.w);
            let mut out = arena.take(rows, w.cols());
            {
                let input = acts.last().unwrap_or(x);
                ops::matmul_into(input, w, &mut out);
            }
            ops::add_bias_rows(&mut out, params.get(l.b));
            if i + 1 < layers.len() {
                ops::relu_inplace(&mut out);
            }
            acts.push(out);
        }
        acts
    }

    /// Backward of one MLP head. Consumes the output gradient `g_out`
    /// (returned to the arena) and **accumulates** the input gradient
    /// onto `d_input`.
    #[allow(clippy::too_many_arguments)]
    fn mlp_backward(
        &self,
        params: &ParamSet,
        layers: &[AffineIds],
        input: &Mat,
        acts: &[Mat],
        g_out: Mat,
        d_input: &mut Mat,
        grads: &mut [(usize, Mat)],
        arena: &mut Arena,
    ) {
        let mut g_cur = g_out;
        for (i, l) in layers.iter().enumerate().rev() {
            let layer_in = if i == 0 { input } else { &acts[i - 1] };
            tg::add_bias_backward(&g_cur, grad_of(grads, l.b));
            tg::matmul_tn_acc(layer_in, &g_cur, grad_of(grads, l.w));
            if i == 0 {
                tg::matmul_nt_acc(&g_cur, params.get(l.w), d_input);
            } else {
                let w = params.get(l.w);
                let mut d_prev = arena.take(g_cur.rows(), w.rows());
                d_prev.as_mut_slice().fill(0.0);
                tg::matmul_nt_acc(&g_cur, w, &mut d_prev);
                tg::relu_backward_inplace(&mut d_prev, &acts[i - 1]);
                arena.give(std::mem::replace(&mut g_cur, d_prev));
            }
        }
        arena.give(g_cur);
    }
}

/// Hook point: [`GraphModel::packed_trainer`] is implemented for
/// [`GnnTrans`] here so baselines transparently keep the tape path.
impl GnnTrans {
    /// Compiles this model for packed-batch training.
    pub fn compile_trainer(&self) -> PackedTrainer {
        PackedTrainer::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::GraphModel;
    use crate::train::tape_graph_grads;
    use rcnet::{Farads, Ohms, RcNetBuilder};
    use tensor::Tape;

    fn cfg() -> GnnTransConfig {
        GnnTransConfig {
            node_dim: 3,
            path_dim: 2,
            hidden: 8,
            gnn_layers: 2,
            attn_layers: 2,
            heads: 2,
            mlp_hidden: 8,
            ..Default::default()
        }
    }

    fn chain_batch(seed: f32, nodes: usize) -> GraphBatch {
        let mut b = RcNetBuilder::new("n");
        let mut prev = b.source("s", Farads(1e-15));
        for i in 1..nodes - 1 {
            let node = b.internal(format!("m{i}"), Farads(1e-15));
            b.resistor(prev, node, Ohms(20.0 + i as f64));
            prev = node;
        }
        let k = b.sink("k", Farads(2e-15));
        b.resistor(prev, k, Ohms(35.0));
        let net = b.build().unwrap();
        let mut x = Mat::zeros(nodes, 3);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 * 0.7 + seed).sin()) * 0.5;
        }
        let paths = net.paths().len();
        let pf = (0..paths)
            .map(|i| Mat::row_vector(vec![0.1 * seed, 0.2 + i as f32]))
            .collect();
        let mut t = Mat::zeros(paths, 2);
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 * 0.3 + seed).cos()) * 0.4;
        }
        GraphBatch::build(&net, x, pf, Some(t)).unwrap()
    }

    /// Largest elementwise deviation relative to the matrices'
    /// infinity norms.
    fn rel_err(a: &Mat, b: &Mat) -> f32 {
        let mut num = 0.0f32;
        let mut den = 1e-12f32;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            num = num.max((x - y).abs());
            den = den.max(x.abs()).max(y.abs());
        }
        num / den
    }

    #[test]
    fn single_graph_pack_matches_tape_exactly() {
        let model = GnnTrans::new(&cfg(), 17);
        let trainer = PackedTrainer::compile(&model);
        let mut scratch = TrainScratch::new();
        for nodes in [3usize, 5, 9] {
            let batch = chain_batch(nodes as f32, nodes);
            let (tape_loss, tape_grads) = tape_graph_grads(&model, &batch);
            let step = trainer
                .step(model.param_set(), &[&batch], &mut scratch)
                .unwrap();
            assert_eq!(step.losses, vec![tape_loss], "{nodes}-node loss drifted");
            assert_eq!(step.grads.len(), tape_grads.len());
            for ((id_p, g_p), (id_t, g_t)) in step.grads.iter().zip(&tape_grads) {
                assert_eq!(id_p, id_t, "grad order drifted");
                assert_eq!(
                    g_p,
                    g_t,
                    "{nodes}-node grads for param {} drifted",
                    model.param_set().name(*id_p)
                );
            }
        }
    }

    #[test]
    fn variant_configs_match_tape_exactly() {
        let variant = GnnTransConfig {
            weighted_aggregation: false,
            attn_norm: false,
            path_features: false,
            ..cfg()
        };
        let model = GnnTrans::new(&variant, 23);
        let trainer = PackedTrainer::compile(&model);
        let mut scratch = TrainScratch::new();
        let batch = chain_batch(2.0, 6);
        let (tape_loss, tape_grads) = tape_graph_grads(&model, &batch);
        let step = trainer
            .step(model.param_set(), &[&batch], &mut scratch)
            .unwrap();
        assert_eq!(step.losses, vec![tape_loss]);
        for ((id_p, g_p), (_, g_t)) in step.grads.iter().zip(&tape_grads) {
            assert_eq!(g_p, g_t, "param {} drifted", model.param_set().name(*id_p));
        }
    }

    #[test]
    fn multi_graph_pack_matches_tape_sum_to_1e6() {
        let model = GnnTrans::new(&cfg(), 5);
        let trainer = PackedTrainer::compile(&model);
        let mut scratch = TrainScratch::new();
        let batches: Vec<GraphBatch> = (0..4).map(|i| chain_batch(i as f32, 3 + i * 2)).collect();
        let refs: Vec<&GraphBatch> = batches.iter().collect();
        let step = trainer
            .step(model.param_set(), &refs, &mut scratch)
            .unwrap();

        // Tape oracle: per-graph grads summed in pack order.
        let mut tape_sum: Vec<(usize, Mat)> = Vec::new();
        let mut tape_losses = Vec::new();
        for b in &batches {
            let (loss, grads) = tape_graph_grads(&model, b);
            tape_losses.push(loss);
            for (id, g) in grads {
                match tape_sum.iter_mut().find(|(i, _)| *i == id) {
                    Some((_, acc)) => acc.axpy(1.0, &g),
                    None => tape_sum.push((id, g)),
                }
            }
        }
        // Losses are bit-identical regardless of pack composition.
        assert_eq!(step.losses, tape_losses);
        // Weight grads regroup K per-graph sums into one tall GEMM:
        // equal to 1e-6 relative, the documented contract.
        for ((id_p, g_p), (id_t, g_t)) in step.grads.iter().zip(&tape_sum) {
            assert_eq!(id_p, id_t);
            let rel = rel_err(g_p, g_t);
            assert!(
                rel <= 1e-6,
                "param {} rel err {rel}",
                model.param_set().name(*id_p)
            );
        }
    }

    #[test]
    fn step_is_allocation_free_when_warm() {
        let model = GnnTrans::new(&cfg(), 9);
        let trainer = PackedTrainer::compile(&model);
        let mut scratch = TrainScratch::new();
        let batches: Vec<GraphBatch> = (0..3).map(|i| chain_batch(i as f32, 4 + i)).collect();
        let refs: Vec<&GraphBatch> = batches.iter().collect();
        // Warm up until the footprint stops moving: the best-fit
        // free list takes a few steps to settle into a steady buffer
        // pairing (it regrows the largest pooled buffer on a miss).
        let mut warm = 0usize;
        for _ in 0..10 {
            trainer.step(model.param_set(), &refs, &mut scratch).unwrap();
            let b = scratch.arena_bytes();
            if b == warm {
                break;
            }
            warm = b;
        }
        for _ in 0..3 {
            trainer.step(model.param_set(), &refs, &mut scratch).unwrap();
        }
        assert_eq!(scratch.arena_bytes(), warm, "arena grew after warm-up");
    }

    #[test]
    fn step_validates_before_taking_buffers() {
        let model = GnnTrans::new(&cfg(), 3);
        let trainer = PackedTrainer::compile(&model);
        let mut scratch = TrainScratch::new();
        assert!(matches!(
            trainer.step(model.param_set(), &[], &mut scratch),
            Err(GnnError::BadBatch(_))
        ));
        let mut unlabelled = chain_batch(0.0, 4);
        unlabelled.targets = None;
        assert!(matches!(
            trainer.step(model.param_set(), &[&unlabelled], &mut scratch),
            Err(GnnError::BadBatch(_))
        ));
        let mut poisoned = chain_batch(0.0, 4);
        poisoned.x = Mat::zeros(4, 7); // wrong node width
        assert!(trainer
            .step(model.param_set(), &[&poisoned], &mut scratch)
            .is_err());
        assert_eq!(scratch.arena_bytes(), 0, "failed validation must not touch the arena");
    }

    #[test]
    fn grad_order_matches_tape_param_grads() {
        let model = GnnTrans::new(&cfg(), 29);
        let batch = chain_batch(1.0, 5);
        let trainer = PackedTrainer::compile(&model);
        let mut scratch = TrainScratch::new();
        let step = trainer
            .step(model.param_set(), &[&batch], &mut scratch)
            .unwrap();
        let mut tape = Tape::new();
        let pred = model.forward(&mut tape, &batch);
        let loss = tape.mse_loss(pred, batch.targets.as_ref().unwrap());
        tape.backward(loss);
        let order: Vec<usize> = tape.param_grads().iter().map(|(id, _)| *id).collect();
        let packed_order: Vec<usize> = step.grads.iter().map(|(id, _)| *id).collect();
        assert_eq!(packed_order, order, "grad emission order must match the tape");
    }
}
