//! Tape-free batched inference: compiled GNNTrans + cross-net packing.
//!
//! Serving and ECO re-timing never backprop, yet [`GraphModel::predict`]
//! runs the full autograd [`tensor::Tape`] and forwards one net at a
//! time through 5–120-node matrices that starve the blocked GEMM
//! kernels. This module provides the dedicated inference path:
//!
//! * [`InferenceModel`] — the GNNTrans layer stack compiled once from a
//!   trained model into plain weight matrices, executed with the
//!   forward-only ops of [`tensor::infer`] over a reusable
//!   [`Arena`] (no tape nodes, no gradient buffers, allocation-free
//!   once the arena is warm);
//! * [`PackedBatch`] — K nets' node-feature matrices stacked into one
//!   tall matrix with a segment/offset table, so the dense projections
//!   (input, W1/W2, Q/K/V, W3, both MLP heads) run as a handful of
//!   large GEMMs across all K graphs at once.
//!
//! # Packing layout and masking
//!
//! Node rows of graph `s` occupy rows `node_offsets[s]..node_offsets[s+1]`
//! of the packed `x`; path rows likewise via `path_offsets`. Row-wise ops
//! (bias, ReLU, softmax, layer norm) and per-row GEMMs are oblivious to
//! the stacking. The two places where graphs must not mix are handled
//! per segment on row windows of the tall matrix, which is equivalent to
//! a block-diagonal operator without ever materializing the `N x N`
//! block-diagonal matrix:
//!
//! * neighbor aggregation `A_s · X_s` (eq. 1) multiplies each graph's
//!   own adjacency against its own row window;
//! * attention scores `Q_s K_sᵀ` (eq. 2) are formed per segment, so the
//!   softmax row only ever sees the graph's own nodes — exactly the
//!   per-graph mask, with the `-inf` entries never computed at all.
//!
//! Because the blocked GEMM produces every output row with a per-row
//! accumulator whose accumulation order is independent of the row's
//! position and of the total row count, a net's prediction is
//! **bit-identical** whether it is packed alone or with neighbors, and
//! matches the tape forward (pinned by tests here and in
//! `tensor::infer`).

use crate::batch::GraphBatch;
use crate::layers::{Linear, Mlp};
use crate::models::{GnnTrans, GnnTransConfig, GraphModel};
use crate::GnnError;
use std::time::Instant;
use tensor::infer::{self as ops};
use tensor::{Mat, ParamSet};

pub use tensor::infer::Arena;

/// K graphs stacked for one batched forward pass.
///
/// Built by [`PackedBatch::pack`]; consumed by
/// [`InferenceModel::forward_packed`]. Holds copies of the stacked node
/// features, global per-path node indices, and stacked path features;
/// adjacencies stay per-graph (block-diagonal structure is exploited,
/// never materialized).
#[derive(Debug, Clone)]
pub struct PackedBatch {
    /// `N x d_x` node features, graphs stacked top to bottom.
    x: Mat,
    /// Per-graph resistance-weighted adjacencies (eq. 1 aggregation).
    adj_res: Vec<Mat>,
    /// Per-graph mean-aggregation adjacencies (ablation path).
    adj_mean: Vec<Mat>,
    /// `node_offsets[s]` = first node row of graph `s`; last entry = N.
    node_offsets: Vec<usize>,
    /// `path_offsets[s]` = first path row of graph `s`; last entry = P.
    path_offsets: Vec<usize>,
    /// Per path (in global order): node indices into the packed `x`.
    path_nodes: Vec<Vec<usize>>,
    /// `P x d_h` stacked raw path features (zero-width when d_h = 0).
    path_features: Mat,
}

impl PackedBatch {
    /// Stacks `graphs` into one packed batch.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadBatch`] when `graphs` is empty, node or
    /// path feature widths disagree across graphs, or a graph has no
    /// paths or no nodes.
    pub fn pack(graphs: &[&GraphBatch]) -> Result<Self, GnnError> {
        let first = graphs
            .first()
            .ok_or_else(|| GnnError::BadBatch("cannot pack zero graphs".into()))?;
        let node_dim = first.node_dim();
        let path_dim = first.path_dim();
        let mut node_offsets = Vec::with_capacity(graphs.len() + 1);
        let mut path_offsets = Vec::with_capacity(graphs.len() + 1);
        let mut total_nodes = 0usize;
        let mut total_paths = 0usize;
        for (i, g) in graphs.iter().enumerate() {
            if g.node_count() == 0 {
                return Err(GnnError::BadBatch(format!("graph {i} has no nodes")));
            }
            if g.path_count() == 0 {
                return Err(GnnError::BadBatch(format!("graph {i} has no paths")));
            }
            if g.node_dim() != node_dim {
                return Err(GnnError::BadBatch(format!(
                    "graph {i} node dim {} != {node_dim}",
                    g.node_dim()
                )));
            }
            if g.path_dim() != path_dim {
                return Err(GnnError::BadBatch(format!(
                    "graph {i} path dim {} != {path_dim}",
                    g.path_dim()
                )));
            }
            node_offsets.push(total_nodes);
            path_offsets.push(total_paths);
            total_nodes += g.node_count();
            total_paths += g.path_count();
        }
        node_offsets.push(total_nodes);
        path_offsets.push(total_paths);

        let mut x = Mat::zeros(total_nodes, node_dim);
        let mut path_features = Mat::zeros(total_paths, path_dim);
        let mut path_nodes = Vec::with_capacity(total_paths);
        for (s, g) in graphs.iter().enumerate() {
            let n0 = node_offsets[s];
            for r in 0..g.node_count() {
                x.as_mut_slice()[(n0 + r) * node_dim..(n0 + r + 1) * node_dim]
                    .copy_from_slice(g.x.row(r));
            }
            for (j, p) in g.paths.iter().enumerate() {
                if let Some(&idx) = p.nodes.iter().find(|&&idx| idx >= g.node_count()) {
                    return Err(GnnError::BadBatch(format!(
                        "graph {s} path {j} references node {idx} of {}",
                        g.node_count()
                    )));
                }
                path_nodes.push(p.nodes.iter().map(|&idx| n0 + idx).collect());
                if path_dim > 0 {
                    path_features.as_mut_slice()
                        [(path_offsets[s] + j) * path_dim..(path_offsets[s] + j + 1) * path_dim]
                        .copy_from_slice(p.features.row(0));
                }
            }
        }

        Ok(PackedBatch {
            x,
            adj_res: graphs.iter().map(|g| g.adj_res.clone()).collect(),
            adj_mean: graphs.iter().map(|g| g.adj_mean.clone()).collect(),
            node_offsets,
            path_offsets,
            path_nodes,
            path_features,
        })
    }

    /// Number of packed graphs.
    pub fn graph_count(&self) -> usize {
        self.adj_res.len()
    }

    /// Total node rows across all graphs.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }

    /// Total path rows across all graphs.
    pub fn path_count(&self) -> usize {
        self.path_nodes.len()
    }

    /// Path-row range `[start, end)` of graph `s` in the packed output,
    /// for slicing per-graph predictions back out.
    pub fn path_range(&self, s: usize) -> (usize, usize) {
        (self.path_offsets[s], self.path_offsets[s + 1])
    }
}

/// A compiled affine layer: plain weight + bias matrices.
#[derive(Debug, Clone)]
struct Affine {
    w: Mat,
    b: Mat,
}

impl Affine {
    fn compile(params: &ParamSet, l: &Linear) -> Self {
        Affine {
            w: params.get(l.w_id()).clone(),
            b: params.get(l.b_id()).clone(),
        }
    }
}

/// One compiled eq.-(1) layer.
#[derive(Debug, Clone)]
struct SageWeights {
    w1: Affine,
    /// `W2` is applied without its bias, matching the tape forward.
    w2: Mat,
}

/// One compiled eqs.-(2)–(3) layer.
#[derive(Debug, Clone)]
struct AttnWeights {
    wq: Vec<Mat>,
    wk: Vec<Mat>,
    wv: Vec<Mat>,
    w3: Affine,
    head_dim: usize,
    norm: bool,
}

/// The GNNTrans layer stack compiled into plain matrices for tape-free
/// execution.
///
/// Compile once after training (or loading) with
/// [`InferenceModel::compile`]; run with
/// [`InferenceModel::forward_packed`] / [`InferenceModel::forward_one`].
/// The struct is immutable and `Sync` — share it behind an `Arc` across
/// serve workers, with one [`Arena`] per thread.
#[derive(Debug, Clone)]
pub struct InferenceModel {
    cfg: GnnTransConfig,
    input: Affine,
    gnn: Vec<SageWeights>,
    attn: Vec<AttnWeights>,
    slew: Vec<Affine>,
    delay: Vec<Affine>,
}

impl InferenceModel {
    /// Snapshots `model`'s current parameters into an executable form.
    pub fn compile(model: &GnnTrans) -> Self {
        let params = model.param_set();
        let gnn = model
            .gnn_stack()
            .iter()
            .map(|l| SageWeights {
                w1: Affine::compile(params, l.w1()),
                w2: params.get(l.w2().w_id()).clone(),
            })
            .collect();
        let attn = model
            .attn_stack()
            .iter()
            .map(|l| AttnWeights {
                wq: l.wq().iter().map(|p| params.get(p.w_id()).clone()).collect(),
                wk: l.wk().iter().map(|p| params.get(p.w_id()).clone()).collect(),
                wv: l.wv().iter().map(|p| params.get(p.w_id()).clone()).collect(),
                w3: Affine::compile(params, l.w3()),
                head_dim: l.head_dim(),
                norm: l.norm(),
            })
            .collect();
        let mlp = |m: &Mlp| m.layers().iter().map(|l| Affine::compile(params, l)).collect();
        InferenceModel {
            cfg: model.config().clone(),
            input: Affine::compile(params, model.input_proj()),
            gnn,
            attn,
            slew: mlp(model.slew_head()),
            delay: mlp(model.delay_head()),
        }
    }

    /// The compiled configuration.
    pub fn config(&self) -> &GnnTransConfig {
        &self.cfg
    }

    /// Runs the compiled stack over a packed batch, returning the
    /// `P x 2` predictions (column 0 = slew, column 1 = delay) with path
    /// rows in packed order — slice per graph with
    /// [`PackedBatch::path_range`].
    ///
    /// Bit-identical to running the tape forward per graph.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadBatch`] when the packed feature widths do
    /// not match the compiled configuration.
    pub fn forward_packed(&self, packed: &PackedBatch, arena: &mut Arena) -> Result<Mat, GnnError> {
        if packed.x.cols() != self.cfg.node_dim {
            return Err(GnnError::BadBatch(format!(
                "packed node dim {} != model node dim {}",
                packed.x.cols(),
                self.cfg.node_dim
            )));
        }
        if self.cfg.path_features && packed.path_features.cols() != self.cfg.path_dim {
            return Err(GnnError::BadBatch(format!(
                "packed path dim {} != model path dim {}",
                packed.path_features.cols(),
                self.cfg.path_dim
            )));
        }
        let started = Instant::now();
        let n = packed.node_count();
        let p = packed.path_count();
        let hidden = self.cfg.hidden;
        let adjs = if self.cfg.weighted_aggregation {
            &packed.adj_res
        } else {
            &packed.adj_mean
        };

        // Input projection + ReLU.
        let mut h = arena.take(n, hidden);
        ops::matmul_into(&packed.x, &self.input.w, &mut h);
        ops::add_bias_rows(&mut h, &self.input.b);
        ops::relu_inplace(&mut h);

        // L1 edge-weighted GNN layers (eq. 1): the two projections are
        // one tall GEMM each; only A_s · X_s is per-segment.
        let mut agg = arena.take(n, hidden);
        let mut neigh = arena.take(n, hidden);
        for layer in &self.gnn {
            let mut self_term = arena.take(n, hidden);
            ops::matmul_into(&h, &layer.w1.w, &mut self_term);
            ops::add_bias_rows(&mut self_term, &layer.w1.b);
            for (s, adj) in adjs.iter().enumerate() {
                ops::matmul_seg_into(adj, &h, packed.node_offsets[s], &mut agg, packed.node_offsets[s]);
            }
            ops::matmul_into(&agg, &layer.w2, &mut neigh);
            ops::add_assign(&mut self_term, &neigh);
            ops::relu_inplace(&mut self_term);
            arena.give(std::mem::replace(&mut h, self_term));
        }
        arena.give(agg);
        arena.give(neigh);

        // L2 self-attention layers (eqs. 2-3): Q/K/V/W3 are tall GEMMs;
        // scores + softmax + weighted sum run per segment, which *is*
        // the per-graph attention mask.
        for layer in &self.attn {
            let inner_buf;
            let inner: &Mat = if layer.norm {
                let mut buf = arena.take(n, hidden);
                ops::layer_norm_rows_into(&h, 1e-5, &mut buf);
                inner_buf = Some(buf);
                inner_buf.as_ref().expect("just set")
            } else {
                inner_buf = None;
                &h
            };
            let scale = 1.0 / (layer.head_dim as f32).sqrt();
            let mut concat = arena.take(n, hidden);
            let mut q = arena.take(n, layer.head_dim);
            let mut key = arena.take(n, layer.head_dim);
            let mut v = arena.take(n, layer.head_dim);
            let mut head_out = arena.take(n, layer.head_dim);
            for k in 0..layer.wq.len() {
                ops::matmul_into(inner, &layer.wq[k], &mut q);
                ops::matmul_into(inner, &layer.wk[k], &mut key);
                ops::matmul_into(inner, &layer.wv[k], &mut v);
                for s in 0..packed.graph_count() {
                    let n0 = packed.node_offsets[s];
                    let ns = packed.node_offsets[s + 1] - n0;
                    let mut kt = arena.take(layer.head_dim, ns);
                    let mut scores = arena.take(ns, ns);
                    ops::transpose_rows_into(&key, n0, ns, &mut kt);
                    ops::matmul_rows_into(&q, n0, ns, &kt, &mut scores, 0);
                    ops::scale_inplace(&mut scores, scale);
                    ops::softmax_rows_inplace(&mut scores);
                    ops::matmul_seg_into(&scores, &v, n0, &mut head_out, n0);
                    arena.give(kt);
                    arena.give(scores);
                }
                ops::copy_cols(&mut concat, k * layer.head_dim, &head_out);
            }
            arena.give(q);
            arena.give(key);
            arena.give(v);
            arena.give(head_out);
            if let Some(buf) = inner_buf {
                arena.give(buf);
            }
            let mut projected = arena.take(n, hidden);
            ops::matmul_into(&concat, &layer.w3.w, &mut projected);
            ops::add_bias_rows(&mut projected, &layer.w3.b);
            arena.give(concat);
            // Residual (eq. 3): x + projected.
            ops::add_assign(&mut projected, &h);
            arena.give(std::mem::replace(&mut h, projected));
        }

        // Pooling (eq. 4): mean node reps per path, concat path features.
        let pooled_dim = hidden + if self.cfg.path_features { self.cfg.path_dim } else { 0 };
        let mut f = arena.take(p, pooled_dim);
        {
            let mut pooled = arena.take(p, hidden);
            for (j, nodes) in packed.path_nodes.iter().enumerate() {
                ops::mean_rows_into(&h, nodes, &mut pooled, j);
            }
            ops::copy_cols(&mut f, 0, &pooled);
            if self.cfg.path_features {
                ops::copy_cols(&mut f, hidden, &packed.path_features);
            }
            arena.give(pooled);
        }
        arena.give(h);

        // Eq. (5): slew head; eq. (6): delay head conditioned on slew.
        let slew = self.run_mlp(&self.slew, &f, arena);
        let mut delay_in = arena.take(p, pooled_dim + 1);
        ops::copy_cols(&mut delay_in, 0, &f);
        ops::copy_cols(&mut delay_in, pooled_dim, &slew);
        arena.give(f);
        let delay = self.run_mlp(&self.delay, &delay_in, arena);
        arena.give(delay_in);

        let mut out = Mat::zeros(p, 2);
        ops::copy_cols(&mut out, 0, &slew);
        ops::copy_cols(&mut out, 1, &delay);
        arena.give(slew);
        arena.give(delay);

        obs::histogram_with("infer.batch_graphs", None, count_bounds)
            .observe(packed.graph_count() as f64);
        obs::histogram_with("infer.batch_nodes", None, count_bounds).observe(n as f64);
        obs::histogram("infer.packed_gemm_seconds").observe(started.elapsed().as_secs_f64());
        obs::gauge("infer.arena_bytes").set(arena.bytes() as f64);
        Ok(out)
    }

    /// Convenience single-graph forward: packs `batch` alone and runs
    /// [`InferenceModel::forward_packed`].
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadBatch`] on feature-width mismatch.
    pub fn forward_one(&self, batch: &GraphBatch, arena: &mut Arena) -> Result<Mat, GnnError> {
        let packed = PackedBatch::pack(&[batch])?;
        self.forward_packed(&packed, arena)
    }

    /// ReLU MLP with linear output, `x` consumed read-only.
    fn run_mlp(&self, layers: &[Affine], x: &Mat, arena: &mut Arena) -> Mat {
        let rows = x.rows();
        let mut cur: Option<Mat> = None;
        for (i, layer) in layers.iter().enumerate() {
            let input = cur.as_ref().unwrap_or(x);
            let mut out = arena.take(rows, layer.w.cols());
            ops::matmul_into(input, &layer.w, &mut out);
            ops::add_bias_rows(&mut out, &layer.b);
            if i + 1 < layers.len() {
                ops::relu_inplace(&mut out);
            }
            if let Some(prev) = cur.replace(out) {
                arena.give(prev);
            }
        }
        cur.expect("MLPs have at least one layer")
    }
}

/// Bucket bounds for small-count histograms (batch graphs/nodes):
/// factor-2 from 1 to 2048.
fn count_bounds() -> Vec<f64> {
    obs::exponential_bounds(1.0, 2.0, 12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};

    fn cfg() -> GnnTransConfig {
        GnnTransConfig {
            node_dim: 3,
            path_dim: 2,
            hidden: 8,
            gnn_layers: 2,
            attn_layers: 2,
            heads: 2,
            mlp_hidden: 8,
            ..Default::default()
        }
    }

    fn chain_batch(seed: f32, nodes: usize) -> GraphBatch {
        let mut b = RcNetBuilder::new("n");
        let mut prev = b.source("s", Farads(1e-15));
        for i in 1..nodes - 1 {
            let node = b.internal(format!("m{i}"), Farads(1e-15));
            b.resistor(prev, node, Ohms(20.0 + i as f64));
            prev = node;
        }
        let k = b.sink("k", Farads(2e-15));
        b.resistor(prev, k, Ohms(35.0));
        let net = b.build().unwrap();
        let mut x = Mat::zeros(nodes, 3);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 * 0.7 + seed).sin()) * 0.5;
        }
        let pf = net
            .paths()
            .iter()
            .enumerate()
            .map(|(i, _)| Mat::row_vector(vec![0.1 * seed, 0.2 + i as f32]))
            .collect();
        GraphBatch::build(&net, x, pf, None).unwrap()
    }

    #[test]
    fn forward_one_matches_tape_bit_for_bit() {
        let model = GnnTrans::new(&cfg(), 17);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        for nodes in [3usize, 5, 9] {
            let batch = chain_batch(nodes as f32, nodes);
            let tape_out = model.predict(&batch);
            let fast = compiled.forward_one(&batch, &mut arena).unwrap();
            assert_eq!(fast, tape_out, "{nodes}-node graph drifted");
        }
    }

    #[test]
    fn unweighted_and_unnormed_variants_match_tape() {
        let variant = GnnTransConfig {
            weighted_aggregation: false,
            attn_norm: false,
            path_features: false,
            ..cfg()
        };
        let model = GnnTrans::new(&variant, 23);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        let batch = chain_batch(2.0, 6);
        assert_eq!(
            compiled.forward_one(&batch, &mut arena).unwrap(),
            model.predict(&batch)
        );
    }

    #[test]
    fn packing_is_composition_independent() {
        let model = GnnTrans::new(&cfg(), 5);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        let batches: Vec<GraphBatch> =
            (0..4).map(|i| chain_batch(i as f32, 3 + i * 2)).collect();
        let refs: Vec<&GraphBatch> = batches.iter().collect();
        let packed = PackedBatch::pack(&refs).unwrap();
        assert_eq!(packed.graph_count(), 4);
        let joint = compiled.forward_packed(&packed, &mut arena).unwrap();
        for (s, b) in batches.iter().enumerate() {
            let solo = compiled.forward_one(b, &mut arena).unwrap();
            let (p0, p1) = packed.path_range(s);
            assert_eq!(p1 - p0, solo.rows());
            for (r, pr) in (p0..p1).enumerate() {
                assert_eq!(joint.row(pr), solo.row(r), "graph {s} path {r} drifted");
            }
        }
    }

    #[test]
    fn forward_is_allocation_free_when_warm() {
        let model = GnnTrans::new(&cfg(), 9);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        let batch = chain_batch(1.0, 7);
        let packed = PackedBatch::pack(&[&batch]).unwrap();
        compiled.forward_packed(&packed, &mut arena).unwrap();
        let warm_bytes = arena.bytes();
        let warm_pooled = arena.pooled();
        for _ in 0..3 {
            compiled.forward_packed(&packed, &mut arena).unwrap();
        }
        assert_eq!(arena.bytes(), warm_bytes, "arena grew after warm-up");
        assert_eq!(arena.pooled(), warm_pooled);
    }

    #[test]
    fn pack_rejects_inconsistent_graphs() {
        assert!(matches!(
            PackedBatch::pack(&[]),
            Err(GnnError::BadBatch(_))
        ));
        let a = chain_batch(0.0, 4);
        let mut b = chain_batch(1.0, 4);
        b.x = Mat::zeros(4, 5); // width mismatch
        assert!(PackedBatch::pack(&[&a, &b]).is_err());
    }

    #[test]
    fn forward_rejects_wrong_widths() {
        let model = GnnTrans::new(&cfg(), 3);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        let mut batch = chain_batch(0.0, 4);
        batch.x = Mat::zeros(4, 7); // poison: wrong node dim
        let packed = PackedBatch::pack(&[&batch]).unwrap();
        assert!(matches!(
            compiled.forward_packed(&packed, &mut arena),
            Err(GnnError::BadBatch(_))
        ));
    }
}
