//! Shared training loop: Adam on per-net MSE, matching the paper's
//! end-to-end training objective (minimize MSE between estimated and
//! golden slew/delay, §IV).
//!
//! Two gradient backends share the loop. The autograd tape is the
//! oracle: one tape per graph, exact reverse-mode gradients. The packed
//! backend ([`crate::grad::PackedTrainer`]) trains a whole pack of
//! graphs as one tall node matrix with tape-free arena kernels — the
//! training-side twin of the inference engine. Packs are split from
//! each accumulation chunk by a deterministic rule (never by thread
//! count) and reduced in chunk order, so the trained weights are
//! bit-identical for any `PAR_THREADS` setting on either backend.

use crate::batch::GraphBatch;
use crate::grad::{self, PackedTrainer};
use crate::models::GraphModel;
use crate::GnnError;
use tensor::init::InitRng;
use tensor::optim::Adam;
use tensor::{Mat, Tape};

/// Which gradient implementation [`train`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainBackend {
    /// The packed tape-free backward (arena kernels, cross-net
    /// packing) — the default for models that provide a
    /// [`GraphModel::packed_trainer`]; others silently use the tape.
    Packed,
    /// The autograd-tape backward, kept as the gradient oracle.
    /// Selected by `GNNTRANS_TAPE_TRAIN=1` or [`TrainConfig::backend`].
    Tape,
}

impl TrainBackend {
    /// Resolves the backend from the `GNNTRANS_TAPE_TRAIN` environment
    /// variable (`1`/`true` select the tape oracle).
    pub fn from_env() -> Self {
        let oracle = std::env::var("GNNTRANS_TAPE_TRAIN")
            .map(|v| {
                let t = v.trim();
                t == "1" || t.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false);
        if oracle {
            TrainBackend::Tape
        } else {
            TrainBackend::Packed
        }
    }
}

impl Default for TrainBackend {
    fn default() -> Self {
        TrainBackend::from_env()
    }
}

/// Training-loop knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed (nets are visited in a new order each epoch).
    pub seed: u64,
    /// Global gradient-norm clip (`None` = unclipped).
    pub grad_clip: Option<f32>,
    /// Graphs per optimizer step. `1` (the default) reproduces the
    /// classic per-graph SGD loop bit for bit. Larger values average
    /// gradients over each chunk of the shuffled visit order and take
    /// one step per chunk; the per-graph (or per-pack) passes inside a
    /// chunk run on the [`par`] pool, and because the accumulation is
    /// reduced in fixed chunk order the trained weights are identical
    /// for any `PAR_THREADS` setting.
    pub accum: usize,
    /// Gradient backend (defaults from `GNNTRANS_TAPE_TRAIN`).
    pub backend: TrainBackend,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            lr: 3e-3,
            seed: 0,
            grad_clip: Some(5.0),
            accum: 1,
            backend: TrainBackend::from_env(),
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean per-net loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock duration of each epoch, seconds.
    pub epoch_seconds: Vec<f64>,
    /// Pre-clip global gradient norm of the last optimizer step
    /// (`NaN` when no step ran).
    pub final_grad_norm: f32,
    /// Training throughput over the whole run, graphs per second.
    pub graphs_per_s: f64,
    /// Peak packed-trainer arena footprint observed on any lane, bytes
    /// (0 on the tape backend).
    pub arena_bytes_peak: usize,
    /// Graphs re-run on the per-graph tape because their pack produced
    /// an error or a non-finite loss (0 on the tape backend).
    pub fallbacks: u64,
}

impl TrainReport {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }

    /// Total wall-clock training time, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.epoch_seconds.iter().sum()
    }
}

/// One graph's tape forward/backward: `(loss, param grads)`.
///
/// The gradient oracle for both backends and the packed backend's
/// per-graph fallback.
///
/// # Panics
///
/// Panics when `batch` has no targets.
pub(crate) fn tape_graph_grads<M: GraphModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
) -> (f32, Vec<(usize, Mat)>) {
    let targets = batch.targets.as_ref().expect("batch has targets");
    let mut tape = Tape::new();
    let loss = {
        let _s = obs::span("forward");
        let pred = model.forward(&mut tape, batch);
        tape.mse_loss(pred, targets)
    };
    let grads = {
        let _s = obs::span("backward");
        tape.backward(loss);
        tape.param_grads()
    };
    (tape.value(loss).get(0, 0), grads)
}

/// Node budget of one pack: keeps tall matrices cache-friendly.
const PACK_MAX_NODES: usize = 2048;
/// Graph budget of one pack.
const PACK_MAX_GRAPHS: usize = 8;

/// Splits an accumulation chunk into packs by a deterministic greedy
/// rule (visit order, node/graph budgets). Depends only on the chunk
/// contents — never on the thread count — so the pack-order reduction
/// keeps training bit-reproducible under any parallelism.
fn split_packs<'c>(chunk: &'c [usize], batches: &[GraphBatch]) -> Vec<&'c [usize]> {
    let mut packs = Vec::new();
    let mut start = 0;
    let mut nodes = 0;
    for (i, &bi) in chunk.iter().enumerate() {
        let n = batches[bi].node_count();
        if i > start && (nodes + n > PACK_MAX_NODES || i - start >= PACK_MAX_GRAPHS) {
            packs.push(&chunk[start..i]);
            start = i;
            nodes = 0;
        }
        nodes += n;
    }
    packs.push(&chunk[start..]);
    packs
}

/// Result of one pack lane: per-graph losses in pack order, pack-summed
/// gradients, tape-fallback count, arena footprint.
type PackOutcome = (Vec<f32>, Vec<(usize, Mat)>, u64, usize);

/// Runs one pack through the packed trainer, falling back to per-graph
/// tapes when the step errors or produces a non-finite loss — the epoch
/// continues either way, and the tape rerun keeps divergence semantics
/// identical to the tape backend.
fn run_pack<M: GraphModel + ?Sized>(
    trainer: &PackedTrainer,
    model: &M,
    batches: &[GraphBatch],
    pack: &[usize],
) -> PackOutcome {
    grad::with_scratch(|scratch| {
        let refs: Vec<&GraphBatch> = pack.iter().map(|&bi| &batches[bi]).collect();
        let healthy = match trainer.step(model.param_set(), &refs, scratch) {
            Ok(step) if step.losses.iter().all(|l| l.is_finite()) => Some(step),
            _ => None,
        };
        match healthy {
            Some(step) => {
                let bytes = step.arena_bytes;
                (step.losses, step.grads, 0, bytes)
            }
            None => {
                let mut losses = Vec::with_capacity(pack.len());
                let mut sum: Vec<(usize, Mat)> = Vec::new();
                for &bi in pack {
                    let (loss, g) = tape_graph_grads(model, &batches[bi]);
                    losses.push(loss);
                    for (id, mat) in g {
                        match sum.iter_mut().find(|(i, _)| *i == id) {
                            Some((_, acc)) => acc.axpy(1.0, &mat),
                            None => sum.push((id, mat)),
                        }
                    }
                }
                obs::counter("train.fallbacks").add(pack.len() as u64);
                (losses, sum, pack.len() as u64, scratch.arena_bytes())
            }
        }
    })
}

/// Trains `model` on labelled batches.
///
/// # Errors
///
/// Returns [`GnnError::BadBatch`] when a batch lacks targets and
/// [`GnnError::Diverged`] when the epoch loss becomes non-finite.
pub fn train<M: GraphModel + ?Sized>(
    model: &mut M,
    batches: &[GraphBatch],
    cfg: &TrainConfig,
) -> Result<TrainReport, GnnError> {
    for (i, b) in batches.iter().enumerate() {
        if b.targets.is_none() {
            return Err(GnnError::BadBatch(format!("batch {i} has no targets")));
        }
    }
    let _train_span = obs::span("train");
    let loss_gauge = obs::gauge("gnn.train.loss");
    let grad_gauge = obs::gauge("gnn.train.grad_norm");
    obs::gauge("gnn.train.lr").set(cfg.lr as f64);
    // The packed backend only engages when the model can compile one;
    // baselines (and `GNNTRANS_TAPE_TRAIN=1`) stay on the tape.
    let trainer: Option<PackedTrainer> = match cfg.backend {
        TrainBackend::Packed => model.packed_trainer(),
        TrainBackend::Tape => None,
    };
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..batches.len()).collect();
    let mut rng = InitRng::new(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_seconds = Vec::with_capacity(cfg.epochs);
    let mut final_grad_norm = f32::NAN;
    let mut arena_bytes_peak = 0usize;
    let mut fallbacks = 0u64;

    for epoch in 0..cfg.epochs {
        let epoch_span = obs::span("epoch");
        let epoch_start = std::time::Instant::now();
        {
            // Fisher-Yates shuffle.
            let _s = obs::span("shuffle");
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        let mut total = 0.0f32;
        for chunk in order.chunks(cfg.accum.max(1)) {
            // Fixed-order reduction target: gradients summed by
            // parameter id in chunk order, then mean-scaled (a chunk of
            // one keeps the raw per-graph gradient — the seed loop's
            // semantics). Work fans out on the par pool, and the
            // in-order result contract makes the reduction — and
            // therefore the trained weights — independent of the
            // thread count on both backends.
            let mut grads: Vec<(usize, Mat)> = Vec::new();
            if let Some(trainer) = &trainer {
                // Packed backend: the chunk splits into packs by a
                // deterministic budget rule; each pack trains as one
                // tall matrix on its lane's arena.
                let model_ref: &M = model;
                let packs = split_packs(chunk, batches);
                let outcomes = par::par_map("train.pack", &packs, |pack: &&[usize]| {
                    run_pack(trainer, model_ref, batches, pack)
                });
                for (losses, g, fb, bytes) in outcomes {
                    for loss in losses {
                        total += loss;
                    }
                    fallbacks += fb;
                    arena_bytes_peak = arena_bytes_peak.max(bytes);
                    for (id, mat) in g {
                        match grads.iter_mut().find(|(i, _)| *i == id) {
                            Some((_, acc)) => acc.axpy(1.0, &mat),
                            None => grads.push((id, mat)),
                        }
                    }
                }
            } else {
                // Tape backend: one tape per graph.
                let graph_grads = par::par_map("train.graph", chunk, |&bi| {
                    tape_graph_grads(model, &batches[bi])
                });
                for (loss, g) in graph_grads {
                    total += loss;
                    for (id, mat) in g {
                        match grads.iter_mut().find(|(i, _)| *i == id) {
                            Some((_, acc)) => acc.axpy(1.0, &mat),
                            None => grads.push((id, mat)),
                        }
                    }
                }
            }
            if chunk.len() > 1 {
                let inv = 1.0 / chunk.len() as f32;
                for (_, g) in &mut grads {
                    *g = g.scale(inv);
                }
            }

            let norm: f32 = grads
                .iter()
                .map(|(_, g)| g.norm() * g.norm())
                .sum::<f32>()
                .sqrt();
            final_grad_norm = norm;
            if let Some(clip) = cfg.grad_clip {
                if norm > clip {
                    let s = clip / norm;
                    for (_, g) in &mut grads {
                        *g = g.scale(s);
                    }
                }
            }
            opt.step(model.param_set_mut(), &grads);
        }
        let mean = total / batches.len().max(1) as f32;
        drop(epoch_span);
        epoch_seconds.push(epoch_start.elapsed().as_secs_f64());
        loss_gauge.set(mean as f64);
        grad_gauge.set(final_grad_norm as f64);
        obs::event!(
            obs::Level::Debug,
            "gnn.train",
            "epoch done",
            epoch = epoch,
            loss = mean,
            grad_norm = final_grad_norm,
        );
        if !mean.is_finite() {
            obs::event!(
                obs::Level::Error,
                "gnn.train",
                "training diverged",
                epoch = epoch,
                loss = mean,
            );
            return Err(GnnError::Diverged { epoch });
        }
        epoch_losses.push(mean);
    }
    let total_seconds: f64 = epoch_seconds.iter().sum();
    let graphs_trained = cfg.epochs * batches.len();
    let graphs_per_s = if graphs_trained > 0 && total_seconds > 0.0 {
        graphs_trained as f64 / total_seconds
    } else {
        0.0
    };
    Ok(TrainReport {
        epoch_losses,
        epoch_seconds,
        final_grad_norm,
        graphs_per_s,
        arena_bytes_peak,
        fallbacks,
    })
}

/// Mean validation loss of `model` over `batches` (forward only).
///
/// # Errors
///
/// Returns [`GnnError::BadBatch`] when a batch lacks targets.
pub fn validation_loss<M: GraphModel + ?Sized>(
    model: &M,
    batches: &[GraphBatch],
) -> Result<f32, GnnError> {
    // Forward-only and independent per batch; the in-order results of
    // try_par_map keep both the summation order and the
    // first-missing-target error identical to the serial loop.
    let idx: Vec<usize> = (0..batches.len()).collect();
    let losses = par::try_par_map("validate.graph", &idx, |&i| {
        let batch = &batches[i];
        let targets = batch
            .targets
            .as_ref()
            .ok_or_else(|| GnnError::BadBatch(format!("validation batch {i} has no targets")))?;
        let mut tape = Tape::new();
        let pred = model.forward(&mut tape, batch);
        let loss = tape.mse_loss(pred, targets);
        Ok::<f32, GnnError>(tape.value(loss).get(0, 0))
    })?;
    let total: f32 = losses.iter().sum();
    Ok(total / batches.len().max(1) as f32)
}

/// Result of [`train_with_early_stopping`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedReport {
    /// Per-epoch training losses (up to the stopping epoch).
    pub train_losses: Vec<f32>,
    /// Per-epoch validation losses.
    pub val_losses: Vec<f32>,
    /// Epoch whose weights were kept (0-based).
    pub best_epoch: usize,
}

/// Trains with a held-out validation set, stopping after `patience`
/// epochs without improvement and restoring the best-epoch weights.
///
/// # Errors
///
/// Propagates [`train`] and [`validation_loss`] failures.
pub fn train_with_early_stopping<M: GraphModel + ?Sized>(
    model: &mut M,
    train_batches: &[GraphBatch],
    val_batches: &[GraphBatch],
    cfg: &TrainConfig,
    patience: usize,
) -> Result<ValidatedReport, GnnError> {
    let mut train_losses = Vec::new();
    let mut val_losses = Vec::new();
    let mut best: Option<(usize, f32, tensor::ParamSet)> = None;
    for epoch in 0..cfg.epochs {
        // One epoch at a time so validation interleaves; the shuffle seed
        // advances per epoch to keep visit orders distinct.
        let one = TrainConfig {
            epochs: 1,
            seed: cfg.seed.wrapping_add(epoch as u64),
            ..cfg.clone()
        };
        let r = train(model, train_batches, &one)?;
        train_losses.push(r.final_loss());
        let vl = validation_loss(model, val_batches)?;
        val_losses.push(vl);
        let improved = best.as_ref().is_none_or(|(_, b, _)| vl < *b);
        if improved {
            best = Some((epoch, vl, model.param_set().clone()));
        } else if let Some((be, _, _)) = best.as_ref() {
            if epoch - be >= patience {
                break;
            }
        }
    }
    let (best_epoch, _, params) = best.ok_or(GnnError::Diverged { epoch: 0 })?;
    *model.param_set_mut() = params;
    Ok(ValidatedReport {
        train_losses,
        val_losses,
        best_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{GnnTrans, GnnTransConfig};
    use rcnet::{Farads, Ohms, RcNetBuilder};
    use tensor::Mat;

    fn labelled_batch(r: f64, target: f32) -> GraphBatch {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        b.resistor(s, k, Ohms(r));
        let net = b.build().unwrap();
        let x = Mat::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, (r as f32) / 100.0]).unwrap();
        let pf = vec![Mat::row_vector(vec![(r as f32) / 100.0, 1.0])];
        let t = Mat::from_vec(1, 2, vec![target, target * 2.0]).unwrap();
        GraphBatch::build(&net, x, pf, Some(t)).unwrap()
    }

    fn tiny_model() -> GnnTrans {
        GnnTrans::new(
            &GnnTransConfig {
                node_dim: 3,
                path_dim: 2,
                hidden: 8,
                gnn_layers: 2,
                attn_layers: 1,
                heads: 2,
                mlp_hidden: 8,
                ..Default::default()
            },
            42,
        )
    }

    #[test]
    fn loss_decreases_on_learnable_task() {
        let batches = vec![
            labelled_batch(10.0, 0.1),
            labelled_batch(50.0, 0.5),
            labelled_batch(90.0, 0.9),
        ];
        let mut model = tiny_model();
        let report = train(
            &mut model,
            &batches,
            &TrainConfig {
                epochs: 60,
                lr: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first * 0.2, "loss must drop: {first} -> {last}");
    }

    #[test]
    fn rejects_unlabelled_batches() {
        let mut b = labelled_batch(10.0, 0.1);
        b.targets = None;
        let mut model = tiny_model();
        assert!(matches!(
            train(&mut model, &[b], &TrainConfig::default()),
            Err(GnnError::BadBatch(_))
        ));
    }

    #[test]
    fn empty_training_set_is_noop() {
        let mut model = tiny_model();
        let report = train(
            &mut model,
            &[],
            &TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.epoch_losses.len(), 2);
        assert_eq!(report.epoch_losses[0], 0.0);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let train_set = vec![
            labelled_batch(10.0, 0.1),
            labelled_batch(50.0, 0.5),
            labelled_batch(90.0, 0.9),
        ];
        let val_set = vec![labelled_batch(30.0, 0.3), labelled_batch(70.0, 0.7)];
        let mut model = tiny_model();
        let report = train_with_early_stopping(
            &mut model,
            &train_set,
            &val_set,
            &TrainConfig {
                epochs: 40,
                lr: 5e-3,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        assert_eq!(report.train_losses.len(), report.val_losses.len());
        assert!(report.best_epoch < report.val_losses.len());
        // The restored weights reproduce the best validation loss.
        let restored = validation_loss(&model, &val_set).unwrap();
        let best = report.val_losses[report.best_epoch];
        assert!((restored - best).abs() < 1e-6, "restored {restored} vs best {best}");
        // Best is the minimum of the recorded series.
        assert!(report
            .val_losses
            .iter()
            .all(|&v| v >= best - 1e-7));
    }

    #[test]
    fn validation_loss_requires_targets() {
        let mut b = labelled_batch(10.0, 0.1);
        b.targets = None;
        let model = tiny_model();
        assert!(validation_loss(&model, &[b]).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let batches = vec![labelled_batch(10.0, 0.1), labelled_batch(90.0, 0.9)];
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let mut m1 = tiny_model();
        let r1 = train(&mut m1, &batches, &cfg).unwrap();
        let mut m2 = tiny_model();
        let r2 = train(&mut m2, &batches, &cfg).unwrap();
        // Wall-clock fields differ between runs; the numerics must not.
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        assert_eq!(r1.final_grad_norm, r2.final_grad_norm);
        assert_eq!(m1.predict(&batches[0]), m2.predict(&batches[0]));
    }

    #[test]
    fn report_tracks_epoch_seconds_and_grad_norm() {
        let batches = vec![labelled_batch(10.0, 0.1), labelled_batch(90.0, 0.9)];
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let mut model = tiny_model();
        let report = train(&mut model, &batches, &cfg).unwrap();
        assert_eq!(report.epoch_seconds.len(), report.epoch_losses.len());
        assert!(report.epoch_seconds.iter().all(|&s| s > 0.0 && s.is_finite()));
        assert!(report.total_seconds() >= *report.epoch_seconds.last().unwrap());
        assert!(report.final_grad_norm.is_finite());
        assert!(report.final_grad_norm >= 0.0);
        // No optimizer step -> no gradient norm.
        let empty = train(&mut tiny_model(), &[], &cfg).unwrap();
        assert!(empty.final_grad_norm.is_nan());
        assert_eq!(empty.epoch_seconds.len(), cfg.epochs);
    }
}
